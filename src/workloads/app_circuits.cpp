#include "workloads/app_circuits.hpp"

#include <stdexcept>

#include "netlist/library/arith.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "netlist/library/dsp.hpp"

namespace vfpga::workloads {

namespace {

AppCircuit make(std::string name, std::string domain, Netlist nl) {
  nl.setName(name);
  return AppCircuit{std::move(name), std::move(domain), std::move(nl)};
}

lib::FsmSpec protocolFsmSpec() {
  // A 5-state link-supervision FSM: idle/sync/data/error/flush, input =
  // 2 bits (sync seen, error seen).
  lib::FsmSpec s;
  s.numStates = 5;
  s.inputBits = 2;
  s.outputBits = 3;
  s.next = {
      {0, 1, 3, 3},  // idle: sync -> sync state, error -> error
      {1, 2, 3, 3},  // sync: sync again -> data
      {2, 2, 3, 3},  // data: stay until error
      {4, 4, 4, 4},  // error: always flush
      {0, 0, 0, 0},  // flush: back to idle
  };
  s.moore = {0b000, 0b001, 0b011, 0b100, 0b110};
  s.resetState = 0;
  return s;
}

}  // namespace

std::vector<AppCircuit> multimediaSuite() {
  std::vector<AppCircuit> v;
  v.push_back(make("mm_rle", "multimedia", lib::makeRunLengthDetector(4, 6)));
  v.push_back(make("mm_mac", "multimedia", lib::makeMac(4)));
  v.push_back(make("mm_barrel", "multimedia", lib::makeBarrelShifter(8)));
  v.push_back(make("mm_popcount", "multimedia", lib::makePopcount(8)));
  v.push_back(make("mm_minmax", "multimedia", lib::makeMinMax(6)));
  v.push_back(make("mm_fir", "multimedia", lib::makeFirFilter(6, {0, 1, 3})));
  return v;
}

std::vector<AppCircuit> telecomSuite() {
  std::vector<AppCircuit> v;
  v.push_back(make("tc_crc8", "telecom", lib::makeSerialCrc(8, 0x07)));
  v.push_back(make("tc_crc16w8", "telecom",
                   lib::makeParallelCrc(16, 0x1021, 8)));
  v.push_back(make("tc_conv_k7", "telecom",
                   lib::makeConvolutionalEncoder(7, {0171, 0133})));
  v.push_back(make("tc_hamming", "telecom", lib::makeHamming74Encoder()));
  v.push_back(make("tc_scrambler", "telecom", lib::makeLfsr(12, 0b100000101001)));
  return v;
}

std::vector<AppCircuit> networkingSuite() {
  std::vector<AppCircuit> v;
  v.push_back(make("nw_checksum", "networking", lib::makeChecksum(8)));
  v.push_back(make("nw_parity", "networking", lib::makeParityTree(8)));
  v.push_back(make("nw_prio", "networking", lib::makePriorityEncoder(8)));
  v.push_back(make("nw_cmp", "networking", lib::makeComparator(8)));
  v.push_back(make("nw_sort4", "networking", lib::makeSortingNetwork4(4)));
  return v;
}

std::vector<AppCircuit> controlSuite() {
  std::vector<AppCircuit> v;
  v.push_back(make("ct_pi", "control", lib::makePiController(8, 1, 3)));
  v.push_back(make("ct_fsm", "control", lib::makeFsm(protocolFsmSpec())));
  v.push_back(make("ct_counter", "control", lib::makeCounter(8)));
  v.push_back(make("ct_bist", "control", lib::makeMisr(8, 0x1D)));
  v.push_back(make("ct_gray", "control", lib::makeGrayCounter(6)));
  v.push_back(make("ct_debounce", "control", lib::makeDebouncer(3)));
  v.push_back(make("ct_tmr", "control", lib::makeMajorityVoter(4)));
  return v;
}

std::vector<AppCircuit> allSuites() {
  std::vector<AppCircuit> all;
  for (auto* suite : {&multimediaSuite, &telecomSuite, &networkingSuite,
                      &controlSuite}) {
    for (AppCircuit& c : (*suite)()) all.push_back(std::move(c));
  }
  return all;
}

AppCircuit appCircuitByName(const std::string& name) {
  for (AppCircuit& c : allSuites()) {
    if (c.name == name) return std::move(c);
  }
  throw std::out_of_range("unknown application circuit: " + name);
}

}  // namespace vfpga::workloads
