#include "workloads/random_netlist.hpp"

#include <stdexcept>

#include "netlist/builder.hpp"

namespace vfpga::workloads {

Netlist randomNetlist(const RandomNetlistParams& params, Rng& rng) {
  if (params.inputs == 0 || params.outputs == 0) {
    throw std::invalid_argument("random netlist needs ports");
  }
  Netlist nl("rand");
  Builder b(nl);

  std::vector<GateId> signals;
  for (std::size_t i = 0; i < params.inputs; ++i) {
    signals.push_back(nl.addInput("in" + std::to_string(i)));
  }
  // Feedback registers appear as signals immediately; their D inputs are
  // bound after the DAG is built, closing loops through the registers.
  std::vector<GateId> feedback;
  for (std::size_t i = 0; i < params.feedbackRegs; ++i) {
    const GateId q = b.dff(b.zero(), rng.bernoulli(0.3));
    feedback.push_back(q);
    signals.push_back(q);
  }

  auto pick = [&]() -> GateId {
    if (rng.bernoulli(params.constFraction)) {
      return nl.constant(rng.bernoulli(0.5));
    }
    return signals[rng.below(signals.size())];
  };

  std::size_t flopsLeft = params.flops;
  for (std::size_t g = 0; g < params.gates; ++g) {
    GateId out;
    if (rng.bernoulli(params.muxFraction)) {
      out = b.mux(pick(), pick(), pick());
    } else {
      static constexpr GateKind kinds[] = {
          GateKind::kAnd,  GateKind::kOr,  GateKind::kXor, GateKind::kNand,
          GateKind::kNor,  GateKind::kXnor};
      const GateKind kind = kinds[rng.below(6)];
      out = nl.addGate(kind, {pick(), pick()});
    }
    // Occasionally register the new signal (a pipeline stage).
    if (flopsLeft > 0 && rng.bernoulli(0.15)) {
      out = b.dff(out, rng.bernoulli(0.3));
      --flopsLeft;
    }
    signals.push_back(out);
  }

  // Close the feedback loops on arbitrary signals.
  for (GateId q : feedback) {
    nl.rebindDff(q, signals[rng.below(signals.size())]);
  }

  // Outputs sample distinct-ish late signals (biased to the deep end so
  // most of the DAG stays live).
  for (std::size_t o = 0; o < params.outputs; ++o) {
    const std::size_t lo = signals.size() / 2;
    const GateId driver =
        signals[lo + rng.below(signals.size() - lo)];
    nl.addOutput("out" + std::to_string(o), driver);
  }

  nl.check();
  return nl;
}

}  // namespace vfpga::workloads
