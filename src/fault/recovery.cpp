#include "fault/recovery.hpp"

namespace vfpga::fault {

DownloadOutcome downloadWithRetry(ConfigPort& port, const Bitstream& bs,
                                  const RecoveryOptions& opts) {
  DownloadOutcome out;
  for (int attempt = 0;; ++attempt) {
    const std::uint64_t abortsBefore = port.stats().abortedDownloads;
    out.time += port.download(bs);
    out.aborts += port.stats().abortedDownloads - abortsBefore;
    if (!opts.verifyDownloads) break;
    const VerifyResult v = port.verifyDownload(bs);
    out.time += v.time;
    if (v.ok) break;
    out.verifyFailures += v.badFrames;
    if (attempt >= opts.maxDownloadRetries) {
      out.ok = false;
      break;
    }
    ++out.retries;
    out.time += opts.retryBackoffBase << attempt;
  }
  return out;
}

std::uint16_t stateCrc(const std::vector<bool>& bits) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(bits.size());
  for (bool b : bits) bytes.push_back(b ? 1 : 0);
  return crc16Bits(bytes);
}

}  // namespace vfpga::fault
