#include "fault/fault_plan.hpp"

#include <cmath>

namespace vfpga::fault {

FaultPlan::FaultPlan(FaultPlanSpec spec) : spec_(spec), rng_(spec.seed) {}

DownloadTamper FaultPlan::tamperDownload(Bitstream& bs) {
  DownloadTamper tamper;
  if (bs.frames.empty()) return tamper;

  if (spec_.downloadAbortRate > 0.0 && rng_.bernoulli(spec_.downloadAbortRate)) {
    tamper.framesApplied = rng_.below(bs.frames.size());
    ++counters_.abortedDownloads;
  }
  const std::size_t applied =
      tamper.framesApplied == kAllFrames
          ? bs.frames.size()
          : static_cast<std::size_t>(tamper.framesApplied);
  if (applied > 0 && spec_.downloadCorruptRate > 0.0 &&
      rng_.bernoulli(spec_.downloadCorruptRate)) {
    const std::uint32_t flips = 1 + static_cast<std::uint32_t>(rng_.below(3));
    for (std::uint32_t i = 0; i < flips; ++i) {
      auto& frame = bs.frames[rng_.below(applied)];
      if (frame.payload.empty()) continue;
      const std::size_t bit = rng_.below(frame.payload.size());
      frame.payload[bit] = !frame.payload[bit];
      ++counters_.flippedBits;
    }
    tamper.corrupted = true;
    ++counters_.corruptedDownloads;
  }
  return tamper;
}

bool FaultPlan::corruptState(std::vector<bool>& bits) {
  if (bits.empty() || spec_.stateCorruptRate <= 0.0) return false;
  if (!rng_.bernoulli(spec_.stateCorruptRate)) return false;
  const std::size_t bit = rng_.below(bits.size());
  bits[bit] = !bits[bit];
  ++counters_.stateCorruptions;
  return true;
}

std::vector<std::uint32_t> FaultPlan::drawUpsets(std::uint32_t imageBits) {
  std::vector<std::uint32_t> upsets;
  if (imageBits == 0 || spec_.meanUpsetsPerScrub <= 0.0) return upsets;
  // Knuth's product-of-uniforms Poisson sampler; the means used here are
  // small (a handful of upsets per scrub), so the loop is short.
  const double limit = std::exp(-spec_.meanUpsetsPerScrub);
  double product = 1.0;
  std::uint32_t count = 0;
  for (;;) {
    product *= rng_.uniform();
    if (product <= limit) break;
    ++count;
  }
  upsets.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    upsets.push_back(static_cast<std::uint32_t>(rng_.below(imageBits)));
  }
  counters_.upsets += count;
  return upsets;
}

bool FaultPlan::execHangs() {
  if (spec_.execHangRate <= 0.0) return false;
  if (!rng_.bernoulli(spec_.execHangRate)) return false;
  ++counters_.hangs;
  return true;
}

bool FaultPlan::reuseEvictedOverlay() {
  if (spec_.overlayStaleReuseRate <= 0.0) return false;
  if (!rng_.bernoulli(spec_.overlayStaleReuseRate)) return false;
  ++counters_.staleOverlayReuses;
  return true;
}

bool FaultPlan::corruptSegmentTable() {
  if (spec_.segmentTableCorruptRate <= 0.0) return false;
  if (!rng_.bernoulli(spec_.segmentTableCorruptRate)) return false;
  ++counters_.segmentTableCorruptions;
  return true;
}

bool FaultPlan::dropPageResidency() {
  if (spec_.pageResidencyLossRate <= 0.0) return false;
  if (!rng_.bernoulli(spec_.pageResidencyLossRate)) return false;
  ++counters_.pageResidencyLosses;
  return true;
}

}  // namespace vfpga::fault
