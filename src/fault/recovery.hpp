// Recovery building blocks shared by DynamicLoader and PartitionManager:
// verified downloads with bounded exponential-backoff retry, and the CRC
// used to protect saved register snapshots.
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/config_port.hpp"
#include "sim/types.hpp"

namespace vfpga::fault {

/// Knobs for the download path. All defaults are *off* so that managers
/// constructed without a fault plan behave (and cost) exactly as before;
/// the kernel switches verification on when a FaultPlan is installed.
struct RecoveryOptions {
  /// Read back and CRC-check every download; mismatches trigger retries.
  bool verifyDownloads = false;
  /// Retries after the first failed attempt before giving up.
  int maxDownloadRetries = 0;
  /// Backoff before retry k is retryBackoffBase << k.
  SimDuration retryBackoffBase = micros(50);
};

struct DownloadOutcome {
  bool ok = true;
  int retries = 0;
  std::uint64_t aborts = 0;          ///< truncated transfers seen
  std::uint64_t verifyFailures = 0;  ///< bad frames seen across attempts
  SimDuration time = 0;              ///< transfer + verify + backoff time
};

/// Downloads `bs`, optionally verifying by readback and retrying with
/// exponential backoff up to the configured budget. With verification off
/// this is exactly one port.download().
DownloadOutcome downloadWithRetry(ConfigPort& port, const Bitstream& bs,
                                  const RecoveryOptions& opts);

/// CRC-16 over a saved FF-state snapshot.
std::uint16_t stateCrc(const std::vector<bool>& bits);

}  // namespace vfpga::fault
