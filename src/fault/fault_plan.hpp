// Deterministic, seedable fault injection for the VFPGA stack.
//
// RAM-configured FPGAs fail in practice exactly where this simulator was
// assuming perfection: configuration downloads get corrupted or truncated
// on the wire, the configuration RAM takes background single-event upsets,
// saved register snapshots rot, and whole column strips wear out. A
// FaultPlan packages those fault classes behind one seeded Rng (plus a
// scripted list of permanent strip failures), so a "campaign" is fully
// reproducible: same spec + same seed -> bit-identical fault sequence,
// which the recovery machinery (ConfigPort scrubbing, retry-with-backoff,
// strip quarantine, watchdog preemption) must then survive.
//
// The plan is *passive*: it never mutates the system on its own. The
// ConfigPort calls tamperDownload() as its wire-level tamper hook, the
// loader/partition manager call corruptState() on saved snapshots, and the
// kernel's scrubber calls drawUpsets() once per scrub tick. Counters track
// what was injected (not what was detected — detection lives in the
// component stats).
#pragma once

#include <cstdint>
#include <vector>

#include "fabric/config_port.hpp"
#include "sim/rng.hpp"
#include "sim/types.hpp"

namespace vfpga::fault {

/// A scripted failure: at simulated time `at`, device column `column`
/// stops holding configuration reliably and must be quarantined. With
/// healAfter == 0 the failure is permanent; a positive healAfter models a
/// transient fault (thermal event, marginal timing) — the column becomes
/// trustworthy again `healAfter` after the failure and the kernel may
/// un-quarantine it.
struct StripFailureEvent {
  SimTime at = 0;
  std::uint16_t column = 0;
  SimDuration healAfter = 0;
};

struct FaultPlanSpec {
  std::uint64_t seed = 1;
  /// P(a download transfer has 1..3 payload bits flipped on the wire).
  double downloadCorruptRate = 0.0;
  /// P(a download transfer is truncated after a random frame prefix).
  double downloadAbortRate = 0.0;
  /// P(a saved register snapshot has one bit flipped while parked).
  double stateCorruptRate = 0.0;
  /// Mean background configuration upsets injected per scrub tick
  /// (Poisson-distributed).
  double meanUpsetsPerScrub = 0.0;
  /// P(an FPGA execution hangs and never signals completion).
  double execHangRate = 0.0;
  /// P(an overlay "hit" actually reuses a strip whose overlay was lost —
  /// evicted or clobbered — since the last invocation).
  double overlayStaleReuseRate = 0.0;
  /// P(a resident segment's table entry is corrupted at access time).
  double segmentTableCorruptRate = 0.0;
  /// P(a resident page's residency bit is lost at touch time).
  double pageResidencyLossRate = 0.0;
  /// Scripted permanent strip failures, in any order.
  std::vector<StripFailureEvent> stripFailures;
};

/// What the plan injected so far (attempts, not detections).
struct FaultCounters {
  std::uint64_t corruptedDownloads = 0;
  std::uint64_t abortedDownloads = 0;
  std::uint64_t flippedBits = 0;
  std::uint64_t stateCorruptions = 0;
  std::uint64_t upsets = 0;
  std::uint64_t hangs = 0;
  std::uint64_t staleOverlayReuses = 0;
  std::uint64_t segmentTableCorruptions = 0;
  std::uint64_t pageResidencyLosses = 0;
};

class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanSpec spec);

  const FaultPlanSpec& spec() const { return spec_; }
  const FaultCounters& counters() const { return counters_; }

  /// ConfigPort tamper hook: may truncate the frame list and/or flip bits
  /// in the frames that still reach the device. Mutates `bs` in place for
  /// bit flips; truncation is reported through the returned DownloadTamper
  /// (the port prunes and charges the prefix).
  DownloadTamper tamperDownload(Bitstream& bs);

  /// Flips one bit of a saved register snapshot with stateCorruptRate
  /// probability. Returns true when a bit was flipped.
  bool corruptState(std::vector<bool>& bits);

  /// Background configuration upsets for one scrub interval: a
  /// Poisson(meanUpsetsPerScrub) count of uniformly drawn bit indices in
  /// [0, imageBits).
  std::vector<std::uint32_t> drawUpsets(std::uint32_t imageBits);

  /// One draw per dispatched FPGA execution: true = this execution hangs.
  bool execHangs();

  /// One draw per overlay invocation hit: true = the overlay the manager
  /// believes resident is stale (evicted/clobbered since last use).
  bool reuseEvictedOverlay();

  /// One draw per segment access hit: true = the residency table entry is
  /// corrupt and must not be trusted.
  bool corruptSegmentTable();

  /// One draw per resident page touch: true = the page's residency bit was
  /// lost (the configuration RAM no longer holds it).
  bool dropPageResidency();

 private:
  FaultPlanSpec spec_;
  Rng rng_;
  FaultCounters counters_;
};

}  // namespace vfpga::fault
