// Durable task checkpoints: the disk form a virtual-FPGA task can be
// resurrected from after its kernel dies — not just after a device fault.
//
// A checkpoint freezes everything the OS needs to re-admit a task on the
// same device, a repaired one, or any congruent device in a cluster: task
// identity, the placement it held, the remaining op program (with FPGA
// configurations referenced by circuit *name + width*, because ConfigIds
// are per-kernel registration order and do not survive a restart), the
// register snapshot in mapped-netlist order, pending cycles of the op that
// was cut, and the residency the technique managers held (overlay /
// segment / page tables, IO-mux bindings).
//
// On-disk format (little-endian):
//   "VFCK" magic | u16 version | u64 generation | u32 payloadLen
//   | payload | u16 CRC-16 over the payload
// The register snapshot inside the payload carries its *own* CRC-16
// (fault::stateCrc, the same polynomial the loader uses for parked
// snapshots), so targeted register rot is detected even if the rest of the
// payload survives.
//
// Each task owns two generation slots (double buffering): generation g is
// written to slot g & 1, so a crash mid-write can only destroy the slot
// being written — the previous generation stays intact. A slot whose
// header generation does not match its slot parity was re-stamped after
// the fact (the "stale generation" fault class) and is rejected. load()
// picks the highest valid generation and reports when it had to fall back
// past a corrupt newer slot; when both slots are bad the result is a clean
// failure with a diagnostic, never silently wrong state.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace vfpga::fault {

inline constexpr std::uint16_t kCheckpointVersion = 1;

/// One op of the remaining program. FPGA executions reference their
/// configuration by name + strip width so the restoring kernel can resolve
/// them against its own registry and verify congruence.
struct CheckpointOp {
  bool isFpga = false;
  std::string config;              ///< circuit name (FPGA ops)
  std::uint16_t configWidth = 0;   ///< strip columns the circuit needs
  std::uint64_t cycles = 0;        ///< cycles still owed (FPGA ops)
  SimDuration cpuNs = 0;           ///< remaining burst (CPU ops)
};

inline constexpr std::uint16_t kNoPlacement = 0xffff;

struct TaskCheckpoint {
  std::string task;
  int priority = 0;
  /// Geometry fingerprint ("<cols>x<rows>") of the device the snapshot was
  /// taken on; restore targets must be congruent.
  std::string device;
  std::uint16_t placementX0 = kNoPlacement;  ///< strip origin when running
  std::uint16_t placementWidth = 0;
  /// Remaining program; ops[0] is the cut op with its residual cycles /
  /// burst. Empty means the task had nothing left.
  std::vector<CheckpointOp> ops;
  /// Register snapshot in mapped-netlist order (empty = no live state; the
  /// restored execution starts its op from scratch).
  std::vector<bool> registers;
  /// Technique-manager residency at snapshot time (ids; pages packed as
  /// (config << 16) | page). Informational for the kernel path, load-bearing
  /// for standalone manager restarts.
  std::vector<std::uint32_t> overlayResidency;
  std::vector<std::uint32_t> segmentResidency;
  std::vector<std::uint32_t> pageResidency;
  /// IO-mux bindings as "port=pin" strings.
  std::vector<std::string> ioBindings;
};

/// Serializes a checkpoint (header + sealed payload) for `generation`.
std::vector<std::uint8_t> encodeCheckpoint(const TaskCheckpoint& ck,
                                           std::uint64_t generation);

/// Validation verdict of one encoded checkpoint. Every rejection reason is
/// carried separately so the analysis layer's CK rules can name the exact
/// guard that fired (the CLI copies these bools into a CheckpointProfile).
struct DecodeResult {
  bool ok = false;
  TaskCheckpoint checkpoint;
  std::uint64_t generation = 0;
  std::uint16_t version = 0;
  bool magicOk = false;
  bool versionSupported = false;
  bool lengthOk = false;    ///< header length matches the bytes present
  bool payloadCrcOk = false;
  bool stateCrcOk = false;  ///< inner register-snapshot CRC
  std::string diagnostic;   ///< first guard that failed ("" when ok)
};

DecodeResult decodeCheckpoint(const std::vector<std::uint8_t>& bytes);

/// Double-buffered on-disk store, one slot pair per task name.
class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if needed.
  explicit CheckpointStore(std::string dir);

  const std::string& dir() const { return dir_; }

  struct WriteResult {
    std::uint64_t generation = 0;
    std::uint64_t bytes = 0;
    std::string path;
  };
  /// Writes the next generation for ck.task into its parity slot.
  WriteResult write(const TaskCheckpoint& ck);

  struct LoadResult {
    bool ok = false;
    TaskCheckpoint checkpoint;
    std::uint64_t generation = 0;
    /// The newest slot was corrupt/stale and an older generation was used.
    bool fellBack = false;
    /// Slots rejected during this load (corruption detections).
    std::uint64_t corruptSlots = 0;
    /// Why each rejected slot was rejected; `diagnostic` summarizes when
    /// ok == false (the park-with-diagnostic path).
    std::vector<std::string> slotDiagnostics;
    std::string diagnostic;
  };
  /// Validates both slots and returns the highest intact generation.
  LoadResult load(const std::string& task) const;

  /// Slot file paths [slot0, slot1] for a task (chaos campaigns tamper
  /// with these directly).
  std::vector<std::string> slotPaths(const std::string& task) const;

  /// Task names that have at least one slot on disk, sorted.
  std::vector<std::string> taskNames() const;

  struct Stats {
    std::uint64_t writes = 0;
    std::uint64_t bytesWritten = 0;
    std::uint64_t loads = 0;
    std::uint64_t corruptSlots = 0;  ///< slots rejected by validation
    std::uint64_t fallbacks = 0;     ///< loads served by an older generation
    std::uint64_t failedLoads = 0;   ///< loads with no intact slot at all
  };
  const Stats& stats() const { return stats_; }

 private:
  std::string dir_;
  std::string slotPath(const std::string& task, unsigned slot) const;
  /// Highest generation readable from either slot header (corrupt payloads
  /// included — numbering must advance past them).
  std::uint64_t latestOnDisk(const std::string& task) const;

  std::map<std::string, std::uint64_t> lastGen_;
  mutable Stats stats_;
};

}  // namespace vfpga::fault
