// Live fault-activity counters for one device — the health-model feed.
//
// OsKernel::healthInputs() fills this every monitor tick from the live
// component stats (PartitionManager FtStats, config-port verify counters,
// state-loader CRC/retry counters, the watchdog/parked fault families), so
// continuous health grading never has to wait for finalize()'s one-shot
// fold into the vfpga_fault_* metric families.
//
// This is a plain value struct on purpose: vfpga_obs cannot link
// vfpga_fault, so core/obs_bridge converts HealthInputs into the monitor's
// HealthCounters (obs/monitor/health.hpp) at the layering boundary.
#pragma once

#include <cstdint>

namespace vfpga::fault {

struct HealthInputs {
  std::uint64_t quarantinedStrips = 0;
  std::uint64_t quarantineRelocations = 0;
  std::uint64_t healedStrips = 0;
  std::uint64_t scrubRepairs = 0;
  std::uint64_t watchdogPreempts = 0;
  std::uint64_t parkedTasks = 0;
  std::uint64_t downloadRetries = 0;
  std::uint64_t stateCrcFailures = 0;
  std::uint64_t verifyFailures = 0;

  /// Unweighted total of the fault events above (capacity excluded); a
  /// quick "anything happened?" check for tests and trace lines.
  std::uint64_t eventTotal() const {
    return quarantinedStrips + quarantineRelocations + healedStrips +
           scrubRepairs + watchdogPreempts + parkedTasks + downloadRetries +
           stateCrcFailures + verifyFailures;
  }
};

}  // namespace vfpga::fault
