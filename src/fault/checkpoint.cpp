#include "fault/checkpoint.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "fabric/bitstream.hpp"
#include "fault/recovery.hpp"

namespace vfpga::fault {

namespace {

constexpr char kMagic[4] = {'V', 'F', 'C', 'K'};
// magic + version + generation + payloadLen.
constexpr std::size_t kHeaderBytes = 4 + 2 + 8 + 4;

/// Byte-wise CRC-16/CCITT-FALSE. The fabric's crc16Bits() consumes 0/1
/// *bit streams* (frame payloads store one bit per byte) and reduces every
/// byte to nonzero-vs-zero — over a dense byte payload it would pass any
/// flip that leaves the byte nonzero. Checkpoints need all 8 bits of every
/// byte feeding the register.
std::uint16_t crc16Bytes(std::span<const std::uint8_t> bytes) {
  std::uint16_t crc = 0xFFFF;
  for (const std::uint8_t b : bytes) {
    crc ^= static_cast<std::uint16_t>(std::uint16_t{b} << 8);
    for (int i = 0; i < 8; ++i) {
      crc = (crc & 0x8000) != 0
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

void putU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void putU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void putU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  }
}

void putStr(std::vector<std::uint8_t>& out, const std::string& s) {
  putU32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Bounds-checked little-endian reader; any overrun poisons the cursor so
/// truncation surfaces as a single "payload truncated" diagnostic instead
/// of garbage fields.
struct Reader {
  const std::uint8_t* p;
  std::size_t len;
  std::size_t pos = 0;
  bool ok = true;

  bool need(std::size_t n) {
    if (!ok || len - pos < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    const std::uint16_t v =
        static_cast<std::uint16_t>(p[pos] | (p[pos + 1] << 8));
    pos += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[pos + i]} << (8 * i);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[pos + i]} << (8 * i);
    pos += 8;
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (!need(n)) return {};
    std::string s(reinterpret_cast<const char*>(p + pos), n);
    pos += n;
    return s;
  }
};

std::vector<std::uint8_t> encodePayload(const TaskCheckpoint& ck) {
  std::vector<std::uint8_t> out;
  putStr(out, ck.task);
  putU64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(
                  ck.priority)));
  putStr(out, ck.device);
  putU16(out, ck.placementX0);
  putU16(out, ck.placementWidth);
  putU32(out, static_cast<std::uint32_t>(ck.ops.size()));
  for (const CheckpointOp& op : ck.ops) {
    out.push_back(op.isFpga ? 1 : 0);
    if (op.isFpga) {
      putStr(out, op.config);
      putU16(out, op.configWidth);
      putU64(out, op.cycles);
    } else {
      putU64(out, static_cast<std::uint64_t>(op.cpuNs));
    }
  }
  // Register snapshot: bit count, packed bytes, then its own CRC so
  // targeted register rot is caught even inside an otherwise intact
  // payload (the same guard the loader applies to parked snapshots).
  putU32(out, static_cast<std::uint32_t>(ck.registers.size()));
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < ck.registers.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (ck.registers[i] ? 1 : 0)
                                              << (i % 8));
    if (i % 8 == 7) {
      out.push_back(acc);
      acc = 0;
    }
  }
  if (ck.registers.size() % 8 != 0) out.push_back(acc);
  putU16(out, stateCrc(ck.registers));
  auto putIds = [&out](const std::vector<std::uint32_t>& ids) {
    putU32(out, static_cast<std::uint32_t>(ids.size()));
    for (const std::uint32_t id : ids) putU32(out, id);
  };
  putIds(ck.overlayResidency);
  putIds(ck.segmentResidency);
  putIds(ck.pageResidency);
  putU32(out, static_cast<std::uint32_t>(ck.ioBindings.size()));
  for (const std::string& b : ck.ioBindings) putStr(out, b);
  return out;
}

/// Task names become file stems; anything outside [A-Za-z0-9._-] maps to
/// '_' so a name can never escape the store directory.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) c = '_';
  }
  return out.empty() ? std::string("_") : out;
}

}  // namespace

std::vector<std::uint8_t> encodeCheckpoint(const TaskCheckpoint& ck,
                                           std::uint64_t generation) {
  const std::vector<std::uint8_t> payload = encodePayload(ck);
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderBytes + payload.size() + 2);
  out.insert(out.end(), kMagic, kMagic + 4);
  putU16(out, kCheckpointVersion);
  putU64(out, generation);
  putU32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  putU16(out, crc16Bytes(payload));
  return out;
}

DecodeResult decodeCheckpoint(const std::vector<std::uint8_t>& bytes) {
  DecodeResult r;
  if (bytes.size() < kHeaderBytes + 2 ||
      !std::equal(kMagic, kMagic + 4, bytes.begin())) {
    r.diagnostic = "bad magic (not a checkpoint file)";
    return r;
  }
  r.magicOk = true;
  Reader hdr{bytes.data() + 4, bytes.size() - 4};
  r.version = hdr.u16();
  if (r.version != kCheckpointVersion) {
    r.diagnostic = "unsupported version " + std::to_string(r.version);
    return r;
  }
  r.versionSupported = true;
  r.generation = hdr.u64();
  const std::uint32_t payloadLen = hdr.u32();
  if (bytes.size() != kHeaderBytes + payloadLen + 2) {
    r.diagnostic = "length mismatch (header claims " +
                   std::to_string(payloadLen) + " payload bytes, file has " +
                   std::to_string(bytes.size() - kHeaderBytes - 2) + ")";
    return r;
  }
  r.lengthOk = true;
  const std::uint8_t* payload = bytes.data() + kHeaderBytes;
  const std::uint16_t storedCrc = static_cast<std::uint16_t>(
      bytes[kHeaderBytes + payloadLen] |
      (bytes[kHeaderBytes + payloadLen + 1] << 8));
  if (crc16Bytes({payload, payloadLen}) != storedCrc) {
    r.diagnostic = "payload CRC mismatch";
    return r;
  }
  r.payloadCrcOk = true;

  Reader rd{payload, payloadLen};
  TaskCheckpoint ck;
  ck.task = rd.str();
  ck.priority = static_cast<int>(static_cast<std::int64_t>(rd.u64()));
  ck.device = rd.str();
  ck.placementX0 = rd.u16();
  ck.placementWidth = rd.u16();
  const std::uint32_t opCount = rd.u32();
  for (std::uint32_t i = 0; i < opCount && rd.ok; ++i) {
    CheckpointOp op;
    if (!rd.need(1)) break;
    op.isFpga = rd.p[rd.pos++] != 0;
    if (op.isFpga) {
      op.config = rd.str();
      op.configWidth = rd.u16();
      op.cycles = rd.u64();
    } else {
      op.cpuNs = static_cast<SimDuration>(rd.u64());
    }
    ck.ops.push_back(std::move(op));
  }
  const std::uint32_t regBits = rd.u32();
  const std::uint32_t regBytes = (regBits + 7) / 8;
  if (rd.need(regBytes)) {
    ck.registers.resize(regBits);
    for (std::uint32_t i = 0; i < regBits; ++i) {
      ck.registers[i] = (rd.p[rd.pos + i / 8] >> (i % 8)) & 1;
    }
    rd.pos += regBytes;
  }
  const std::uint16_t storedStateCrc = rd.u16();
  auto getIds = [&rd](std::vector<std::uint32_t>& ids) {
    const std::uint32_t n = rd.u32();
    for (std::uint32_t i = 0; i < n && rd.ok; ++i) ids.push_back(rd.u32());
  };
  getIds(ck.overlayResidency);
  getIds(ck.segmentResidency);
  getIds(ck.pageResidency);
  const std::uint32_t bindings = rd.u32();
  for (std::uint32_t i = 0; i < bindings && rd.ok; ++i) {
    ck.ioBindings.push_back(rd.str());
  }
  if (!rd.ok) {
    r.diagnostic = "payload truncated";
    return r;
  }
  if (stateCrc(ck.registers) != storedStateCrc) {
    r.diagnostic = "register snapshot CRC mismatch";
    return r;
  }
  r.stateCrcOk = true;
  r.checkpoint = std::move(ck);
  r.ok = true;
  return r;
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string CheckpointStore::slotPath(const std::string& task,
                                      unsigned slot) const {
  return dir_ + "/" + sanitize(task) + ".g" + std::to_string(slot) + ".ck";
}

std::vector<std::string> CheckpointStore::slotPaths(
    const std::string& task) const {
  return {slotPath(task, 0), slotPath(task, 1)};
}

std::vector<std::string> CheckpointStore::taskNames() const {
  std::vector<std::string> names;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir_, ec)) {
    const std::string stem = entry.path().filename().string();
    // "<task>.g<slot>.ck"
    const std::size_t tail = stem.rfind(".g");
    if (tail == std::string::npos || stem.size() < tail + 5 ||
        stem.substr(stem.size() - 3) != ".ck") {
      continue;
    }
    names.push_back(stem.substr(0, tail));
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

namespace {

std::vector<std::uint8_t> readAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

}  // namespace

std::uint64_t CheckpointStore::latestOnDisk(const std::string& task) const {
  std::uint64_t latest = 0;
  for (unsigned slot = 0; slot < 2; ++slot) {
    const std::vector<std::uint8_t> bytes =
        readAll(slotPath(task, slot));
    if (bytes.size() < kHeaderBytes ||
        !std::equal(kMagic, kMagic + 4, bytes.begin())) {
      continue;
    }
    Reader hdr{bytes.data() + 4, bytes.size() - 4};
    hdr.u16();  // version — numbering must advance past even bad slots
    latest = std::max(latest, hdr.u64());
  }
  return latest;
}

CheckpointStore::WriteResult CheckpointStore::write(const TaskCheckpoint& ck) {
  std::uint64_t& last = lastGen_[ck.task];
  if (last == 0) last = latestOnDisk(ck.task);
  const std::uint64_t gen = last + 1;
  last = gen;
  const std::vector<std::uint8_t> bytes = encodeCheckpoint(ck, gen);
  WriteResult wr;
  wr.generation = gen;
  wr.bytes = bytes.size();
  wr.path = slotPath(ck.task, static_cast<unsigned>(gen & 1));
  std::ofstream out(wr.path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    throw std::runtime_error("checkpoint write failed: " + wr.path);
  }
  ++stats_.writes;
  stats_.bytesWritten += wr.bytes;
  return wr;
}

CheckpointStore::LoadResult CheckpointStore::load(
    const std::string& task) const {
  ++stats_.loads;
  LoadResult lr;
  struct Slot {
    bool present = false;
    DecodeResult decoded;
    bool valid = false;
  };
  Slot slots[2];
  for (unsigned s = 0; s < 2; ++s) {
    const std::vector<std::uint8_t> bytes = readAll(slotPath(task, s));
    if (bytes.empty()) continue;
    slots[s].present = true;
    slots[s].decoded = decodeCheckpoint(bytes);
    DecodeResult& d = slots[s].decoded;
    if (d.ok && (d.generation & 1) != s) {
      // The slot parity encodes which generation a slot may legally hold;
      // a mismatch means the header generation was re-stamped after the
      // write (the stale-generation fault class).
      d.ok = false;
      d.diagnostic = "stale generation " + std::to_string(d.generation) +
                     " in slot " + std::to_string(s);
    }
    if (d.ok) {
      slots[s].valid = true;
    } else {
      ++lr.corruptSlots;
      ++stats_.corruptSlots;
      lr.slotDiagnostics.push_back("slot " + std::to_string(s) + ": " +
                                   d.diagnostic);
    }
  }
  int best = -1;
  for (int s = 0; s < 2; ++s) {
    if (slots[s].valid &&
        (best < 0 ||
         slots[s].decoded.generation > slots[best].decoded.generation)) {
      best = s;
    }
  }
  if (best < 0) {
    ++stats_.failedLoads;
    lr.diagnostic = "no intact checkpoint for '" + task + "'";
    for (const std::string& d : lr.slotDiagnostics) {
      lr.diagnostic += "; " + d;
    }
    if (lr.slotDiagnostics.empty()) lr.diagnostic += " (no slots on disk)";
    return lr;
  }
  lr.ok = true;
  lr.checkpoint = slots[best].decoded.checkpoint;
  lr.generation = slots[best].decoded.generation;
  // A rejected slot always means this load survived a corruption: by the
  // parity protocol the other slot held the generation adjacent to the one
  // returned, so recovery fell back past it to the previous good write.
  lr.fellBack = lr.corruptSlots > 0;
  if (lr.fellBack) ++stats_.fallbacks;
  return lr;
}

}  // namespace vfpga::fault
