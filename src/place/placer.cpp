#include "place/placer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace vfpga {

namespace {

/// Pseudo-position of port nets: ports are bound (by the compiler, in
/// order) to pads along the region's north and south edges, so anchor the
/// i-th port above/below the region, spread across its width.
CellSite portAnchor(const Region& r, std::size_t portIndex, bool isInput,
                    std::size_t portsOfKind) {
  const std::size_t denom = std::max<std::size_t>(portsOfKind, 1);
  const std::uint16_t x = static_cast<std::uint16_t>(
      r.x0 + portIndex * r.w / denom);
  // Inputs anchor south, outputs north (arbitrary but stable).
  const std::uint16_t y = isInput ? r.y0 : r.y1();
  return {std::min<std::uint16_t>(x, r.x1()), y};
}

/// Incremental-cost engine shared by place() and placementCost().
class CostModel {
 public:
  CostModel(const MappedNetlist& m, const Region& region)
      : m_(&m), region_(region), sinks_(m.computeSinks()),
        netsOfCell_(m.cells.size()) {
    for (NetId n = 0; n < m.netCount(); ++n) {
      const auto& s = sinks_[n];
      if (s.cellPins.empty() && s.outputPorts.empty()) continue;
      live_.push_back(n);
      if (!m.netIsInput(n)) addCellNet(m.cellOfNet(n), n);
      for (auto [cell, pin] : s.cellPins) {
        (void)pin;
        addCellNet(cell, n);
      }
    }
  }

  double netCost(NetId n, const std::vector<CellSite>& sites) const {
    int minX = 1 << 30, maxX = -(1 << 30), minY = 1 << 30, maxY = -(1 << 30);
    auto grow = [&](CellSite site) {
      minX = std::min(minX, static_cast<int>(site.x));
      maxX = std::max(maxX, static_cast<int>(site.x));
      minY = std::min(minY, static_cast<int>(site.y));
      maxY = std::max(maxY, static_cast<int>(site.y));
    };
    if (m_->netIsInput(n)) {
      grow(portAnchor(region_, n, true, m_->inputs.size()));
    } else {
      grow(sites[m_->cellOfNet(n)]);
    }
    const auto& s = sinks_[n];
    for (auto [cell, pin] : s.cellPins) {
      (void)pin;
      grow(sites[cell]);
    }
    for (std::uint32_t o : s.outputPorts) {
      grow(portAnchor(region_, o, false, m_->outputs.size()));
    }
    return (maxX - minX) + (maxY - minY);
  }

  double totalCost(const std::vector<CellSite>& sites) const {
    double cost = 0.0;
    for (NetId n : live_) cost += netCost(n, sites);
    return cost;
  }

  const std::vector<NetId>& netsOfCell(std::uint32_t c) const {
    return netsOfCell_[c];
  }

 private:
  void addCellNet(std::size_t cell, NetId n) {
    auto& v = netsOfCell_[cell];
    if (v.empty() || v.back() != n) v.push_back(n);
  }

  const MappedNetlist* m_;
  Region region_;
  std::vector<MappedNetlist::NetSinks> sinks_;
  std::vector<NetId> live_;
  std::vector<std::vector<NetId>> netsOfCell_;
};

}  // namespace

double placementCost(const MappedNetlist& m, const Placement& p) {
  return CostModel(m, p.region).totalCost(p.sites);
}

Placement place(const MappedNetlist& m, const Region& region, Rng& rng,
                const PlaceOptions& options) {
  if (m.cells.size() > region.clbCount()) {
    throw std::runtime_error("region too small: " +
                             std::to_string(m.cells.size()) + " cells into " +
                             std::to_string(region.clbCount()) + " CLBs");
  }
  Placement p;
  p.region = region;
  p.sites.resize(m.cells.size());

  // Initial placement: shuffled sites, cells take the first N.
  std::vector<CellSite> sites;
  sites.reserve(region.clbCount());
  for (std::uint16_t y = region.y0; y <= region.y1(); ++y) {
    for (std::uint16_t x = region.x0; x <= region.x1(); ++x) {
      sites.push_back(CellSite{x, y});
    }
  }
  for (std::size_t i = sites.size(); i > 1; --i) {
    std::swap(sites[i - 1], sites[rng.below(i)]);
  }
  std::vector<std::int32_t> occupant(sites.size(), -1);
  std::vector<std::uint32_t> siteOf(m.cells.size());
  for (std::uint32_t c = 0; c < m.cells.size(); ++c) {
    occupant[c] = static_cast<std::int32_t>(c);
    siteOf[c] = c;
    p.sites[c] = sites[c];
  }

  CostModel model(m, region);
  double cost = model.totalCost(p.sites);
  if (m.cells.size() <= 1 || sites.size() <= 1) {
    p.finalCost = cost;
    return p;
  }

  std::vector<NetId> touched;
  // Attempts one move; returns the (applied) cost delta, 0 if rejected.
  auto tryMove = [&](bool forceAccept, double T) -> double {
    const std::uint32_t c =
        static_cast<std::uint32_t>(rng.below(m.cells.size()));
    const std::uint32_t target =
        static_cast<std::uint32_t>(rng.below(sites.size()));
    const std::uint32_t from = siteOf[c];
    if (target == from) return 0.0;
    const std::int32_t other = occupant[target];

    touched.clear();
    for (NetId n : model.netsOfCell(c)) touched.push_back(n);
    if (other >= 0) {
      for (NetId n : model.netsOfCell(static_cast<std::uint32_t>(other))) {
        touched.push_back(n);
      }
    }
    std::sort(touched.begin(), touched.end());
    touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

    double before = 0.0;
    for (NetId n : touched) before += model.netCost(n, p.sites);

    auto swapSites = [&]() {
      occupant[from] = other;
      occupant[target] = static_cast<std::int32_t>(c);
      siteOf[c] = target;
      p.sites[c] = sites[target];
      if (other >= 0) {
        siteOf[static_cast<std::uint32_t>(other)] = from;
        p.sites[static_cast<std::uint32_t>(other)] = sites[from];
      }
    };
    swapSites();

    double after = 0.0;
    for (NetId n : touched) after += model.netCost(n, p.sites);
    const double delta = after - before;

    bool keep = forceAccept || delta <= 0 ||
                (T > 0 && rng.uniform() < std::exp(-delta / T));
    if (keep) {
      cost += delta;
      return delta;
    }
    // Revert.
    occupant[target] = other;
    occupant[from] = static_cast<std::int32_t>(c);
    siteOf[c] = from;
    p.sites[c] = sites[from];
    if (other >= 0) {
      siteOf[static_cast<std::uint32_t>(other)] = target;
      p.sites[static_cast<std::uint32_t>(other)] = sites[target];
    }
    return 0.0;
  };

  // Initial temperature from the mean |delta| of forced probe moves.
  double sumAbs = 0.0;
  const int probes = 32;
  for (int i = 0; i < probes; ++i) sumAbs += std::abs(tryMove(true, 0.0));
  double T = std::max(
      1.0, (sumAbs / probes) / -std::log(options.initialAcceptance));
  const double T0 = T;
  const std::uint64_t movesPerTemp = std::max<std::uint64_t>(
      16, options.movesPerCellPerTemp * m.cells.size());
  while (T > options.stopTemperatureRatio * T0) {
    for (std::uint64_t i = 0; i < movesPerTemp; ++i) tryMove(false, T);
    T *= options.coolingFactor;
  }
  // Greedy cleanup pass at T = 0.
  for (std::uint64_t i = 0; i < movesPerTemp; ++i) tryMove(false, 0.0);

  p.finalCost = model.totalCost(p.sites);
  return p;
}

}  // namespace vfpga
