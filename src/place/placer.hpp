// Simulated-annealing placement of mapped cells onto the CLBs of a region.
//
// Cost is the half-perimeter wirelength (HPWL) over all nets, with port
// nets anchored to the region's north/south boundary (where the pads the
// compiler will bind them to live). Deterministic given the Rng seed.
#pragma once

#include <cstdint>
#include <vector>

#include "place/region.hpp"
#include "sim/rng.hpp"
#include "techmap/mapped_netlist.hpp"

namespace vfpga {

struct CellSite {
  std::uint16_t x = 0;
  std::uint16_t y = 0;
};

struct Placement {
  Region region;
  std::vector<CellSite> sites;  ///< one per mapped cell
  double finalCost = 0.0;
};

struct PlaceOptions {
  /// Moves per temperature step, as a multiple of the cell count.
  std::uint32_t movesPerCellPerTemp = 8;
  double initialAcceptance = 0.8;  ///< target initial acceptance rate
  double coolingFactor = 0.9;
  double stopTemperatureRatio = 0.005;  ///< stop at T < ratio * T0
};

/// Places `m` into `region`. Throws std::runtime_error when the region has
/// fewer CLBs than the netlist has cells.
Placement place(const MappedNetlist& m, const Region& region, Rng& rng,
                const PlaceOptions& options = {});

/// HPWL cost of a placement (exposed for tests and the ablation bench).
double placementCost(const MappedNetlist& m, const Placement& p);

}  // namespace vfpga
