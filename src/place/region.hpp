// Rectangular placement region: a sub-rectangle of the CLB grid a circuit
// is confined to. Full-height column strips (y0 = 0, h = rows) are the
// partition unit used by the OS layer; the compiler accepts any rectangle.
#pragma once

#include <cstdint>

#include "fabric/geometry.hpp"

namespace vfpga {

struct Region {
  std::uint16_t x0 = 0;
  std::uint16_t y0 = 0;
  std::uint16_t w = 0;
  std::uint16_t h = 0;

  std::uint32_t clbCount() const { return std::uint32_t{w} * h; }
  std::uint16_t x1() const { return static_cast<std::uint16_t>(x0 + w - 1); }
  std::uint16_t y1() const { return static_cast<std::uint16_t>(y0 + h - 1); }

  bool contains(int x, int y) const {
    return x >= x0 && x <= x1() && y >= y0 && y <= y1();
  }
  bool fitsIn(const FabricGeometry& g) const {
    return w > 0 && h > 0 && x0 + w <= g.cols && y0 + h <= g.rows;
  }
  /// Full device rectangle.
  static Region full(const FabricGeometry& g) {
    return Region{0, 0, g.cols, g.rows};
  }
  /// Full-height column strip [c0, c0 + w).
  static Region columns(const FabricGeometry& g, std::uint16_t c0,
                        std::uint16_t width) {
    return Region{c0, 0, width, g.rows};
  }

  bool operator==(const Region&) const = default;
};

}  // namespace vfpga
