#include "compile/compiler.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "netlist/optimize.hpp"
#include "sim/rng.hpp"

namespace vfpga {

namespace {
std::uint64_t wallNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

std::uint64_t Compiler::recordPhase(const char* phase,
                                    const std::string& circuit,
                                    std::uint64_t startNs,
                                    obs::AttrList extra) const {
  if (tracer_ == nullptr && flowMetrics_ == nullptr) return 0;
  const std::uint64_t end = wallNs();
  const std::uint64_t dur = end > startNs ? end - startNs : 0;
  std::uint64_t spanId = 0;
  if (tracer_ != nullptr) {
    obs::AttrList attrs{{"circuit", circuit}};
    attrs.insert(attrs.end(), extra.begin(), extra.end());
    spanId = tracer_->complete(phase, "flow", startNs, dur, std::move(attrs));
  }
  if (flowMetrics_ != nullptr) {
    flowMetrics_
        ->stats(std::string("vfpga_flow_") + phase + "_ns", {},
                "Wall-clock time of this compile-flow phase")
        .observe(static_cast<double>(dur));
  }
  return spanId;
}

bool CompiledCircuit::needsInitialState() const {
  return std::any_of(initialState.begin(), initialState.end(),
                     [](bool b) { return b; });
}

std::uint32_t CompiledCircuit::padSlotOf(const std::string& portName) const {
  for (const PortBinding& p : ports) {
    if (p.name == portName) return p.padSlot;
  }
  throw std::out_of_range("no such port: " + portName);
}

Bitstream CompiledCircuit::partialBitstream() const {
  return makePartialBitstream(image, frameBits, frames);
}

Bitstream CompiledCircuit::fullBitstream() const {
  return makeFullBitstream(image, frameBits);
}

std::vector<std::uint32_t> Compiler::regionPadSlots(const Region& region,
                                                    bool relocatable) const {
  const FabricGeometry& g = dev_->geometry();
  std::vector<std::uint32_t> slots;
  // South pads of the region's columns first (input anchors are south),
  // then north pads; west/east pads only for non-relocatable circuits that
  // touch the device edge.
  for (std::uint16_t x = region.x0; x <= region.x1(); ++x) {
    const std::size_t pad = g.cols + x;  // south
    for (int s = 0; s < g.slotsPerPad; ++s) {
      slots.push_back(static_cast<std::uint32_t>(pad * g.slotsPerPad + s));
    }
  }
  for (std::uint16_t x = region.x0; x <= region.x1(); ++x) {
    const std::size_t pad = x;  // north
    for (int s = 0; s < g.slotsPerPad; ++s) {
      slots.push_back(static_cast<std::uint32_t>(pad * g.slotsPerPad + s));
    }
  }
  if (!relocatable) {
    if (region.x0 == 0) {
      for (std::uint16_t y = 0; y < g.rows; ++y) {
        const std::size_t pad = 2u * g.cols + y;  // west
        for (int s = 0; s < g.slotsPerPad; ++s) {
          slots.push_back(static_cast<std::uint32_t>(pad * g.slotsPerPad + s));
        }
      }
    }
    if (region.x1() == g.cols - 1) {
      for (std::uint16_t y = 0; y < g.rows; ++y) {
        const std::size_t pad = 2u * g.cols + g.rows + y;  // east
        for (int s = 0; s < g.slotsPerPad; ++s) {
          slots.push_back(static_cast<std::uint32_t>(pad * g.slotsPerPad + s));
        }
      }
    }
  }
  return slots;
}

std::size_t Compiler::ioCapacity(const Region& region,
                                 bool relocatable) const {
  return regionPadSlots(region, relocatable).size();
}

std::vector<char> Compiler::regionMask(const Region& region,
                                       bool relocatable) const {
  const RoutingGraph& rrg = dev_->rrg();
  std::vector<char> mask =
      columnRangeMask(rrg, region.x0, region.x1());
  if (relocatable) {
    // Exclude resources that do not exist identically in every same-width
    // strip: the device's rightmost vertical channel (owned by the last
    // column) and the west/east pads.
    const FabricGeometry& g = rrg.geometry();
    for (RRNodeId n = 0; n < rrg.nodeCount(); ++n) {
      if (!mask[n]) continue;
      const RRNode& node = rrg.node(n);
      if (node.kind == RRKind::kWireV && node.x == g.cols) mask[n] = 0;
      if (node.kind == RRKind::kPadSlot) {
        const PadSide side = padLocation(g, node.pad).side;
        if (side == PadSide::kWest || side == PadSide::kEast) mask[n] = 0;
      }
    }
  }
  return mask;
}

CompiledCircuit Compiler::compile(const Netlist& nl, const Region& region,
                                  const CompileOptions& options) {
  const std::uint64_t t0 = wallNs();
  MapOptions mo;
  mo.k = dev_->geometry().lutInputs;
  MappedNetlist mapped;
  if (options.optimize) {
    const std::uint64_t tSynth = wallNs();
    Netlist optimized = vfpga::optimize(nl);
    recordPhase("synth", nl.name(), tSynth);
    const std::uint64_t tMap = wallNs();
    mapped = mapToLuts(optimized, mo);
    recordPhase("techmap", nl.name(), tMap);
  } else {
    const std::uint64_t tMap = wallNs();
    mapped = mapToLuts(nl, mo);
    recordPhase("techmap", nl.name(), tMap);
  }
  CompiledCircuit c = compileMapped(mapped, nl.name(), region, options);
  c.compileSpanId = recordPhase("compile", nl.name(), t0,
                                {{"cells", std::to_string(c.cellCount())}});
  return c;
}

CompiledCircuit Compiler::compileMapped(const MappedNetlist& mapped,
                                        const std::string& name,
                                        const Region& region,
                                        const CompileOptions& options) {
  const FabricGeometry& g = dev_->geometry();
  const RoutingGraph& rrg = dev_->rrg();
  if (!region.fitsIn(g)) throw CompileError("region outside device");
  if (mapped.k > g.lutInputs) {
    throw CompileError("mapping K exceeds device LUT inputs");
  }
  if (mapped.cells.size() > region.clbCount()) {
    throw CompileError(name + ": " + std::to_string(mapped.cells.size()) +
                       " cells exceed region capacity " +
                       std::to_string(region.clbCount()));
  }
  const auto slots = regionPadSlots(region, options.relocatable);
  const std::size_t portCount = mapped.inputs.size() + mapped.outputs.size();
  if (portCount > slots.size()) {
    throw CompileError(name + ": " + std::to_string(portCount) +
                       " ports exceed region I/O capacity " +
                       std::to_string(slots.size()));
  }

  CompiledCircuit c;
  c.name = name;
  c.region = region;
  c.relocatable = options.relocatable;
  c.mapped = mapped;
  c.frameBits = dev_->configMap().frameBits();

  // Port binding: inputs from the front of the slot list (south pads),
  // outputs from the back (north pads).
  std::size_t lo = 0, hi = slots.size();
  for (const MappedPort& p : mapped.inputs) {
    c.ports.push_back(PortBinding{p.name, slots[lo++], true});
  }
  for (const MappedPort& p : mapped.outputs) {
    c.ports.push_back(PortBinding{p.name, slots[--hi], false});
  }

  // Route requests, one per live net.
  const auto sinks = mapped.computeSinks();
  const std::vector<char> mask = regionMask(region, options.relocatable);

  Rng rng(options.seed);
  CompileError lastError("place-and-route failed");
  for (int attempt = 0; attempt < std::max(1, options.attempts); ++attempt) {
    Rng attemptRng = rng.fork();
    const std::uint64_t tPlace = wallNs();
    c.placement = place(mapped, region, attemptRng, options.place);
    recordPhase("place", name, tPlace,
                {{"attempt", std::to_string(attempt + 1)}});

    std::vector<RouteRequest> requests;
    auto slotNode = [&](std::uint32_t denseSlot) {
      return rrg.padSlot(denseSlot / g.slotsPerPad,
                         static_cast<int>(denseSlot % g.slotsPerPad));
    };
    for (NetId n = 0; n < mapped.netCount(); ++n) {
      const auto& s = sinks[n];
      if (s.cellPins.empty() && s.outputPorts.empty()) continue;
      RouteRequest req;
      if (mapped.netIsInput(n)) {
        req.source = slotNode(c.ports[n].padSlot);
      } else {
        const auto site = c.placement.sites[mapped.cellOfNet(n)];
        req.source = rrg.clbOut(site.x, site.y);
      }
      for (auto [cell, pin] : s.cellPins) {
        const auto site = c.placement.sites[cell];
        req.sinks.push_back(rrg.clbIn(site.x, site.y, static_cast<int>(pin)));
      }
      for (std::uint32_t o : s.outputPorts) {
        req.sinks.push_back(
            slotNode(c.ports[mapped.inputs.size() + o].padSlot));
      }
      requests.push_back(std::move(req));
    }

    Router router(rrg, mask);
    const std::uint64_t tRoute = wallNs();
    auto routed = router.routeAll(requests, options.route);
    recordPhase("route", name, tRoute,
                {{"attempt", std::to_string(attempt + 1)},
                 {"ok", routed ? "true" : "false"}});
    if (!routed) {
      lastError = CompileError(name + ": routing failed (attempt " +
                               std::to_string(attempt + 1) + ")");
      continue;
    }
    c.routes = std::move(*routed);

    // FF bookkeeping: record each FF cell's site (mapped FF order) so
    // state save/restore works regardless of what else is on the device.
    c.ffSites.clear();
    c.initialState.clear();
    for (std::uint32_t cell = 0; cell < mapped.cells.size(); ++cell) {
      if (!mapped.cells[cell].hasFf) continue;
      c.ffSites.push_back(c.placement.sites[cell]);
      c.initialState.push_back(mapped.cells[cell].ffInit);
    }

    const std::uint64_t tPaint = wallNs();
    paintImage(c);
    // Direct compileMapped() callers get the bitstream span as the link
    // anchor; compile() overwrites with the enclosing `compile` span.
    c.compileSpanId = recordPhase("bitstream", name, tPaint);
    return c;
  }
  throw lastError;
}

void Compiler::paintImage(CompiledCircuit& c) const {
  const ConfigMap& map = dev_->configMap();
  const FabricGeometry& g = dev_->geometry();
  c.image = ConfigImage(map.totalBits());

  // CLB cells: enable, FF mode, K-expanded LUT table.
  for (std::uint32_t cell = 0; cell < c.mapped.cells.size(); ++cell) {
    const MappedCell& mc = c.mapped.cells[cell];
    const CellSite site = c.placement.sites[cell];
    c.image.set(map.clbEnableBit(site.x, site.y), true);
    if (mc.hasFf) c.image.set(map.clbFfEnableBit(site.x, site.y), true);
    const std::uint32_t usedBitsMask =
        (1u << mc.inputs.size()) - 1u;
    for (std::uint32_t j = 0; j < g.lutBits(); ++j) {
      const std::uint32_t folded = j & usedBitsMask;
      if ((mc.lutTable >> folded) & 1) {
        c.image.set(map.clbLutBit(site.x, site.y, j), true);
      }
    }
  }

  // Pad slots.
  for (const PortBinding& p : c.ports) {
    c.image.set(map.padSlotEnableBit(p.padSlot), true);
    if (!p.isInput) c.image.set(map.padSlotOutputBit(p.padSlot), true);
  }

  // Switches.
  for (const RoutedNet& net : c.routes.nets) {
    for (RREdgeId e : net.edges) c.image.set(map.edgeBit(e), true);
  }

  // Frames touched = the region's columns.
  auto [f0, f1] = map.framesOfColumns(c.region.x0, c.region.x1());
  c.frames.clear();
  for (std::uint32_t f = f0; f < f1; ++f) c.frames.push_back(f);
}

CompiledCircuit Compiler::relocate(const CompiledCircuit& c,
                                   std::uint16_t newX0) {
  if (!c.relocatable) throw CompileError("circuit is not relocatable");
  const FabricGeometry& g = dev_->geometry();
  if (newX0 + c.region.w > g.cols) {
    throw CompileError("relocation target outside device");
  }
  const int dx = static_cast<int>(newX0) - static_cast<int>(c.region.x0);
  if (dx == 0) return c;
  const RoutingGraph& rrg = dev_->rrg();

  CompiledCircuit r = c;
  r.region.x0 = newX0;
  r.placement.region = r.region;
  for (CellSite& s : r.placement.sites) {
    s.x = static_cast<std::uint16_t>(s.x + dx);
  }
  for (CellSite& s : r.ffSites) {
    s.x = static_cast<std::uint16_t>(s.x + dx);
  }

  auto translateNode = [&](RRNodeId n) -> RRNodeId {
    const RRNode& node = rrg.node(n);
    switch (node.kind) {
      case RRKind::kClbOut:
        return rrg.clbOut(node.x + dx, node.y);
      case RRKind::kClbIn:
        return rrg.clbIn(node.x + dx, node.y, node.index);
      case RRKind::kWireH:
        return rrg.wireH(node.x + dx, node.y, node.index);
      case RRKind::kWireV:
        return rrg.wireV(node.x + dx, node.y, node.index);
      case RRKind::kPadSlot: {
        const PadLocation loc = padLocation(g, node.pad);
        std::size_t pad;
        if (loc.side == PadSide::kNorth) {
          pad = static_cast<std::size_t>(loc.offset + dx);
        } else if (loc.side == PadSide::kSouth) {
          pad = g.cols + static_cast<std::size_t>(loc.offset + dx);
        } else {
          throw CompileError("relocatable circuit uses west/east pads");
        }
        return rrg.padSlot(pad, node.index);
      }
    }
    throw CompileError("unreachable node kind");
  };

  for (RoutedNet& net : r.routes.nets) {
    for (RRNodeId& n : net.nodes) n = translateNode(n);
    for (RREdgeId& e : net.edges) {
      const RRNodeId from = translateNode(rrg.edge(e).from);
      const RRNodeId to = translateNode(rrg.edge(e).to);
      RREdgeId found = static_cast<RREdgeId>(-1);
      for (RREdgeId cand : rrg.edgesFrom(from)) {
        if (rrg.edge(cand).to == to) {
          found = cand;
          break;
        }
      }
      if (found == static_cast<RREdgeId>(-1)) {
        throw CompileError("translated switch missing (fabric not uniform?)");
      }
      e = found;
    }
  }

  for (PortBinding& p : r.ports) {
    const std::size_t pad = p.padSlot / g.slotsPerPad;
    const std::size_t slot = p.padSlot % g.slotsPerPad;
    const PadLocation loc = padLocation(g, pad);
    std::size_t newPad;
    if (loc.side == PadSide::kNorth) {
      newPad = static_cast<std::size_t>(loc.offset + dx);
    } else if (loc.side == PadSide::kSouth) {
      newPad = g.cols + static_cast<std::size_t>(loc.offset + dx);
    } else {
      throw CompileError("relocatable circuit uses west/east pads");
    }
    p.padSlot = static_cast<std::uint32_t>(newPad * g.slotsPerPad + slot);
  }

  paintImage(r);
  if (const Compiler::RelocateObserver& obs = relocateObserver()) {
    obs(g, dev_->timing(), r.frameBits, c, r);
  }
  return r;
}

namespace {
Compiler::RelocateObserver& relocateObserverSlot() {
  static Compiler::RelocateObserver obs;
  return obs;
}
}  // namespace

Compiler::RelocateObserver Compiler::setRelocateObserver(
    RelocateObserver obs) {
  RelocateObserver prev = std::move(relocateObserverSlot());
  relocateObserverSlot() = std::move(obs);
  return prev;
}

const Compiler::RelocateObserver& Compiler::relocateObserver() {
  return relocateObserverSlot();
}

}  // namespace vfpga
