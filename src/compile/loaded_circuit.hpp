// Convenience harness for driving a compiled circuit that is currently
// configured on a device: name-based port access (with bus helpers) and
// FF-state translation between the mapped-netlist order and the device's
// dense FF order. Used by tests, examples and the OS execution engine.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "compile/compiler.hpp"

namespace vfpga {

class LoadedCircuit {
 public:
  /// The circuit's bitstream must already be in the device (this class
  /// never configures; the OS layer owns download policy and cost).
  LoadedCircuit(Device& dev, const CompiledCircuit& circuit)
      : dev_(&dev), c_(&circuit) {}

  const CompiledCircuit& circuit() const { return *c_; }

  void setInput(std::string_view port, bool v);
  /// Drives input bits base0..base{w-1} (bare name when w == 1).
  void setInputBus(const std::string& base, std::size_t width,
                   std::uint64_t value);
  bool output(std::string_view port);
  std::uint64_t outputBus(const std::string& base, std::size_t width);

  void evaluate() { dev_->evaluate(); }
  void tick() { dev_->tick(); }

  /// FF state in mapped-netlist order (stable across relocation), as the
  /// OS stores it when preempting a task.
  std::vector<bool> saveState();
  void restoreState(const std::vector<bool>& mappedOrderState);
  /// Writes the circuit's declared initial FF values into the device.
  void applyInitialState();

 private:
  Device* dev_;
  const CompiledCircuit* c_;
};

}  // namespace vfpga
