// End-to-end circuit compiler: Netlist -> K-LUT mapping -> placement ->
// routing -> configuration image / bitstreams, targeting a rectangular
// region of a device.
//
// Compiled circuits are *relocatable* by default: they use only resources
// that exist identically in every same-width column strip (north/south
// pads, the strip's own channels), so `relocate()` can retarget them to
// another strip by pure coordinate translation — no re-placement or
// re-routing. This implements the paper's "relocatable circuit to be loaded
// virtually in any location of the FPGA" (§4); the download time of the
// relocated bitstream is the relocation cost the paper warns about.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "fabric/bitstream.hpp"
#include "fabric/device.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/span_tracer.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "techmap/lut_mapper.hpp"
#include "techmap/mapped_netlist.hpp"

namespace vfpga {

struct CompileOptions {
  std::uint64_t seed = 1;
  /// Run the technology-independent optimizer (constant folding, CSE,
  /// dead-code removal) before mapping.
  bool optimize = true;
  /// Restrict I/O to north/south pads and routing to translation-invariant
  /// resources so the result can be relocated. Turn off to let a circuit
  /// that spans the full device use every pad and channel.
  bool relocatable = true;
  int attempts = 4;  ///< place-and-route retries with reseeded placement
  PlaceOptions place;
  RouteOptions route;
};

struct PortBinding {
  std::string name;
  std::uint32_t padSlot = 0;  ///< dense pad-slot index
  bool isInput = true;
};

/// A fully compiled circuit, ready for download to its region (or, if
/// relocatable, any same-width strip).
struct CompiledCircuit {
  std::string name;
  Region region;
  bool relocatable = true;
  MappedNetlist mapped;
  Placement placement;
  RouteResult routes;
  std::vector<PortBinding> ports;  ///< inputs then outputs, port order
  ConfigImage image;               ///< full-device-sized, region bits only
  std::vector<std::uint32_t> frames;  ///< config frames the circuit touches
  std::uint32_t frameBits = 0;

  /// Span id of the enclosing `compile` flow span (0 when no tracer was
  /// attached). OS-side download/exec spans link back to it, connecting
  /// runtime behavior to the compile decision that produced the config.
  std::uint64_t compileSpanId = 0;

  /// CLB site of the i-th FF of the mapped netlist (MappedEvaluator
  /// order); stable under multi-circuit residency, translated by relocate().
  std::vector<CellSite> ffSites;
  /// Initial FF values in the same (mapped) order; all-zero circuits need
  /// no state writeback after download.
  std::vector<bool> initialState;

  std::size_t cellCount() const { return mapped.cells.size(); }
  std::size_t ffCount() const { return ffSites.size(); }
  std::size_t portCount() const { return ports.size(); }
  bool needsInitialState() const;

  /// Pad-slot index of a named port (throws std::out_of_range).
  std::uint32_t padSlotOf(const std::string& portName) const;

  /// Bitstream carrying only this circuit's frames.
  Bitstream partialBitstream() const;
  /// Full-device bitstream (this circuit alone on an otherwise blank part).
  Bitstream fullBitstream() const;
};

class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Compiler {
 public:
  /// Compiles against the target's geometry and configuration layout. The
  /// device is only read (never configured) by the compiler.
  explicit Compiler(Device& target) : dev_(&target) {}

  const FabricGeometry& geometry() const { return dev_->geometry(); }

  /// Netlist in, compiled circuit out. Throws CompileError when the region
  /// cannot fit the cells or I/O, or place-and-route fails after retries.
  CompiledCircuit compile(const Netlist& nl, const Region& region,
                          const CompileOptions& options = {});

  /// Same, starting from an already-mapped netlist.
  CompiledCircuit compileMapped(const MappedNetlist& mapped,
                                const std::string& name, const Region& region,
                                const CompileOptions& options = {});

  /// Retargets a relocatable circuit to the strip starting at column
  /// `newX0` by coordinate translation. Throws CompileError for
  /// non-relocatable inputs or out-of-range targets.
  CompiledCircuit relocate(const CompiledCircuit& c, std::uint16_t newX0);

  /// Process-wide observer fired after every successful relocate() with
  /// the target fabric parameters and the (original, relocated) pair.
  /// Installed by the analysis layer (which links *against* this library,
  /// so the compiler cannot call it directly) to prove the relocated image
  /// still computes the source netlist; see
  /// analysis/equiv/verify.hpp::installRelocateVerifier. Returns the
  /// previous observer; pass {} to clear.
  using RelocateObserver = std::function<void(
      const FabricGeometry&, const DeviceTiming&, std::uint32_t frameBits,
      const CompiledCircuit& original, const CompiledCircuit& relocated)>;
  static RelocateObserver setRelocateObserver(RelocateObserver obs);
  static const RelocateObserver& relocateObserver();

  /// Pad-slot capacity available to a compile in `region`.
  std::size_t ioCapacity(const Region& region, bool relocatable) const;

  /// Attaches flow observers (both optional, not owned, may be nullptr to
  /// detach). With a tracer, every compile emits wall-clock spans per phase
  /// (synth, techmap, place, route, bitstream) plus an enclosing `compile`
  /// span; with a registry, each phase's wall time is observed into the
  /// `vfpga_flow_<phase>_ns` stats family.
  void setObservers(obs::SpanTracer* tracer, obs::MetricsRegistry* registry) {
    tracer_ = tracer;
    flowMetrics_ = registry;
  }

 private:
  Device* dev_;
  obs::SpanTracer* tracer_ = nullptr;
  obs::MetricsRegistry* flowMetrics_ = nullptr;

  /// Closes a flow phase opened at `startNs` (wall clock): span + stats.
  /// Returns the span id (0 with no tracer attached).
  std::uint64_t recordPhase(const char* phase, const std::string& circuit,
                            std::uint64_t startNs,
                            obs::AttrList extra = {}) const;

  std::vector<std::uint32_t> regionPadSlots(const Region& region,
                                            bool relocatable) const;
  std::vector<char> regionMask(const Region& region, bool relocatable) const;
  void paintImage(CompiledCircuit& c) const;
};

}  // namespace vfpga
