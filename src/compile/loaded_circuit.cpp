#include "compile/loaded_circuit.hpp"

#include <stdexcept>

#include "netlist/builder.hpp"

namespace vfpga {

void LoadedCircuit::setInput(std::string_view port, bool v) {
  dev_->setPadSlotInput(c_->padSlotOf(std::string(port)), v);
}

void LoadedCircuit::setInputBus(const std::string& base, std::size_t width,
                                std::uint64_t value) {
  for (std::size_t i = 0; i < width; ++i) {
    setInput(busBitName(base, i, width), ((value >> i) & 1) != 0);
  }
}

bool LoadedCircuit::output(std::string_view port) {
  return dev_->padSlotOutput(c_->padSlotOf(std::string(port)));
}

std::uint64_t LoadedCircuit::outputBus(const std::string& base,
                                       std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    if (output(busBitName(base, i, width))) v |= std::uint64_t{1} << i;
  }
  return v;
}

std::vector<bool> LoadedCircuit::saveState() {
  std::vector<bool> mapped(c_->ffSites.size());
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    mapped[i] = dev_->ffStateAt(c_->ffSites[i].x, c_->ffSites[i].y);
  }
  return mapped;
}

void LoadedCircuit::restoreState(const std::vector<bool>& mappedOrderState) {
  if (mappedOrderState.size() != c_->ffSites.size()) {
    throw std::invalid_argument("state size mismatch");
  }
  for (std::size_t i = 0; i < mappedOrderState.size(); ++i) {
    dev_->setFfStateAt(c_->ffSites[i].x, c_->ffSites[i].y,
                       mappedOrderState[i]);
  }
}

void LoadedCircuit::applyInitialState() {
  for (std::size_t i = 0; i < c_->ffSites.size(); ++i) {
    dev_->setFfStateAt(c_->ffSites[i].x, c_->ffSites[i].y,
                       c_->initialState[i]);
  }
}

}  // namespace vfpga
