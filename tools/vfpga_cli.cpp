// vfpga_cli — command-line front end to the library:
//
//   vfpga_cli list-circuits                 catalogue of application circuits
//   vfpga_cli list-devices                  device profiles and their numbers
//   vfpga_cli info --device <name>          geometry / config / timing detail
//   vfpga_cli compile --circuit <name> --device <name> [--width N]
//              [--no-optimize] [--out file.vfpb]       compile + stats
//   vfpga_cli simulate --circuit <name> --device <name> [--width N]
//              [--cycles N] [--seed N] [--vcd file.vcd] run on the device
//   vfpga_cli lint (--circuit <name> | --netlist file.vnl | --all)
//              [--device <name>] [--width N] [--no-optimize] [--json]
//              run every analysis pass over the flow; nonzero exit on any
//              error-severity diagnostic
//   vfpga_cli lint --list-rules             the rule registry
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <map>
#include <optional>
#include <string>

#include "analysis/flow_lint.hpp"
#include "analysis/netlist_lint.hpp"
#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "fabric/device_family.hpp"
#include "fabric/sta.hpp"
#include "fabric/vcd.hpp"
#include "netlist/optimize.hpp"
#include "netlist/text_io.hpp"
#include "sim/rng.hpp"
#include "workloads/app_circuits.hpp"
#include "workloads/compile_suite.hpp"

using namespace vfpga;
using workloads::AppCircuit;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool has(const std::string& k) const { return options.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    auto it = options.find(k);
    return it == options.end() ? dflt : it->second;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: vfpga_cli <command> [options]\n"
               "  list-circuits\n"
               "  list-devices\n"
               "  info --device <name>\n"
               "  compile (--circuit <name> | --netlist file.vnl)"
               " --device <name> [--width N] [--no-optimize]"
               " [--out file.vfpb]\n"
               "  simulate (--circuit <name> | --netlist file.vnl)"
               " --device <name> [--width N] [--cycles N] [--seed N]"
               " [--vcd file.vcd]\n"
               "  lint (--circuit <name> | --netlist file.vnl | --all)"
               " [--device <name>] [--width N] [--no-optimize] [--json]\n"
               "  lint --list-rules\n");
  return 2;
}

/// Loads the circuit under test: a built-in library circuit by name, or a
/// .vnl text netlist from disk.
AppCircuit loadCircuit(const Args& a) {
  if (a.has("netlist")) {
    std::ifstream in(a.get("netlist"));
    if (!in) throw std::runtime_error("cannot open " + a.get("netlist"));
    std::stringstream buf;
    buf << in.rdbuf();
    Netlist nl = parseNetlistText(buf.str());
    std::string name = nl.name().empty() ? a.get("netlist") : nl.name();
    return AppCircuit{name, "user", std::move(nl)};
  }
  return workloads::appCircuitByName(a.get("circuit"));
}

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return std::nullopt;
    key = key.substr(2);
    if (key == "no-optimize" || key == "all" || key == "json" ||
        key == "list-rules") {
      a.options[key] = "1";
    } else {
      if (i + 1 >= argc) return std::nullopt;
      a.options[key] = argv[++i];
    }
  }
  return a;
}

int listCircuits() {
  std::printf("%-14s %-12s %8s %8s %6s %6s\n", "name", "domain", "gates",
              "DFFs", "ins", "outs");
  for (const AppCircuit& c : workloads::allSuites()) {
    const GateCounts n = c.netlist.counts();
    std::printf("%-14s %-12s %8zu %8zu %6zu %6zu\n", c.name.c_str(),
                c.domain.c_str(), n.combinational, n.dffs, n.inputs,
                n.outputs);
  }
  return 0;
}

int listDevices() {
  std::printf("%-16s %6s %6s %5s %7s %12s %10s %9s\n", "name", "cols",
              "rows", "K", "wires", "config_bits", "full_ms", "partial?");
  for (const DeviceProfile& p : allProfiles()) {
    Device dev = p.makeDevice();
    ConfigPort port(dev, p.port);
    std::printf("%-16s %6u %6u %5u %7u %12u %10.2f %9s\n", p.name.c_str(),
                p.geometry.cols, p.geometry.rows, p.geometry.lutInputs,
                p.geometry.wiresPerChannel, dev.configMap().totalBits(),
                toMilliseconds(port.fullDownloadCost()),
                p.port.partialReconfig ? "yes" : "no");
  }
  return 0;
}

int deviceInfo(const Args& a) {
  DeviceProfile p = profileByName(a.get("device"));
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  std::printf("device profile: %s\n", p.name.c_str());
  std::printf("  CLB grid        %u x %u (%zu CLBs, %u-input LUTs)\n",
              p.geometry.cols, p.geometry.rows, p.geometry.clbCount(),
              p.geometry.lutInputs);
  std::printf("  routing         %u wires/channel, disjoint switchboxes\n",
              p.geometry.wiresPerChannel);
  std::printf("  I/O             %zu pads x %u slots = %zu pad slots\n",
              p.geometry.padCount(), p.geometry.slotsPerPad,
              p.geometry.padSlotCount());
  std::printf("  config RAM      %u bits in %u frames of %u bits\n",
              dev.configMap().totalBits(), dev.configMap().frameCount(),
              dev.configMap().frameBits());
  std::printf("  full download   %.3f ms (%s)\n",
              toMilliseconds(port.fullDownloadCost()),
              p.port.partialReconfig ? "partial reconfig supported"
                                     : "serial-full only");
  std::printf("  state access    %s\n",
              p.port.stateAccess ? "readback/writeback supported" : "none");
  return 0;
}

int compileCmd(const Args& a) {
  AppCircuit circuit = loadCircuit(a);
  DeviceProfile p = profileByName(a.get("device"));
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);

  Netlist nl = circuit.netlist;
  OptimizeStats ostats;
  if (!a.has("no-optimize")) {
    nl = optimize(nl, &ostats);
    std::printf("optimize: %zu -> %zu gates (%zu folded, %zu CSE, %zu dead)\n",
                ostats.gatesIn, ostats.gatesOut, ostats.constantsFolded,
                ostats.deduplicated, ostats.deadRemoved);
  }
  CompiledCircuit c = [&] {
    if (a.has("width")) {
      const auto w = static_cast<std::uint16_t>(std::stoul(a.get("width")));
      CompileOptions opt;
      opt.optimize = false;  // already done above
      return compiler.compile(nl, Region::columns(dev.geometry(), 0, w), opt);
    }
    return workloads::compileMinimal(compiler, nl);
  }();
  std::printf("compiled %s for %s:\n", circuit.name.c_str(), p.name.c_str());
  std::printf("  %zu LUT cells (%zu registered), depth %zu\n", c.cellCount(),
              c.ffCount(), c.mapped.depth());
  std::printf("  strip width %u columns, %zu ports, %zu config frames\n",
              c.region.w, c.portCount(), c.frames.size());
  const Bitstream bs = c.partialBitstream();
  std::printf("  partial bitstream %zu bits, download %.3f ms "
              "(full device: %.3f ms)\n",
              bs.bitCount(), toMilliseconds(port.downloadCost(bs)),
              toMilliseconds(port.fullDownloadCost()));
  dev.applyBitstream(c.fullBitstream());
  if (!dev.configOk()) {
    std::fprintf(stderr, "configuration fault: %s\n",
                 dev.elaboration().faults.front().c_str());
    return 1;
  }
  std::printf("  min clock period %llu ns (%.1f MHz)\n",
              static_cast<unsigned long long>(dev.minClockPeriod()),
              1e3 / static_cast<double>(dev.minClockPeriod()));
  std::fputs(renderTimingReport(dev, 3).c_str(), stdout);
  if (a.has("out")) {
    const auto bytes = serializeBitstream(bs);
    std::ofstream out(a.get("out"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::printf("  wrote %zu bytes to %s\n", bytes.size(),
                a.get("out").c_str());
  }
  return 0;
}

int simulateCmd(const Args& a) {
  AppCircuit circuit = loadCircuit(a);
  DeviceProfile p = profileByName(a.get("device"));
  Device dev = p.makeDevice();
  Compiler compiler(dev);
  CompiledCircuit c = [&] {
    if (a.has("width")) {
      const auto w = static_cast<std::uint16_t>(std::stoul(a.get("width")));
      return compiler.compile(circuit.netlist,
                              Region::columns(dev.geometry(), 0, w));
    }
    return workloads::compileMinimal(compiler, circuit.netlist);
  }();
  dev.applyBitstream(c.fullBitstream());
  if (!dev.configOk()) {
    std::fprintf(stderr, "configuration fault: %s\n",
                 dev.elaboration().faults.front().c_str());
    return 1;
  }
  LoadedCircuit lc(dev, c);
  lc.applyInitialState();

  const int cycles = std::stoi(a.get("cycles", "16"));
  Rng rng(std::stoull(a.get("seed", "1")));

  std::ofstream vcdFile;
  std::optional<VcdWriter> vcd;
  if (a.has("vcd")) {
    vcdFile.open(a.get("vcd"));
    vcd.emplace(vcdFile);
    for (const PortBinding& pb : c.ports) {
      if (pb.isInput) continue;
      vcd->addSignal(pb.name, [&lc, name = pb.name] {
        return lc.output(name);
      });
    }
  }

  // Header: input names then output names.
  std::printf("cycle |");
  for (const PortBinding& pb : c.ports) {
    if (pb.isInput) std::printf(" %s", pb.name.c_str());
  }
  std::printf(" ||");
  for (const PortBinding& pb : c.ports) {
    if (!pb.isInput) std::printf(" %s", pb.name.c_str());
  }
  std::printf("\n");
  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::printf("%5d |", cycle);
    for (const PortBinding& pb : c.ports) {
      if (!pb.isInput) continue;
      const bool v = rng.bernoulli(0.5);
      lc.setInput(pb.name, v);
      std::printf(" %*d", static_cast<int>(pb.name.size()), v ? 1 : 0);
    }
    dev.evaluate();
    std::printf(" ||");
    for (const PortBinding& pb : c.ports) {
      if (pb.isInput) continue;
      std::printf(" %*d", static_cast<int>(pb.name.size()),
                  lc.output(pb.name) ? 1 : 0);
    }
    std::printf("\n");
    if (vcd) vcd->sample(static_cast<std::uint64_t>(cycle) * 10);
    dev.tick();
  }
  if (a.has("vcd")) {
    std::printf("wrote VCD trace to %s\n", a.get("vcd").c_str());
  }
  return 0;
}

int lintCmd(const Args& a) {
  if (a.has("list-rules")) {
    for (const analysis::RuleInfo& r : analysis::allRules()) {
      std::printf("%-6s %-8s %s\n       %s\n", r.id,
                  analysis::severityName(r.severity), r.title, r.description);
    }
    return 0;
  }

  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  Device dev = p.makeDevice();
  Compiler compiler(dev);

  std::vector<AppCircuit> circuits;
  if (a.has("all")) {
    circuits = workloads::allSuites();
  } else {
    circuits.push_back(loadCircuit(a));
  }

  const bool json = a.has("json");
  std::size_t errors = 0;
  std::size_t warnings = 0;
  if (json) std::printf("[");
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const AppCircuit& circuit = circuits[i];
    analysis::Report rep;
    Netlist nl = circuit.netlist;
    if (!a.has("no-optimize")) nl = optimize(nl);
    analysis::lintNetlist(nl, rep);
    if (rep.ok()) {
      // The netlist is structurally sound: run the whole flow and lint
      // every compiled stage (mapping, placement, routing, bitstream).
      const CompiledCircuit c = [&] {
        if (a.has("width")) {
          const auto w =
              static_cast<std::uint16_t>(std::stoul(a.get("width")));
          CompileOptions opt;
          opt.optimize = false;  // handled above
          return compiler.compile(nl, Region::columns(dev.geometry(), 0, w),
                                  opt);
        }
        return workloads::compileMinimal(compiler, nl);
      }();
      analysis::lintCompiled(c, dev.rrg(), dev.configMap(), rep);
    }
    errors += rep.errorCount();
    warnings += rep.warningCount();
    if (json) {
      std::printf("%s{\"name\":\"%s\",\"report\":%s}", i == 0 ? "" : ",",
                  circuit.name.c_str(), rep.renderJson().c_str());
    } else {
      std::printf("== %s ==\n%s", circuit.name.c_str(),
                  rep.renderText().c_str());
    }
  }
  if (json) {
    std::printf("]\n");
  } else {
    std::printf("lint: %zu error(s), %zu warning(s) across %zu circuit(s)\n",
                errors, warnings, circuits.size());
  }
  return errors != 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "list-circuits") return listCircuits();
    if (args->command == "list-devices") return listDevices();
    if (args->command == "info") return deviceInfo(*args);
    if (args->command == "compile") return compileCmd(*args);
    if (args->command == "simulate") return simulateCmd(*args);
    if (args->command == "lint") return lintCmd(*args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
