// vfpga_cli — command-line front end to the library:
//
//   vfpga_cli list-circuits                 catalogue of application circuits
//   vfpga_cli list-devices                  device profiles and their numbers
//   vfpga_cli info --device <name>          geometry / config / timing detail
//   vfpga_cli compile --circuit <name> --device <name> [--width N]
//              [--no-optimize] [--out file.vfpb]       compile + stats
//   vfpga_cli simulate --circuit <name> --device <name> [--width N]
//              [--cycles N] [--seed N] [--vcd file.vcd] run on the device
//   vfpga_cli lint (--circuit <name> | --netlist file.vnl | --all)
//              [--device <name>] [--width N] [--no-optimize] [--json]
//              run every analysis pass over the flow; nonzero exit on any
//              error-severity diagnostic
//   vfpga_cli lint --list-rules             the rule registry
//   vfpga_cli lint --fix --netlist file.vnl [--out fixed.vnl]
//              auto-repair the fixable findings (NL007 dead gates) with
//              the equivalence-preserving rewrite and emit the repaired
//              netlist; exit 0 iff everything fixable was repaired and
//              the re-lint came back clean
//   vfpga_cli cluster [--devices N] [--seed N] [--campaign ci|heal|stress]
//              [--policy first_fit|least_loaded|best_fit]
//              [--format text|json] [--out file]
//              seeded multi-device campaign: shared bitstream cache,
//              admission backpressure, pluggable placement and live task
//              migration off degraded devices; the report is
//              byte-identical per seed and a copy lands in the obs output
//              directory; exit 0 iff every SLO was met
//   vfpga_cli monitor [--devices N] [--seed N] [--refresh N]
//              [--format text|json|html] [--out file]
//              continuous health monitor over a seeded degradation
//              campaign: a time-series store samples cluster and
//              per-device signals on a sim-time cadence, an alert engine
//              evaluates SLO burn-rate / rate-of-change / threshold /
//              EWMA-anomaly rules with pending->firing->resolved
//              hysteresis, and a per-device health model steers placement
//              away from degrading devices before hard quarantine.
//              Text / JSON / HTML dashboards are byte-identical per seed
//              (sidecars of all three land in the obs output directory);
//              --refresh N prints N live dashboard frames to stderr while
//              the campaign runs. Exit 0 when nothing is left firing,
//              1 when the worst firing alert is a warning, 2 critical
//   vfpga_cli trace (--circuit <name> | --netlist file.vnl)
//              [--device <name>] [--width N] [--format chrome|csv]
//              [--validate] [--stream file.ndjson] [--out file]
//              compile + run the circuit under two OS policies; emit the
//              merged timeline (Perfetto-loadable); --stream additionally
//              writes live NDJSON records while the run is in flight
//   vfpga_cli trace --from file.ndjson [--format chrome|csv] [--validate]
//              re-render a captured NDJSON stream (exit 3 when any line
//              is truncated or fails the strict JSON parser)
//   vfpga_cli report [--device <name>] [--format prometheus|csv|json]
//              [--min-names N] [--links] [--stream file.ndjson] [--out
//              file] run a six-technique workload and expose every metric
//              the substrate collected; --stream additionally writes live
//              NDJSON records and publishes the vfpga_obs_flush_ns
//              self-observation histogram (what streaming itself cost);
//              --links instead prints the compile-span -> OS-span link
//              table (exit 1 when any FPGA task resolves no link)
//   vfpga_cli heatmap [--device <name>] [--seed N]
//              [--format csv|json|html] [--out file]  deterministic
//              partitioned run with scripted strip failures; emit the
//              per-strip occupancy matrix (byte-identical per seed)
//   vfpga_cli profile [--device <name>] [--seed N] [--cycles N] [--top K]
//              [--activity] [--waterfall] [--ledger]
//              [--format text|json|collapsed|speedscope] [--out file]
//              hierarchical profile of a seeded campaign: fabric hot-cone
//              activity (probe-sampled LUT evals / net toggles / switchbox
//              hops), per-task lifecycle waterfall with critical-path
//              attribution, and the per-task resource ledger; collapsed/
//              speedscope render the span tree as a flamegraph. Output is
//              byte-identical per seed; exit 0 iff the profile is complete
//              (every task produced spans and the probe saw activity)
//   vfpga_cli faults [--seed N] [--campaign ci|stress] [--out file]
//              [--flight-dir dir] [--stream file.ndjson]
//              run a seeded fault-injection campaign (bit flips, aborted
//              downloads, permanent strip failures, hangs) against the
//              partitioned kernel and emit a survival report; exit 0 iff
//              every task finished
//   vfpga_cli chaos [--seed N] [--campaign ci|stress] [--dir dir]
//              [--out file] [--flight-dir dir]
//              seeded kill-restore-verify campaign: a checkpointing
//              kernel is killed mid-flight, its durable checkpoints are
//              tampered with (truncation, bit rot, stale generations),
//              and a fresh kernel restores every task it can prove
//              intact; plus a bit-exact restore proof and residency
//              fault classes in the technique managers. Byte-identical
//              per seed; exit 0 iff every corruption was detected and
//              zero silent wrong state survived
//   vfpga_cli bench-trend --baseline bench/baselines.json [--dir dir]
//              [--tolerance F] [--out trend.json]  compare BENCH_*.json
//              sidecars against committed baselines; exit 1 on any metric
//              drifting beyond the tolerance band
//
// Exit codes: 0 success, 1 findings / runtime errors, 2 usage,
// 3 export or validation failure. The same codes apply to every command
// (lint --json and trace --validate return 3 on export/validation
// failure, 1 on findings).
#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <map>
#include <optional>
#include <string>

#include "analysis/cluster_lint.hpp"
#include "analysis/compiled_lint.hpp"
#include "analysis/equiv/verify.hpp"
#include "analysis/fault_lint.hpp"
#include "analysis/flow_lint.hpp"
#include "analysis/monitor_lint.hpp"
#include "analysis/netlist_lint.hpp"
#include "analysis/timing_lint/timing_lint.hpp"
#include "cluster/scheduler.hpp"
#include "fault/fault_plan.hpp"
#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "core/dynamic_loader.hpp"
#include "core/io_mux.hpp"
#include "core/obs_bridge.hpp"
#include "core/os_kernel.hpp"
#include "core/overlay_manager.hpp"
#include "core/page_manager.hpp"
#include "core/partition_manager.hpp"
#include "core/prefetch_loader.hpp"
#include "core/segment_manager.hpp"
#include "fabric/device_family.hpp"
#include "fabric/sta.hpp"
#include "fabric/vcd.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "netlist/optimize.hpp"
#include "netlist/text_io.hpp"
#include "obs/exporters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heatmap.hpp"
#include "obs/json.hpp"
#include "obs/monitor/dashboard.hpp"
#include "obs/output_dir.hpp"
#include "obs/profile/flamegraph.hpp"
#include "obs/profile/waterfall.hpp"
#include "obs/stream.hpp"
#include "sim/compiled/compiled_fabric.hpp"
#include "sim/compiled/oracle.hpp"
#include "sim/rng.hpp"
#include "workloads/app_circuits.hpp"
#include "workloads/compile_suite.hpp"

using namespace vfpga;
using workloads::AppCircuit;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;
  bool has(const std::string& k) const { return options.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    auto it = options.find(k);
    return it == options.end() ? dflt : it->second;
  }
};

int usage() {
  std::fprintf(stderr,
               "usage: vfpga_cli <command> [options]\n"
               "  list-circuits\n"
               "  list-devices\n"
               "  info --device <name>\n"
               "  compile (--circuit <name> | --netlist file.vnl)"
               " --device <name> [--width N] [--no-optimize]"
               " [--out file.vfpb]\n"
               "  simulate (--circuit <name> | --netlist file.vnl)"
               " --device <name> [--width N] [--cycles N] [--seed N]"
               " [--vcd file.vcd]\n"
               "  lint (--circuit <name> | --netlist file.vnl | --all)"
               " [--device <name>] [--width N] [--no-optimize] [--json]\n"
               "  lint --list-rules\n"
               "  lint --fix --netlist file.vnl [--out fixed.vnl]\n"
               "  equiv (--circuit <name> | --netlist file.vnl | --all)"
               " [--device <name>] [--width N] [--relocate] [--seed N]"
               " [--json] [--out file]\n"
               "  cluster [--devices N] [--seed N] [--campaign ci|heal|"
               "stress]\n"
               "          [--policy first_fit|least_loaded|best_fit]"
               " [--format text|json] [--out file]\n"
               "  monitor [--devices N] [--seed N] [--refresh N]"
               " [--format text|json|html] [--out file]\n"
               "  trace (--circuit <name> | --netlist file.vnl)"
               " [--device <name>] [--width N] [--format chrome|csv]"
               " [--validate] [--stream file.ndjson] [--out file]\n"
               "  trace --from file.ndjson [--format chrome|csv]"
               " [--validate] [--out file]\n"
               "  report [--device <name>] [--format prometheus|csv|json]"
               " [--min-names N] [--links] [--stream file.ndjson]"
               " [--out file]\n"
               "  heatmap [--device <name>] [--seed N]"
               " [--format csv|json|html] [--out file]\n"
               "  profile [--device <name>] [--seed N] [--cycles N]"
               " [--top K] [--activity] [--waterfall] [--ledger]\n"
               "          [--format text|json|collapsed|speedscope]"
               " [--out file]\n"
               "  faults [--seed N] [--campaign ci|stress] [--out file]"
               " [--flight-dir dir] [--stream file.ndjson]\n"
               "  chaos [--seed N] [--campaign ci|stress] [--dir dir]"
               " [--out file] [--flight-dir dir]\n"
               "  bench-trend --baseline file.json [--dir dir]"
               " [--tolerance F] [--out trend.json]\n"
               "stream knobs: [--stream-ring N] [--stream-flush N]"
               " [--stream-flush-ns N] [--stream-sample key=N[,key=N]]\n"
               "exit codes: 0 success, 1 findings / runtime errors,"
               " 2 usage, 3 export or validation failure\n");
  return 2;
}

/// Loads the circuit under test: a built-in library circuit by name, or a
/// .vnl text netlist from disk.
AppCircuit loadCircuit(const Args& a) {
  if (a.has("netlist")) {
    std::ifstream in(a.get("netlist"));
    if (!in) throw std::runtime_error("cannot open " + a.get("netlist"));
    std::stringstream buf;
    buf << in.rdbuf();
    Netlist nl = parseNetlistText(buf.str());
    std::string name = nl.name().empty() ? a.get("netlist") : nl.name();
    return AppCircuit{name, "user", std::move(nl)};
  }
  return workloads::appCircuitByName(a.get("circuit"));
}

std::optional<Args> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) return std::nullopt;
    key = key.substr(2);
    if (key == "no-optimize" || key == "all" || key == "json" ||
        key == "list-rules" || key == "validate" || key == "links" ||
        key == "fix" || key == "relocate" || key == "activity" ||
        key == "waterfall" || key == "ledger") {
      a.options[key] = "1";
    } else {
      if (i + 1 >= argc) return std::nullopt;
      a.options[key] = argv[++i];
    }
  }
  return a;
}

int listCircuits() {
  std::printf("%-14s %-12s %8s %8s %6s %6s\n", "name", "domain", "gates",
              "DFFs", "ins", "outs");
  for (const AppCircuit& c : workloads::allSuites()) {
    const GateCounts n = c.netlist.counts();
    std::printf("%-14s %-12s %8zu %8zu %6zu %6zu\n", c.name.c_str(),
                c.domain.c_str(), n.combinational, n.dffs, n.inputs,
                n.outputs);
  }
  return 0;
}

int listDevices() {
  std::printf("%-16s %6s %6s %5s %7s %12s %10s %9s\n", "name", "cols",
              "rows", "K", "wires", "config_bits", "full_ms", "partial?");
  for (const DeviceProfile& p : allProfiles()) {
    Device dev = p.makeDevice();
    ConfigPort port(dev, p.port);
    std::printf("%-16s %6u %6u %5u %7u %12u %10.2f %9s\n", p.name.c_str(),
                p.geometry.cols, p.geometry.rows, p.geometry.lutInputs,
                p.geometry.wiresPerChannel, dev.configMap().totalBits(),
                toMilliseconds(port.fullDownloadCost()),
                p.port.partialReconfig ? "yes" : "no");
  }
  return 0;
}

int deviceInfo(const Args& a) {
  DeviceProfile p = profileByName(a.get("device"));
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  std::printf("device profile: %s\n", p.name.c_str());
  std::printf("  CLB grid        %u x %u (%zu CLBs, %u-input LUTs)\n",
              p.geometry.cols, p.geometry.rows, p.geometry.clbCount(),
              p.geometry.lutInputs);
  std::printf("  routing         %u wires/channel, disjoint switchboxes\n",
              p.geometry.wiresPerChannel);
  std::printf("  I/O             %zu pads x %u slots = %zu pad slots\n",
              p.geometry.padCount(), p.geometry.slotsPerPad,
              p.geometry.padSlotCount());
  std::printf("  config RAM      %u bits in %u frames of %u bits\n",
              dev.configMap().totalBits(), dev.configMap().frameCount(),
              dev.configMap().frameBits());
  std::printf("  full download   %.3f ms (%s)\n",
              toMilliseconds(port.fullDownloadCost()),
              p.port.partialReconfig ? "partial reconfig supported"
                                     : "serial-full only");
  std::printf("  state access    %s\n",
              p.port.stateAccess ? "readback/writeback supported" : "none");
  return 0;
}

int compileCmd(const Args& a) {
  AppCircuit circuit = loadCircuit(a);
  DeviceProfile p = profileByName(a.get("device"));
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);

  Netlist nl = circuit.netlist;
  OptimizeStats ostats;
  if (!a.has("no-optimize")) {
    nl = optimize(nl, &ostats);
    std::printf("optimize: %zu -> %zu gates (%zu folded, %zu CSE, %zu dead)\n",
                ostats.gatesIn, ostats.gatesOut, ostats.constantsFolded,
                ostats.deduplicated, ostats.deadRemoved);
  }
  CompiledCircuit c = [&] {
    if (a.has("width")) {
      const auto w = static_cast<std::uint16_t>(std::stoul(a.get("width")));
      CompileOptions opt;
      opt.optimize = false;  // already done above
      return compiler.compile(nl, Region::columns(dev.geometry(), 0, w), opt);
    }
    return workloads::compileMinimal(compiler, nl);
  }();
  std::printf("compiled %s for %s:\n", circuit.name.c_str(), p.name.c_str());
  std::printf("  %zu LUT cells (%zu registered), depth %zu\n", c.cellCount(),
              c.ffCount(), c.mapped.depth());
  std::printf("  strip width %u columns, %zu ports, %zu config frames\n",
              c.region.w, c.portCount(), c.frames.size());
  const Bitstream bs = c.partialBitstream();
  std::printf("  partial bitstream %zu bits, download %.3f ms "
              "(full device: %.3f ms)\n",
              bs.bitCount(), toMilliseconds(port.downloadCost(bs)),
              toMilliseconds(port.fullDownloadCost()));
  dev.applyBitstream(c.fullBitstream());
  if (!dev.configOk()) {
    std::fprintf(stderr, "configuration fault: %s\n",
                 dev.elaboration().faults.front().c_str());
    return 1;
  }
  std::printf("  min clock period %llu ns (%.1f MHz)\n",
              static_cast<unsigned long long>(dev.minClockPeriod()),
              1e3 / static_cast<double>(dev.minClockPeriod()));
  std::fputs(renderTimingReport(dev, 3).c_str(), stdout);
  if (a.has("out")) {
    const auto bytes = serializeBitstream(bs);
    std::ofstream out(a.get("out"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    std::printf("  wrote %zu bytes to %s\n", bytes.size(),
                a.get("out").c_str());
  }
  return 0;
}

int simulateCmd(const Args& a) {
  AppCircuit circuit = loadCircuit(a);
  DeviceProfile p = profileByName(a.get("device"));
  Device dev = p.makeDevice();
  Compiler compiler(dev);
  CompiledCircuit c = [&] {
    if (a.has("width")) {
      const auto w = static_cast<std::uint16_t>(std::stoul(a.get("width")));
      return compiler.compile(circuit.netlist,
                              Region::columns(dev.geometry(), 0, w));
    }
    return workloads::compileMinimal(compiler, circuit.netlist);
  }();
  dev.applyBitstream(c.fullBitstream());
  if (!dev.configOk()) {
    std::fprintf(stderr, "configuration fault: %s\n",
                 dev.elaboration().faults.front().c_str());
    return 1;
  }
  LoadedCircuit lc(dev, c);
  lc.applyInitialState();

  const int cycles = std::stoi(a.get("cycles", "16"));
  Rng rng(std::stoull(a.get("seed", "1")));

  std::ofstream vcdFile;
  std::optional<VcdWriter> vcd;
  if (a.has("vcd")) {
    vcdFile.open(a.get("vcd"));
    vcd.emplace(vcdFile);
    for (const PortBinding& pb : c.ports) {
      if (pb.isInput) continue;
      vcd->addSignal(pb.name, [&lc, name = pb.name] {
        return lc.output(name);
      });
    }
  }

  // Header: input names then output names.
  std::printf("cycle |");
  for (const PortBinding& pb : c.ports) {
    if (pb.isInput) std::printf(" %s", pb.name.c_str());
  }
  std::printf(" ||");
  for (const PortBinding& pb : c.ports) {
    if (!pb.isInput) std::printf(" %s", pb.name.c_str());
  }
  std::printf("\n");
  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::printf("%5d |", cycle);
    for (const PortBinding& pb : c.ports) {
      if (!pb.isInput) continue;
      const bool v = rng.bernoulli(0.5);
      lc.setInput(pb.name, v);
      std::printf(" %*d", static_cast<int>(pb.name.size()), v ? 1 : 0);
    }
    dev.evaluate();
    std::printf(" ||");
    for (const PortBinding& pb : c.ports) {
      if (pb.isInput) continue;
      std::printf(" %*d", static_cast<int>(pb.name.size()),
                  lc.output(pb.name) ? 1 : 0);
    }
    std::printf("\n");
    if (vcd) vcd->sample(static_cast<std::uint64_t>(cycle) * 10);
    dev.tick();
  }
  if (a.has("vcd")) {
    std::printf("wrote VCD trace to %s\n", a.get("vcd").c_str());
  }
  return 0;
}

/// Machine-readable payloads go to --out (or stdout, alone); human chatter
/// stays on stderr. Exit 3 when the export cannot be written.
int emitPayload(const Args& a, const std::string& payload) {
  if (a.has("out")) {
    std::ofstream out(a.get("out"), std::ios::binary);
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    out.flush();
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n", a.get("out").c_str());
      return 3;
    }
    std::fprintf(stderr, "wrote %zu bytes to %s\n", payload.size(),
                 a.get("out").c_str());
    return 0;
  }
  std::fwrite(payload.data(), 1, payload.size(), stdout);
  return 0;
}

std::string csvField(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string quoted = "\"";
  for (char c : s) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// CSV sibling of the Chrome export: spans, instants and Trace records of
/// every process as flat rows.
std::string renderTimelineCsv(const obs::ChromeTraceInput& input) {
  std::string out = "process,type,track,category,name,start_ns,duration_ns\n";
  auto row = [&out](const std::string& proc, const char* type,
                    std::uint32_t track, const std::string& category,
                    const std::string& name, std::uint64_t start,
                    std::uint64_t dur) {
    out += csvField(proc) + ',' + type + ',' + std::to_string(track) + ',' +
           csvField(category) + ',' + csvField(name) + ',' +
           std::to_string(start) + ',' + std::to_string(dur) + '\n';
  };
  auto addTracer = [&row](const std::string& proc, const obs::SpanTracer* t) {
    if (t == nullptr) return;
    for (const obs::SpanRecord& s : t->spans()) {
      row(proc, "span", s.track, s.category, s.name, s.startNs, s.durationNs);
    }
    for (const obs::InstantRecord& i : t->instants()) {
      row(proc, "instant", i.track, i.category, i.name, i.atNs, 0);
    }
  };
  addTracer("flow", input.wall);
  for (const obs::SimProcessTrace& p : input.sim) {
    addTracer(p.name, p.spans);
    if (p.trace != nullptr) {
      for (const TraceRecord& r : p.trace->records()) {
        row(p.name, "trace", 0, "os.trace", traceKindName(r.kind), r.at, 0);
      }
    }
  }
  return out;
}

/// Shared --stream* flags -> exporter options ("-" streams to stdout).
obs::StreamOptions streamOptions(const Args& a) {
  obs::StreamOptions o;
  o.path = a.get("stream");
  o.ringCapacity = std::stoul(a.get("stream-ring", "1024"));
  o.flushEveryRecords = std::stoul(a.get("stream-flush", "64"));
  o.flushTimeDeltaNs = std::stoull(a.get("stream-flush-ns", "0"));
  // --stream-sample key=N[,key=N]: keep 1 of every N records per key
  // (span/instant category, or "trace" for Trace-ring records).
  std::stringstream ss(a.get("stream-sample"));
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    const std::size_t eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::runtime_error("bad --stream-sample entry '" + tok + "'");
    }
    o.sampleEvery[tok.substr(0, eq)] =
        static_cast<std::uint32_t>(std::stoul(tok.substr(eq + 1)));
  }
  return o;
}

/// Wires a kernel's span tracer and Trace ring into the live exporter.
void attachKernelStream(obs::StreamExporter& stream, OsKernel& kernel,
                        std::string domain) {
  stream.attach(kernel.spanTracer(), domain);
  kernel.traceRing().setRecordSink([&stream, domain](const TraceRecord& r) {
    stream.onTrace(r.at, traceKindName(r.kind), r.detail, domain);
  });
}

/// Drop accounting is explicit, never silent: summarize it on stderr (the
/// payload on stdout/--out stays machine-readable).
void reportStreamTotals(const obs::StreamExporter& stream, const char* cmd) {
  std::fprintf(stderr,
               "%s: stream wrote %llu records (%llu emitted, %llu dropped,"
               " %llu sampled out)\n",
               cmd, static_cast<unsigned long long>(stream.written()),
               static_cast<unsigned long long>(stream.emitted()),
               static_cast<unsigned long long>(stream.dropped()),
               static_cast<unsigned long long>(stream.sampledOut()));
  for (const auto& [key, n] : stream.droppedByKey()) {
    std::fprintf(stderr, "%s: stream dropped %llu x %s\n", cmd,
                 static_cast<unsigned long long>(n), key.c_str());
  }
}

TraceKind traceKindByName(std::string_view name) {
  for (std::size_t k = 0; k < kTraceKindCount; ++k) {
    const auto kind = static_cast<TraceKind>(k);
    if (name == traceKindName(kind)) return kind;
  }
  return TraceKind::kInfo;
}

/// A captured NDJSON stream rebuilt into per-domain tracers and Trace
/// rings; "flow" maps back to the wall-clock process, every other domain
/// to a simulated process.
struct CapturedStream {
  std::map<std::string, obs::SpanTracer> tracers;
  std::map<std::string, Trace> traces;
  std::uint64_t records = 0;
  std::uint64_t summaries = 0;
};

std::uint64_t asU64(const obs::JsonValue& v) {
  return static_cast<std::uint64_t>(v.asNumber());
}

/// Parses a captured stream strictly: every line must be a complete JSON
/// record of a known kind. A truncated tail (killed writer, partial
/// flush) is an error — returns 3 with a file:line diagnostic; 0 on
/// success.
int loadStream(const std::string& path, CapturedStream& out) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "error: cannot open stream %s\n", path.c_str());
    return 3;
  }
  std::string text;
  std::uint64_t lineNo = 0;
  while (std::getline(in, text)) {
    ++lineNo;
    if (text.empty()) continue;
    try {
      const obs::JsonValue v = obs::JsonValue::parse(text);
      const std::string& kind = v.at("kind").asString();
      if (kind == "span") {
        obs::SpanRecord s;
        s.name = v.at("name").asString();
        s.category = v.at("category").asString();
        s.startNs = asU64(v.at("start_ns"));
        s.durationNs = asU64(v.at("duration_ns"));
        s.track = static_cast<std::uint32_t>(asU64(v.at("track")));
        s.spanId = asU64(v.at("span_id"));
        if (v.has("links")) {
          for (const obs::JsonValue& l : v.at("links").asArray()) {
            s.links.push_back(asU64(l));
          }
        }
        if (v.has("attributes")) {
          for (const auto& [k, val] : v.at("attributes").asObject()) {
            s.attributes.emplace_back(k, val.asString());
          }
        }
        out.tracers[v.at("domain").asString()].import(std::move(s));
      } else if (kind == "instant") {
        obs::InstantRecord i;
        i.name = v.at("name").asString();
        i.category = v.at("category").asString();
        i.atNs = asU64(v.at("at_ns"));
        i.track = static_cast<std::uint32_t>(asU64(v.at("track")));
        if (v.has("attributes")) {
          for (const auto& [k, val] : v.at("attributes").asObject()) {
            i.attributes.emplace_back(k, val.asString());
          }
        }
        out.tracers[v.at("domain").asString()].import(std::move(i));
      } else if (kind == "trace") {
        const std::string& domain = v.at("domain").asString();
        auto [it, inserted] =
            out.traces.try_emplace(domain, std::size_t{1} << 20);
        (void)inserted;
        it->second.record(asU64(v.at("at_ns")),
                          traceKindByName(v.at("trace_kind").asString()),
                          v.at("detail").asString());
      } else if (kind == "stream_summary") {
        ++out.summaries;
      } else {
        throw obs::JsonError("unknown record kind '" + kind + "'");
      }
    } catch (const obs::JsonError& e) {
      std::fprintf(stderr,
                   "error: %s:%llu: truncated or invalid stream record: %s\n",
                   path.c_str(), static_cast<unsigned long long>(lineNo),
                   e.what());
      return 3;
    }
    ++out.records;
  }
  return 0;
}

/// View over a CapturedStream in renderChromeTrace/renderTimelineCsv form.
obs::ChromeTraceInput capturedInput(const CapturedStream& cap) {
  obs::ChromeTraceInput input;
  const auto flow = cap.tracers.find("flow");
  if (flow != cap.tracers.end()) input.wall = &flow->second;
  for (const auto& [domain, tracer] : cap.tracers) {
    if (domain == "flow") continue;
    const auto t = cap.traces.find(domain);
    input.sim.push_back(
        {domain, &tracer, t == cap.traces.end() ? nullptr : &t->second});
  }
  for (const auto& [domain, trace] : cap.traces) {
    if (domain == "flow" || cap.tracers.count(domain) != 0) continue;
    input.sim.push_back({domain, nullptr, &trace});
  }
  return input;
}

int validateChromeOrFail(const std::string& chrome) {
  const std::vector<std::string> problems = obs::validateChromeTrace(chrome);
  if (!problems.empty()) {
    for (const std::string& problem : problems) {
      std::fprintf(stderr, "trace: invalid: %s\n", problem.c_str());
    }
    return 3;
  }
  std::fprintf(stderr, "trace: chrome trace validates clean\n");
  return 0;
}

TaskSpec traceTask(const std::string& name, SimTime arrival, ConfigId cfg,
                   std::uint64_t cycles) {
  TaskSpec t;
  t.name = name;
  t.arrival = arrival;
  t.ops = {CpuBurst{micros(20)}, FpgaExec{cfg, cycles}, CpuBurst{micros(10)}};
  return t;
}

Netlist named(Netlist nl, const char* name) {
  nl.setName(name);
  return nl;
}

int traceCmd(const Args& a) {
  const std::string fmt = a.get("format", "chrome");
  if (fmt != "chrome" && fmt != "csv") {
    std::fprintf(stderr, "trace: unknown --format '%s' (chrome|csv)\n",
                 fmt.c_str());
    return 2;
  }

  // Replay path: re-render (and optionally validate) a captured NDJSON
  // stream instead of running a workload.
  if (a.has("from")) {
    CapturedStream cap;
    const int rc = loadStream(a.get("from"), cap);
    if (rc != 0) return rc;
    std::fprintf(stderr,
                 "trace: replayed %llu stream records across %zu domains"
                 " (%llu summaries)\n",
                 static_cast<unsigned long long>(cap.records),
                 cap.tracers.size() + cap.traces.size(),
                 static_cast<unsigned long long>(cap.summaries));
    const obs::ChromeTraceInput input = capturedInput(cap);
    const std::string chrome = obs::renderChromeTrace(input);
    if (a.has("validate")) {
      const int vrc = validateChromeOrFail(chrome);
      if (vrc != 0) return vrc;
    }
    return emitPayload(a, fmt == "chrome" ? chrome : renderTimelineCsv(input));
  }

  AppCircuit circuit = loadCircuit(a);
  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);

  // Wall-clock flow spans: every compile below lands on pid 1.
  obs::SpanTracer wall;
  obs::MetricsRegistry flowMetrics;
  compiler.setObservers(&wall, &flowMetrics);

  // Live streaming: attach before anything compiles or runs so the NDJSON
  // file fills while the workload is in flight.
  std::optional<obs::StreamExporter> stream;
  if (a.has("stream")) {
    stream.emplace(streamOptions(a));
    if (!stream->ok()) {
      std::fprintf(stderr, "error: cannot open stream %s\n",
                   a.get("stream").c_str());
      return 3;
    }
    stream->attach(wall, "flow");
  }

  const CompiledCircuit primary = [&] {
    if (a.has("width")) {
      const auto w = static_cast<std::uint16_t>(std::stoul(a.get("width")));
      return compiler.compile(circuit.netlist,
                              Region::columns(dev.geometry(), 0, w));
    }
    return workloads::compileMinimal(compiler, circuit.netlist);
  }();
  // A second circuit so the kernels genuinely context-switch.
  const CompiledCircuit aux =
      workloads::compileMinimal(compiler, named(lib::makeChecksum(6), "csum"));

  // Simulated process 1: whole-device dynamic loading with a preemption
  // slice (downloads, state save/restore).
  Simulation dynSim;
  OsOptions dynOpt;
  dynOpt.policy = FpgaPolicy::kDynamicLoading;
  dynOpt.fpgaSlice = micros(100);
  OsKernel dyn(dynSim, dev, port, compiler, dynOpt);
  if (stream) attachKernelStream(*stream, dyn, "os/dynamic_loading");
  {
    const ConfigId da = dyn.registerConfig(primary);
    const ConfigId db = dyn.registerConfig(aux);
    dyn.addTask(traceTask("t0", 0, da, 30000));
    dyn.addTask(traceTask("t1", micros(40), db, 20000));
    dyn.addTask(traceTask("t2", micros(80), da, 12000));
    dyn.run();
  }

  // Simulated process 2: variable column-strip partitions (concurrent
  // residency, garbage collection).
  Simulation partSim;
  OsOptions partOpt;
  partOpt.policy = FpgaPolicy::kPartitionedVariable;
  OsKernel part(partSim, dev, port, compiler, partOpt);
  if (stream) attachKernelStream(*stream, part, "os/partitioned_variable");
  {
    const ConfigId pa = part.registerConfig(primary);
    const ConfigId pb = part.registerConfig(aux);
    part.addTask(traceTask("t0", 0, pa, 30000));
    part.addTask(traceTask("t1", micros(40), pb, 20000));
    part.addTask(traceTask("t2", micros(80), pa, 12000));
    part.run();
  }

  if (stream) {
    stream->finish();
    reportStreamTotals(*stream, "trace");
  }

  obs::ChromeTraceInput input;
  input.wall = &wall;
  input.sim.push_back({"os/dynamic_loading", &dyn.spanTracer(), &dyn.trace()});
  input.sim.push_back(
      {"os/partitioned_variable", &part.spanTracer(), &part.trace()});

  const std::string chrome = obs::renderChromeTrace(input);
  if (a.has("validate")) {
    const int vrc = validateChromeOrFail(chrome);
    if (vrc != 0) return vrc;
  }
  return emitPayload(a, fmt == "chrome" ? chrome : renderTimelineCsv(input));
}

int reportCmd(const Args& a) {
  const std::string fmt = a.get("format", "prometheus");
  if (fmt != "prometheus" && fmt != "csv" && fmt != "json") {
    std::fprintf(stderr,
                 "report: unknown --format '%s' (prometheus|csv|json)\n",
                 fmt.c_str());
    return 2;
  }
  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);

  obs::MetricsRegistry reg;
  // vfpga_flow_* phase timings; the wall tracer also gives every compile a
  // process-unique span id that the kernels' download/exec spans link back
  // to — the --links join below resolves them.
  obs::SpanTracer wall;
  compiler.setObservers(&wall, &reg);

  // --stream: live NDJSON of the wall tracer and both kernel runs. The
  // exporter's own flush cost lands in the vfpga_obs_flush_ns histogram
  // (published only when a stream is attached, so plain runs keep their
  // exact metric-family set).
  std::optional<obs::StreamExporter> stream;
  if (a.has("stream")) {
    stream.emplace(streamOptions(a));
    if (!stream->ok()) {
      std::fprintf(stderr, "error: cannot open stream %s\n",
                   a.get("stream").c_str());
      return 3;
    }
    stream->attach(wall, "flow");
  }

  // --links: per-config counts of OS spans carrying the compile span id,
  // plus a per-task verdict (>=1 linked download span for some config the
  // task names).
  struct LinkRow {
    std::string policy;
    std::string config;
    std::uint64_t compileSpan = 0;
    std::uint64_t downloads = 0;
    std::uint64_t execs = 0;
  };
  struct TaskLinks {
    std::string policy;
    std::string task;
    bool resolved = false;
  };
  std::vector<LinkRow> linkRows;
  std::vector<TaskLinks> taskLinks;
  auto collectLinks = [&linkRows, &taskLinks](OsKernel& kernel,
                                              const char* policy) {
    const std::vector<obs::SpanRecord>& spans = kernel.spanTracer().spans();
    auto linked = [&spans](std::uint64_t compileSpan, const char* category) {
      std::uint64_t n = 0;
      for (const obs::SpanRecord& s : spans) {
        const bool categoryOk =
            category == nullptr ? s.category != "os.config"
                                : s.category == category;
        if (categoryOk && std::find(s.links.begin(), s.links.end(),
                                    compileSpan) != s.links.end()) {
          ++n;
        }
      }
      return n;
    };
    for (ConfigId id = 0; id < kernel.registry().size(); ++id) {
      LinkRow row;
      row.policy = policy;
      row.config = kernel.registry().circuit(id).name;
      row.compileSpan = kernel.compileSpanOf(id);
      if (row.compileSpan != 0) {
        row.downloads = linked(row.compileSpan, "os.config");
        row.execs = linked(row.compileSpan, nullptr);
      }
      linkRows.push_back(std::move(row));
    }
    for (const TaskRuntime& t : kernel.tasks()) {
      TaskLinks tl;
      tl.policy = policy;
      tl.task = t.spec.name;
      for (const TaskOp& op : t.spec.ops) {
        const FpgaExec* fx = std::get_if<FpgaExec>(&op);
        if (fx == nullptr) continue;
        const std::uint64_t compileSpan = kernel.compileSpanOf(fx->config);
        if (compileSpan != 0 && linked(compileSpan, "os.config") > 0) {
          tl.resolved = true;
          break;
        }
      }
      taskLinks.push_back(std::move(tl));
    }
  };

  const Region strip = Region::columns(dev.geometry(), 0, 4);
  const CompiledCircuit count =
      compiler.compile(named(lib::makeCounter(6), "count"), strip);
  const CompiledCircuit csum =
      compiler.compile(named(lib::makeChecksum(6), "csum"), strip);
  const CompiledCircuit lfsr =
      compiler.compile(named(lib::makeLfsr(8, 0b10111000), "lfsr"), strip);

  // Techniques 1+2 through the kernel: sliced dynamic loading, then
  // variable partitions. Each run's registry merges in under its policy
  // label.
  {
    Simulation sim;
    OsOptions opt;
    opt.policy = FpgaPolicy::kDynamicLoading;
    opt.fpgaSlice = micros(100);
    OsKernel kernel(sim, dev, port, compiler, opt);
    if (stream) attachKernelStream(*stream, kernel, "os/dynamic_loading");
    const ConfigId ka = kernel.registerConfig(count);
    const ConfigId kb = kernel.registerConfig(csum);
    kernel.addTask(traceTask("d0", 0, ka, 30000));
    kernel.addTask(traceTask("d1", micros(40), kb, 20000));
    kernel.addTask(traceTask("d2", micros(80), ka, 12000));
    kernel.run();
    reg.merge(kernel.metricsRegistry());
    if (a.has("links")) collectLinks(kernel, "dynamic_loading");
  }
  {
    Simulation sim;
    OsOptions opt;
    opt.policy = FpgaPolicy::kPartitionedVariable;
    OsKernel kernel(sim, dev, port, compiler, opt);
    if (stream) attachKernelStream(*stream, kernel, "os/partitioned_variable");
    const ConfigId ka = kernel.registerConfig(count);
    const ConfigId kb = kernel.registerConfig(csum);
    const ConfigId kc = kernel.registerConfig(lfsr);
    kernel.addTask(traceTask("p0", 0, ka, 30000));
    kernel.addTask(traceTask("p1", micros(40), kb, 20000));
    kernel.addTask(traceTask("p2", micros(80), kc, 12000));
    kernel.run();
    reg.merge(kernel.metricsRegistry());
    if (a.has("links")) collectLinks(kernel, "partitioned_variable");
  }
  // Standalone manager exercises for the remaining techniques (the §2
  // tour), snapshotted via publishMetrics.
  {
    ConfigRegistry cfgs;
    DynamicLoader loader(dev, port, cfgs);
    const ConfigId la = cfgs.add(count);
    const ConfigId lb = cfgs.add(csum);
    loader.activate(la);
    loader.activate(lb);
    loader.activate(la);
    publishMetrics(loader, reg);
  }
  {
    ConfigRegistry cfgs;
    PartitionManager pm(dev, port, cfgs, compiler, {});
    pm.load(cfgs.add(count));
    pm.load(cfgs.add(csum));
    pm.load(cfgs.add(lfsr));
    publishMetrics(pm, reg);
  }
  {
    OverlayManager om(dev, port, compiler, 4);
    om.installResident(csum);
    const OverlayId f1 = om.addOverlay(count);
    const OverlayId f2 = om.addOverlay(lfsr);
    om.invoke(f1);
    om.invoke(f1);
    om.invoke(f2);
    om.invoke(f1);
    publishMetrics(om, reg);
  }
  {
    SegmentManager sm(dev, port, compiler);
    std::vector<SegmentId> segs;
    for (int i = 0; i < 3; ++i) {
      Netlist nl = lib::makeChecksum(4);
      nl.setName("seg" + std::to_string(i));
      segs.push_back(sm.addSegment(
          compiler.compile(nl, Region::columns(dev.geometry(), 0, 5))));
    }
    for (SegmentId s : {segs[0], segs[1], segs[0], segs[2], segs[0]}) {
      sm.access(s);
    }
    publishMetrics(sm, reg);
  }
  {
    PageManager pg(p.port, dev.configMap().frameBits(),
                   PageManagerOptions{4, 32, ReplacementPolicy::kLru});
    const ConfigId big = pg.addFunction(112);
    const ConfigId sml = pg.addFunction(20);
    pg.access(big);
    pg.access(sml);
    pg.access(big);
    publishMetrics(pg, reg);
  }
  {
    ConfigRegistry cfgs;
    PrefetchLoader pf(dev, port, cfgs, compiler);
    const ConfigId fa = cfgs.add(count);
    const ConfigId fb = cfgs.add(csum);
    SimTime now = 0;
    for (int i = 0; i < 8; ++i) {
      pf.activate(i % 2 ? fb : fa, now);
      now += millis(50);
    }
    publishMetrics(pf, reg);
  }
  {
    IoMux mux(IoMuxSpec{16, nanos(50), nanos(20), nanos(5)});
    mux.rebind(64);
    mux.transfer(64);
    mux.transfer(64);
    publishMetrics(mux, reg);
  }
  {
    // Compiled fast path: replay two circuits back to back on a scratch
    // device (build, invalidation on the reconfiguration, rebuild) plus
    // one forced interpretive service, so every
    // vfpga_sim_compiled_*_total family carries signal.
    Device cdev = p.makeDevice();
    compiled::CompiledKernelCache kcache(16);
    compiled::CompiledFabric engine(cdev, &kcache);
    cdev.applyBitstream(count.fullBitstream());
    for (int i = 0; i < 256; ++i) {
      cdev.evaluate();
      cdev.tick();
    }
    cdev.applyBitstream(csum.fullBitstream());
    for (int i = 0; i < 256; ++i) {
      cdev.evaluate();
      cdev.tick();
    }
    cdev.setFastPathInhibited(true);
    cdev.evaluate();
    cdev.setFastPathInhibited(false);
    publishMetrics(engine, reg);
  }

  if (stream) {
    stream->finish();
    stream->publishSelfMetrics(reg);
    reportStreamTotals(*stream, "report");
  }

  if (a.has("links")) {
    std::size_t resolved = 0;
    for (const TaskLinks& t : taskLinks) resolved += t.resolved ? 1 : 0;
    std::ostringstream os;
    if (fmt == "json") {
      os << "{\n\"configs\":[";
      for (std::size_t i = 0; i < linkRows.size(); ++i) {
        const LinkRow& r = linkRows[i];
        os << (i ? ",\n" : "\n") << "{\"policy\":\"" << obs::jsonEscape(r.policy)
           << "\",\"config\":\"" << obs::jsonEscape(r.config)
           << "\",\"compile_span\":" << r.compileSpan
           << ",\"download_spans\":" << r.downloads
           << ",\"exec_spans\":" << r.execs << "}";
      }
      os << "\n],\n\"tasks\":[";
      for (std::size_t i = 0; i < taskLinks.size(); ++i) {
        const TaskLinks& t = taskLinks[i];
        os << (i ? ",\n" : "\n") << "{\"policy\":\"" << obs::jsonEscape(t.policy)
           << "\",\"task\":\"" << obs::jsonEscape(t.task)
           << "\",\"resolved\":" << (t.resolved ? "true" : "false") << "}";
      }
      os << "\n]\n}\n";
    } else {
      os << "span links (compile -> OS)\n";
      os << "==========================\n";
      char buf[160];
      std::snprintf(buf, sizeof buf, "%-22s %-8s %12s %10s %10s\n", "policy",
                    "config", "compile_span", "downloads", "execs");
      os << buf;
      for (const LinkRow& r : linkRows) {
        std::snprintf(buf, sizeof buf, "%-22s %-8s %12llu %10llu %10llu\n",
                      r.policy.c_str(), r.config.c_str(),
                      static_cast<unsigned long long>(r.compileSpan),
                      static_cast<unsigned long long>(r.downloads),
                      static_cast<unsigned long long>(r.execs));
        os << buf;
      }
      os << "\ntask link coverage\n";
      for (const TaskLinks& t : taskLinks) {
        std::snprintf(buf, sizeof buf, "%-22s %-8s %s\n", t.policy.c_str(),
                      t.task.c_str(), t.resolved ? "resolved" : "UNRESOLVED");
        os << buf;
      }
      os << "resolved: " << resolved << "/" << taskLinks.size() << " tasks\n";
    }
    std::fprintf(stderr,
                 "report: %zu/%zu tasks resolved a compile->download link\n",
                 resolved, taskLinks.size());
    const int rc = emitPayload(a, os.str());
    if (rc != 0) return rc;
    return resolved == taskLinks.size() && !taskLinks.empty() ? 0 : 1;
  }

  std::fprintf(stderr, "report: %zu metric families, %zu series\n",
               reg.familyCount(), reg.size());
  if (a.has("min-names")) {
    const std::size_t need = std::stoul(a.get("min-names"));
    if (reg.familyCount() < need) {
      std::fprintf(stderr,
                   "report: only %zu metric families (< %zu required)\n",
                   reg.familyCount(), need);
      return 3;
    }
  }
  const std::string payload = fmt == "prometheus" ? obs::renderPrometheus(reg)
                              : fmt == "csv"      ? obs::renderCsv(reg)
                                                  : obs::renderMetricsJson(reg);
  return emitPayload(a, payload);
}

/// Auto-repair pass for the fixable lint rules. Netlist-level findings
/// (NL007 dead gates) are repaired by the equivalence-preserving optimizer
/// rewrite and the repaired .vnl is emitted; allocator-level findings
/// (AL004 unmerged idle strips) are runtime state, repaired in-process via
/// StripAllocator::repairUnmergedIdle() — see docs/ANALYSIS.md.
int lintFixCmd(const Args& a) {
  if (!a.has("netlist")) {
    std::fprintf(stderr,
                 "lint --fix: requires --netlist file.vnl (built-in "
                 "circuits are read-only)\n");
    return 2;
  }
  const AppCircuit circuit = loadCircuit(a);
  const auto fixableCount = [](const analysis::Report& rep) {
    std::size_t n = 0;
    for (const analysis::Diagnostic& d : rep.diagnostics()) {
      if (d.rule == "NL007") ++n;
    }
    return n;
  };

  analysis::Report before;
  analysis::lintNetlist(circuit.netlist, before);
  const std::size_t found = fixableCount(before);

  OptimizeStats stats;
  const Netlist fixed = optimize(circuit.netlist, &stats);
  analysis::Report after;
  analysis::lintNetlist(fixed, after);
  const std::size_t left = fixableCount(after);

  std::fprintf(stderr,
               "lint --fix: %s: %zu fixable finding(s), %zu dead gate(s) "
               "removed, %zu fixable remaining, %zu error(s) after re-lint\n",
               circuit.name.c_str(), found, stats.deadRemoved, left,
               after.errorCount());
  const int rc = emitPayload(a, writeNetlistText(fixed));
  if (rc != 0) return rc;
  return left == 0 && after.ok() ? 0 : 1;
}

int lintCmd(const Args& a) {
  if (a.has("fix")) return lintFixCmd(a);
  if (a.has("list-rules")) {
    for (const analysis::RuleInfo& r : analysis::allRules()) {
      std::printf("%-6s %-8s %s\n       %s\n", r.id,
                  analysis::severityName(r.severity), r.title, r.description);
    }
    return 0;
  }

  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  Device dev = p.makeDevice();
  Compiler compiler(dev);

  std::vector<AppCircuit> circuits;
  if (a.has("all")) {
    circuits = workloads::allSuites();
  } else {
    circuits.push_back(loadCircuit(a));
  }

  const bool json = a.has("json");
  std::size_t errors = 0;
  std::size_t warnings = 0;
  if (json) std::printf("[");
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const AppCircuit& circuit = circuits[i];
    analysis::Report rep;
    // A flow failure (CompileError, ...) on one circuit must not corrupt
    // the machine-readable stream: it is captured per circuit, keeping the
    // JSON array well-formed and stdout free of interleaved chatter.
    std::string failure;
    try {
      Netlist nl = circuit.netlist;
      if (!a.has("no-optimize")) nl = optimize(nl);
      analysis::lintNetlist(nl, rep);
      if (rep.ok()) {
        // The netlist is structurally sound: run the whole flow and lint
        // every compiled stage (mapping, placement, routing, bitstream).
        const CompiledCircuit c = [&] {
          if (a.has("width")) {
            const auto w =
                static_cast<std::uint16_t>(std::stoul(a.get("width")));
            CompileOptions opt;
            opt.optimize = false;  // handled above
            return compiler.compile(nl, Region::columns(dev.geometry(), 0, w),
                                    opt);
          }
          return workloads::compileMinimal(compiler, nl);
        }();
        analysis::lintCompiled(c, dev.rrg(), dev.configMap(), rep);
        // Configure the device and close the loop: timing against the
        // family clock constraint (TA rules) and formal equivalence of the
        // configured fabric against the netlist that was compiled (EQ
        // rules). fullBitstream() blanks everything outside the circuit,
        // so reusing one device across --all iterations is safe.
        dev.applyBitstream(c.fullBitstream());
        analysis::lintTiming(dev, analysis::constraintsFor(p), rep);
        const analysis::equiv::ConfiguredCheck chk =
            analysis::equiv::checkConfiguredAgainst(dev, c, nl);
        analysis::equiv::lintEquivalence(chk, circuit.name, rep);
      }
    } catch (const std::exception& e) {
      failure = e.what();
      ++errors;
    }
    errors += rep.errorCount();
    warnings += rep.warningCount();
    if (json) {
      std::printf("%s{\"name\":\"%s\",", i == 0 ? "" : ",",
                  circuit.name.c_str());
      if (!failure.empty()) {
        std::printf("\"error\":\"%s\",", obs::jsonEscape(failure).c_str());
      }
      std::printf("\"report\":%s}", rep.renderJson().c_str());
    } else {
      if (!failure.empty()) {
        std::fprintf(stderr, "lint: %s: %s\n", circuit.name.c_str(),
                     failure.c_str());
      }
      std::printf("== %s ==\n%s", circuit.name.c_str(),
                  rep.renderText().c_str());
    }
  }
  if (json) {
    std::printf("]\n");
  } else {
    std::printf("lint: %zu error(s), %zu warning(s) across %zu circuit(s)\n",
                errors, warnings, circuits.size());
  }
  return errors != 0 ? 1 : 0;
}

/// Formal equivalence gate: compile each circuit, download it, extract the
/// configuration back out of the device and prove the fabric computes the
/// *source* netlist; with --relocate the circuit is additionally retargeted
/// to the rightmost strip and re-proven there. Output is byte-deterministic
/// for a given seed; exit 0 iff every stage of every circuit is equivalent.
int equivCmd(const Args& a) {
  if (!a.has("circuit") && !a.has("netlist") && !a.has("all")) return usage();
  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  const std::uint64_t seed = std::stoull(a.get("seed", "1"));

  std::vector<AppCircuit> circuits;
  if (a.has("all")) {
    circuits = workloads::allSuites();
  } else {
    circuits.push_back(loadCircuit(a));
  }

  struct Stage {
    std::string name;
    analysis::equiv::ConfiguredCheck chk;
  };
  const bool json = a.has("json");
  std::ostringstream os;
  std::size_t failed = 0;
  if (json) os << "[";
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    const AppCircuit& circuit = circuits[i];
    std::vector<Stage> stages;
    std::string failure;
    try {
      Device dev = p.makeDevice();
      Compiler compiler(dev);
      const CompiledCircuit c = [&] {
        if (a.has("width")) {
          const auto w = static_cast<std::uint16_t>(std::stoul(a.get("width")));
          CompileOptions co;
          co.seed = seed;
          return compiler.compile(circuit.netlist,
                                  Region::columns(dev.geometry(), 0, w), co);
        }
        return workloads::compileMinimal(compiler, circuit.netlist, seed);
      }();
      dev.applyBitstream(c.fullBitstream());
      stages.push_back({"post_pnr", analysis::equiv::checkConfiguredAgainst(
                                        dev, c, circuit.netlist)});
      if (a.has("relocate")) {
        const auto newX0 =
            static_cast<std::uint16_t>(dev.geometry().cols - c.region.w);
        const CompiledCircuit r = compiler.relocate(c, newX0);
        Device dev2 = p.makeDevice();
        dev2.applyBitstream(r.fullBitstream());
        stages.push_back({"post_relocate_x" + std::to_string(newX0),
                          analysis::equiv::checkConfiguredAgainst(
                              dev2, r, circuit.netlist)});
      }
    } catch (const std::exception& e) {
      failure = e.what();
    }
    bool circuitOk = failure.empty();
    for (const Stage& s : stages) {
      if (!s.chk.ok()) circuitOk = false;
    }
    if (!circuitOk) ++failed;

    if (json) {
      os << (i == 0 ? "" : ",") << "\n{\"name\":\""
         << obs::jsonEscape(circuit.name) << "\"";
      if (!failure.empty()) {
        os << ",\"error\":\"" << obs::jsonEscape(failure) << "\"";
      }
      os << ",\"equivalent\":" << (circuitOk ? "true" : "false")
         << ",\"stages\":[";
      for (std::size_t s = 0; s < stages.size(); ++s) {
        const Stage& st = stages[s];
        os << (s == 0 ? "" : ",") << "{\"stage\":\"" << st.name
           << "\",\"equivalent\":" << (st.chk.ok() ? "true" : "false")
           << ",\"fully_proven\":"
           << (st.chk.result.fullyProven ? "true" : "false") << ",\"summary\":\""
           << obs::jsonEscape(st.chk.result.summary()) << "\"";
        if (!st.chk.extracted.problems.empty()) {
          os << ",\"extraction_problems\":[";
          for (std::size_t k = 0; k < st.chk.extracted.problems.size(); ++k) {
            os << (k == 0 ? "" : ",") << "\""
               << obs::jsonEscape(st.chk.extracted.problems[k]) << "\"";
          }
          os << "]";
        }
        if (!st.chk.result.counterexamples.empty()) {
          os << ",\"counterexamples\":[";
          for (std::size_t k = 0; k < st.chk.result.counterexamples.size();
               ++k) {
            os << (k == 0 ? "" : ",") << "\""
               << obs::jsonEscape(st.chk.result.counterexamples[k].render())
               << "\"";
          }
          os << "]";
        }
        os << "}";
      }
      os << "]}";
    } else {
      os << "== " << circuit.name << " ==\n";
      if (!failure.empty()) os << "  flow error: " << failure << "\n";
      for (const Stage& st : stages) {
        os << "  " << st.name << ": "
           << (st.chk.ok() ? "EQUIVALENT" : "NOT EQUIVALENT") << " ("
           << st.chk.result.summary() << ")\n";
        for (const std::string& prob : st.chk.extracted.problems) {
          os << "    extraction: " << prob << "\n";
        }
        for (const std::string& prob : st.chk.result.portMismatches) {
          os << "    port: " << prob << "\n";
        }
        for (const std::string& prob : st.chk.result.stateMismatches) {
          os << "    state: " << prob << "\n";
        }
        for (const auto& cx : st.chk.result.counterexamples) {
          os << "    counterexample: " << cx.render() << "\n";
        }
      }
    }
  }
  if (json) {
    os << "\n]\n";
  } else {
    os << "equiv: " << circuits.size() << " circuit(s), " << failed
       << " failure(s)\n";
  }
  const int rc = emitPayload(a, os.str());
  if (rc != 0) return rc;
  return failed != 0 ? 1 : 0;
}

/// Seeded fault-injection campaign against the partitioned kernel: three
/// relocatable circuits, eight staggered tasks, wire corruption/truncation,
/// configuration upsets, scripted permanent strip failures and hangs. The
/// report is byte-identical for a given seed and campaign (the whole stack
/// is deterministic), which is what the CI smoke test pins.
int faultsCmd(const Args& a) {
  const std::uint64_t seed = std::stoull(a.get("seed", "7"));
  const std::string campaign = a.get("campaign", "ci");
  if (a.has("flight-dir")) {
    setenv("VFPGA_FLIGHT_DIR", a.get("flight-dir").c_str(), 1);
  }

  fault::FaultPlanSpec spec;
  spec.seed = seed;
  if (campaign == "ci") {
    spec.downloadCorruptRate = 0.25;
    spec.downloadAbortRate = 0.15;
    spec.stateCorruptRate = 0.20;
    spec.meanUpsetsPerScrub = 1.5;
    spec.execHangRate = 0.10;
    spec.stripFailures = {{millis(2), 2}, {millis(5), 9}};
  } else if (campaign == "stress") {
    spec.downloadCorruptRate = 0.40;
    spec.downloadAbortRate = 0.30;
    spec.stateCorruptRate = 0.35;
    spec.meanUpsetsPerScrub = 3.0;
    spec.execHangRate = 0.20;
    spec.stripFailures = {{millis(1), 2}, {millis(3), 7}, {millis(6), 10}};
  } else {
    std::fprintf(stderr, "error: unknown campaign '%s' (ci|stress)\n",
                 campaign.c_str());
    return 2;
  }
  fault::FaultPlan plan(spec);

  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  opt.ft.plan = &plan;
  opt.ft.scrubInterval = micros(500);
  opt.ft.recovery = fault::RecoveryOptions{true, 4, micros(50)};
  opt.ft.watchdogFactor = 4.0;

  // Static sanity check of the knob combination before anything runs.
  {
    analysis::FaultToleranceProfile prof;
    prof.downloadCorruptRate = spec.downloadCorruptRate;
    prof.downloadAbortRate = spec.downloadAbortRate;
    prof.stateCorruptRate = spec.stateCorruptRate;
    prof.meanUpsetsPerScrub = spec.meanUpsetsPerScrub;
    prof.execHangRate = spec.execHangRate;
    prof.anyStripFailures = !spec.stripFailures.empty();
    prof.scrubInterval = opt.ft.scrubInterval;
    prof.verifyDownloads = opt.ft.recovery.verifyDownloads;
    prof.maxDownloadRetries = opt.ft.recovery.maxDownloadRetries;
    prof.watchdogFactor = opt.ft.watchdogFactor;
    prof.garbageCollect = opt.garbageCollect;
    analysis::Report rep;
    analysis::lintFaultTolerance(prof, rep);
    if (!rep.diagnostics().empty()) {
      std::fprintf(stderr, "%s", rep.renderText().c_str());
    }
    if (!rep.ok()) return 1;
  }

  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);

  const Region strip = Region::columns(dev.geometry(), 0, 4);
  Simulation sim;
  OsKernel kernel(sim, dev, port, compiler, opt);
  // Live NDJSON stream of the campaign (watch with tail -f); the summary
  // goes to stderr so the survival report stays byte-identical per seed.
  std::optional<obs::StreamExporter> stream;
  if (a.has("stream")) {
    stream.emplace(streamOptions(a));
    if (!stream->ok()) {
      std::fprintf(stderr, "error: cannot open stream %s\n",
                   a.get("stream").c_str());
      return 3;
    }
    attachKernelStream(*stream, kernel, "os/faults");
  }
  const ConfigId cfgs[3] = {
      kernel.registerConfig(
          compiler.compile(named(lib::makeCounter(6), "count"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeChecksum(6), "csum"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeLfsr(8, 0b10111000), "lfsr"), strip)),
  };
  const std::size_t kTasks = 8;
  for (std::size_t i = 0; i < kTasks; ++i) {
    TaskSpec t;
    t.name = "ft" + std::to_string(i);
    t.arrival = static_cast<SimTime>(i) * micros(150);
    t.ops = {CpuBurst{micros(30)}, FpgaExec{cfgs[i % 3], 20000 + 5000 * i},
             CpuBurst{micros(20)}};
    kernel.addTask(std::move(t));
  }
  kernel.run();
  if (stream) {
    stream->finish();
    reportStreamTotals(*stream, "faults");
  }

  std::size_t finished = 0;
  std::size_t parked = 0;
  for (const TaskRuntime& t : kernel.tasks()) {
    if (t.state == TaskState::kDone) ++finished;
    if (t.state == TaskState::kParked) ++parked;
  }
  const fault::FaultCounters& in = plan.counters();
  const ConfigPortStats& ps = port.stats();
  const obs::Labels l = {{"policy", fpgaPolicyName(opt.policy)}};
  obs::MetricsRegistry& reg = kernel.metricsRegistry();
  auto c = [&](const char* name) {
    return reg.counter(name, l, "").value();
  };

  char buf[512];
  std::string out;
  auto line = [&](const char* fmt2, auto... args2) {
    std::snprintf(buf, sizeof buf, fmt2, args2...);
    out += buf;
  };
  const bool survived = finished == kTasks && parked == 0;
  line("vfpga fault campaign report\n");
  line("===========================\n");
  line("campaign: %s\nseed: %llu\npolicy: %s\ndevice: %s\n\n",
       campaign.c_str(), static_cast<unsigned long long>(seed),
       fpgaPolicyName(opt.policy), p.name.c_str());
  line("tasks: %zu   finished: %zu   parked: %zu\n\n", kTasks, finished,
       parked);
  line("injected\n");
  line("  corrupted downloads:     %llu\n",
       static_cast<unsigned long long>(in.corruptedDownloads));
  line("  aborted downloads:       %llu\n",
       static_cast<unsigned long long>(in.abortedDownloads));
  line("  flipped wire bits:       %llu\n",
       static_cast<unsigned long long>(in.flippedBits));
  line("  state corruptions:       %llu\n",
       static_cast<unsigned long long>(in.stateCorruptions));
  line("  config upsets:           %llu\n",
       static_cast<unsigned long long>(in.upsets));
  line("  hung executions:         %llu\n\n",
       static_cast<unsigned long long>(in.hangs));
  line("detected\n");
  line("  verify failures (frames):%llu\n",
       static_cast<unsigned long long>(ps.verifyFailures));
  line("  state CRC failures:      %llu\n\n",
       static_cast<unsigned long long>(
           c("vfpga_fault_state_corruptions_total")));
  line("recovered\n");
  line("  download retries:        %llu\n",
       static_cast<unsigned long long>(
           c("vfpga_fault_download_retries_total")));
  line("  scrub runs:              %llu\n",
       static_cast<unsigned long long>(c("vfpga_fault_scrub_runs_total")));
  line("  scrub repaired frames:   %llu\n",
       static_cast<unsigned long long>(
           c("vfpga_fault_scrub_repaired_frames_total")));
  line("  watchdog preemptions:    %llu\n",
       static_cast<unsigned long long>(
           c("vfpga_fault_watchdog_preemptions_total")));
  line("  strips quarantined:      %llu\n",
       static_cast<unsigned long long>(
           c("vfpga_fault_strips_quarantined_total")));
  line("  quarantine relocations:  %llu\n\n",
       static_cast<unsigned long long>(
           c("vfpga_fault_quarantine_relocations_total")));
  line("makespan: %.3f ms\n", toMilliseconds(kernel.metrics().makespan));
  line("survived: %s\n", survived ? "yes" : "no");

  const int rc = emitPayload(a, out);
  if (rc != 0) return rc;
  return survived ? 0 : 1;
}

/// Seeded chaos campaign: prove the stack survives *kernel death*, not
/// just device faults. Three phases, byte-deterministic per seed:
///
///   A  kill-restore-verify — a fault-injected partitioned campaign with
///      durable checkpointing is killed mid-flight (the kernel object is
///      destroyed without finalize, exactly what a crash leaves behind),
///      the on-disk checkpoint slots are then tampered with (truncation,
///      payload bit rot, stale-generation re-stamps), and a fresh kernel
///      on the same directory re-admits every task it can prove intact.
///      Every tampered slot must be rejected by the CRC / version / slot-
///      parity guards AND named by a CK lint rule; recovery must fall
///      back to the previous good generation or park with a diagnostic —
///      never restore silent wrong state.
///   B  bit-exactness — a counter is cut at cycle 23, checkpointed twice,
///      the newest generation is rotted; the restore (forced to fall back
///      to generation 1) relocates to a different strip on a fresh
///      device, proves equivalence, runs the remaining 41 cycles and must
///      match a 64-cycle uninterrupted reference register for register.
///   C  technique-manager residency faults — overlay / segment / page
///      managers run under stale-reuse / table-corruption / residency-
///      loss injection with verification on; every injection must be
///      detected (the silent counters stay zero).
///
/// Exit 0 iff all three phases survive with zero silent wrong state.
int chaosCmd(const Args& a) {
  const std::uint64_t seed = std::stoull(a.get("seed", "7"));
  const std::string campaign = a.get("campaign", "ci");
  const std::string ckDir = a.get("dir", ".vfpga_chaos");
  if (a.has("flight-dir")) {
    setenv("VFPGA_FLIGHT_DIR", a.get("flight-dir").c_str(), 1);
  }
  // Generation numbering continues from whatever is on disk (that is the
  // point of a durable store), so start from a clean slate — otherwise a
  // second run of the same seed would write different generation numbers
  // and the report would not be byte-identical.
  std::error_code ec;
  std::filesystem::remove_all(ckDir, ec);

  fault::FaultPlanSpec spec;
  spec.seed = seed;
  if (campaign == "ci") {
    spec.downloadCorruptRate = 0.20;
    spec.downloadAbortRate = 0.10;
    spec.stateCorruptRate = 0.15;
    spec.meanUpsetsPerScrub = 1.0;
    spec.execHangRate = 0.05;
  } else if (campaign == "stress") {
    spec.downloadCorruptRate = 0.35;
    spec.downloadAbortRate = 0.25;
    spec.stateCorruptRate = 0.30;
    spec.meanUpsetsPerScrub = 2.5;
    spec.execHangRate = 0.12;
    spec.stripFailures = {{millis(2), 9}};
  } else {
    std::fprintf(stderr, "error: unknown campaign '%s' (ci|stress)\n",
                 campaign.c_str());
    return 2;
  }
  fault::FaultPlan plan(spec);

  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  opt.ft.plan = &plan;
  opt.ft.scrubInterval = micros(500);
  opt.ft.recovery = fault::RecoveryOptions{true, 4, micros(50)};
  opt.ft.watchdogFactor = 4.0;
  opt.ft.checkpointDir = ckDir;
  opt.ft.checkpointInterval = micros(200);

  // Static sanity check of the knob combination (incl. the phase-C
  // residency fault classes) before anything runs.
  {
    analysis::FaultToleranceProfile prof;
    prof.downloadCorruptRate = spec.downloadCorruptRate;
    prof.downloadAbortRate = spec.downloadAbortRate;
    prof.stateCorruptRate = spec.stateCorruptRate;
    prof.meanUpsetsPerScrub = spec.meanUpsetsPerScrub;
    prof.execHangRate = spec.execHangRate;
    prof.overlayStaleReuseRate = 0.35;
    prof.segmentTableCorruptRate = 0.35;
    prof.pageResidencyLossRate = 0.35;
    prof.anyStripFailures = !spec.stripFailures.empty();
    prof.scrubInterval = opt.ft.scrubInterval;
    prof.verifyDownloads = opt.ft.recovery.verifyDownloads;
    prof.maxDownloadRetries = opt.ft.recovery.maxDownloadRetries;
    prof.watchdogFactor = opt.ft.watchdogFactor;
    prof.garbageCollect = opt.garbageCollect;
    prof.verifyResidency = true;
    analysis::Report rep;
    analysis::lintFaultTolerance(prof, rep);
    if (!rep.diagnostics().empty()) {
      std::fprintf(stderr, "%s", rep.renderText().c_str());
    }
    if (!rep.ok()) return 1;
  }

  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  // The serialized header in front of the payload: "VFCK" magic (4) +
  // u16 version + u64 generation + u32 payloadLen.
  constexpr std::size_t kHeader = 18;
  auto readFile = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::vector<char>((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  };
  auto writeFile = [](const std::string& path,
                      const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };
  auto registerWorkload = [](OsKernel& kernel, Compiler& compiler,
                             const Device& dev) {
    const Region strip = Region::columns(dev.geometry(), 0, 4);
    return std::array<ConfigId, 3>{
        kernel.registerConfig(
            compiler.compile(named(lib::makeCounter(6), "count"), strip)),
        kernel.registerConfig(
            compiler.compile(named(lib::makeChecksum(6), "csum"), strip)),
        kernel.registerConfig(compiler.compile(
            named(lib::makeLfsr(8, 0b10111000), "lfsr"), strip)),
    };
  };

  // ---- phase A part 1: run to the kill point, then die without finalize.
  const SimTime killAt = millis(1);
  const std::size_t kTasks = 8;
  {
    Device dev = p.makeDevice();
    ConfigPort port(dev, p.port);
    Compiler compiler(dev);
    Simulation sim;
    OsKernel kernel(sim, dev, port, compiler, opt);
    const auto cfgs = registerWorkload(kernel, compiler, dev);
    for (std::size_t i = 0; i < kTasks; ++i) {
      TaskSpec t;
      t.name = "ch" + std::to_string(i);
      t.arrival = static_cast<SimTime>(i) * micros(120);
      t.ops = {CpuBurst{micros(30)}, FpgaExec{cfgs[i % 3], 20000 + 5000 * i},
               CpuBurst{micros(20)}};
      kernel.addTask(std::move(t));
    }
    kernel.start();
    while (sim.step() && sim.now() < killAt) {
    }
    // Scope exit without finalize(): this is the kernel dying. Whatever
    // reached disk is all the restart gets.
  }

  // ---- phase A part 2: seeded tampering with the checkpoint slots.
  std::uint64_t tamperTruncated = 0;
  std::uint64_t tamperRotten = 0;
  std::uint64_t tamperStale = 0;
  std::uint64_t leftIntact = 0;
  std::size_t diskTasks = 0;
  {
    fault::CheckpointStore store(ckDir);
    Rng rng(seed ^ 0xc5a0c5a0ull);
    for (const std::string& task : store.taskNames()) {
      ++diskTasks;
      const auto lr = store.load(task);
      if (!lr.ok) continue;  // the kill itself already broke this pair
      // Tamper with the *newest* valid generation so recovery must fall
      // back (or, when it was the only slot, park with a diagnostic).
      const auto slot = static_cast<unsigned>(lr.generation & 1);
      const std::string path = store.slotPaths(task)[slot];
      std::vector<char> bytes = readFile(path);
      if (bytes.size() < kHeader + 4) continue;
      // Cycle the corruption class (seeded positions within it) so every
      // run exercises truncation, bit rot, stale generations AND a clean
      // untampered restore.
      switch ((diskTasks - 1 + seed) % 4) {
        case 0:  // truncation (a crash mid-write cut the file short)
          bytes.resize(bytes.size() / 2);
          ++tamperTruncated;
          break;
        case 1: {  // bit rot in the payload (or its trailing CRC)
          const std::size_t idx =
              kHeader + static_cast<std::size_t>(
                            rng.below(bytes.size() - kHeader));
          bytes[idx] = static_cast<char>(bytes[idx] ^
                                         (1 << rng.below(8)));
          ++tamperRotten;
          break;
        }
        case 2: {  // stale generation: re-stamp the header out of parity
          const std::uint64_t forged = lr.generation + 1;
          for (int b = 0; b < 8; ++b) {
            bytes[6 + b] = static_cast<char>((forged >> (8 * b)) & 0xff);
          }
          ++tamperStale;
          break;
        }
        default:
          ++leftIntact;
          continue;
      }
      writeFile(path, bytes);
    }
  }
  const std::uint64_t tampered =
      tamperTruncated + tamperRotten + tamperStale;

  // ---- phase A part 3: fresh kernel, same directory — restore or reject.
  std::uint64_t detectedSlots = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t parkedDiag = 0;
  std::uint64_t restored = 0;
  std::uint64_t congruenceRejects = 0;
  std::uint64_t ckErrorSlots = 0;
  std::size_t restoredFinished = 0;
  std::size_t restoredParked = 0;
  double restartMakespanMs = 0.0;
  {
    Device dev = p.makeDevice();
    ConfigPort port(dev, p.port);
    Compiler compiler(dev);
    Simulation sim;
    OsKernel kernel(sim, dev, port, compiler, opt);
    registerWorkload(kernel, compiler, dev);
    fault::CheckpointStore* store = kernel.checkpointStore();
    for (const std::string& task : store->taskNames()) {
      // Per-slot CK lint: every rejected slot must be named by a rule.
      const std::vector<std::string> paths = store->slotPaths(task);
      for (unsigned slot = 0; slot < 2; ++slot) {
        std::ifstream in(paths[slot], std::ios::binary);
        if (!in) continue;
        std::vector<std::uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        const fault::DecodeResult dr = fault::decodeCheckpoint(bytes);
        analysis::CheckpointProfile cp;
        cp.magicOk = dr.magicOk;
        cp.versionSupported = dr.versionSupported;
        cp.version = dr.version;
        cp.payloadCrcOk = dr.payloadCrcOk;
        cp.stateCrcOk = dr.stateCrcOk;
        cp.generationParityOk =
            !dr.magicOk || (dr.generation & 1) == slot;
        cp.stateBits = dr.checkpoint.registers.size();
        analysis::Report rep;
        analysis::lintCheckpoint(cp, rep);
        if (!rep.ok()) ++ckErrorSlots;
      }
      const auto lr = store->load(task);
      detectedSlots += lr.corruptSlots;
      if (lr.fellBack) ++fallbacks;
      if (!lr.ok) {
        // No intact generation: a clean, diagnosed park — never a guess.
        ++parkedDiag;
        continue;
      }
      try {
        kernel.restoreTask(lr.checkpoint);
        ++restored;
      } catch (const std::runtime_error&) {
        ++congruenceRejects;
      }
    }
    kernel.run();
    for (const TaskRuntime& t : kernel.tasks()) {
      if (t.state == TaskState::kDone) ++restoredFinished;
      if (t.state == TaskState::kParked) ++restoredParked;
    }
    restartMakespanMs = toMilliseconds(kernel.metrics().makespan);
  }
  const bool phaseA = diskTasks > 0 && restored > 0 &&
                      congruenceRejects == 0 && restoredParked == 0 &&
                      restoredFinished == restored &&
                      detectedSlots >= tampered && ckErrorSlots >= tampered;

  // ---- phase B: bit-exact restore vs an uninterrupted reference.
  bool bitFellBack = false;
  bool equivOk = false;
  bool bitExact = false;
  std::uint64_t bitGen = 0;
  {
    fault::CheckpointStore store(ckDir);
    Device devA = p.makeDevice();
    Compiler ca(devA);
    const CompiledCircuit cc =
        ca.compile(named(lib::makeCounter(6), "bx_counter"),
                   Region::columns(devA.geometry(), 0, 4));
    devA.applyBitstream(cc.fullBitstream());
    LoadedCircuit la(devA, cc);
    la.applyInitialState();
    auto clock = [](LoadedCircuit& lc, int cycles) {
      lc.setInput("en", true);
      lc.setInput("clr", false);
      for (int i = 0; i < cycles; ++i) {
        lc.evaluate();
        lc.tick();
      }
      lc.evaluate();
    };
    clock(la, 23);

    fault::TaskCheckpoint ck;
    ck.task = "bitexact";
    ck.device = std::to_string(devA.geometry().cols) + "x" +
                std::to_string(devA.geometry().rows);
    ck.placementX0 = 0;
    ck.placementWidth = 4;
    fault::CheckpointOp op;
    op.isFpga = true;
    op.config = "bx_counter";
    op.configWidth = 4;
    op.cycles = 41;
    ck.ops = {op};
    ck.registers = la.saveState();
    store.write(ck);
    const auto w2 = store.write(ck);
    {  // rot the newest generation: the load below must fall back
      std::vector<char> bytes = readFile(w2.path);
      bytes[kHeader + (bytes.size() - kHeader) / 2] ^= 0x40;
      writeFile(w2.path, bytes);
    }
    const auto lr = store.load("bitexact");
    bitFellBack = lr.ok && lr.fellBack;
    bitGen = lr.generation;
    if (lr.ok) {
      // Restore onto a *different strip* of a fresh device — the repaired-
      // device path — via pure relocation, proven equivalent before any
      // state is written back.
      Device devB = p.makeDevice();
      Compiler cb(devB);
      const CompiledCircuit cr = cb.relocate(cc, 4);
      devB.applyBitstream(cr.fullBitstream());
      try {
        analysis::equiv::verifyConfiguredOrThrow(devB, cr,
                                                 "chaos bit-exact restore");
        equivOk = true;
      } catch (const std::exception&) {
        equivOk = false;
      }
      if (equivOk) {
        LoadedCircuit lb(devB, cr);
        lb.restoreState(lr.checkpoint.registers);
        clock(lb, 41);
        Device devR = p.makeDevice();
        devR.applyBitstream(cc.fullBitstream());
        LoadedCircuit lref(devR, cc);
        lref.applyInitialState();
        clock(lref, 64);
        bitExact = lb.outputBus("q", 6) == lref.outputBus("q", 6) &&
                   lb.saveState() == lref.saveState();
      }
    }
  }
  const bool phaseB = bitFellBack && bitGen == 1 && equivOk && bitExact;

  // ---- phase C: technique-manager residency fault classes.
  fault::FaultPlanSpec mspec;
  mspec.seed = seed + 101;
  mspec.overlayStaleReuseRate = 0.35;
  mspec.segmentTableCorruptRate = 0.35;
  mspec.pageResidencyLossRate = 0.35;
  fault::FaultPlan mplan(mspec);
  std::uint64_t ovDet = 0, ovSil = 0;
  std::uint64_t sgDet = 0, sgSil = 0;
  std::uint64_t pgDet = 0, pgSil = 0;
  {
    Device dev = p.makeDevice();
    ConfigPort port(dev, p.port);
    Compiler compiler(dev);
    OverlayManager om(dev, port, compiler, 4);
    om.setFaultPlan(&mplan);
    om.installResident(
        compiler.compile(named(lib::makeChecksum(6), "cm_common"),
                         Region::columns(dev.geometry(), 0, 4)));
    const OverlayId o1 = om.addOverlay(
        compiler.compile(named(lib::makeCounter(6), "cm_f1"),
                         Region::columns(dev.geometry(), 0, 4)));
    for (int i = 0; i < 24; ++i) om.invoke(o1);  // 23 hits draw the fault
    ovDet = om.staleReusesDetected();
    ovSil = om.silentStaleReuses();
  }
  {
    Device dev = p.makeDevice();
    ConfigPort port(dev, p.port);
    Compiler compiler(dev);
    SegmentManager sm(dev, port, compiler, ReplacementPolicy::kLru);
    sm.setFaultPlan(&mplan);
    std::vector<SegmentId> segs;
    for (int i = 0; i < 2; ++i) {
      Netlist nl = lib::makeCounter(6);
      nl.setName("sg" + std::to_string(i));
      segs.push_back(sm.addSegment(
          compiler.compile(nl, Region::columns(dev.geometry(), 0, 5))));
    }
    for (int i = 0; i < 24; ++i) sm.access(segs[i % 2]);
    sgDet = sm.tableCorruptionsDetected();
    sgSil = sm.silentTableCorruptions();
  }
  {
    PageManager pm(p.port, 128, PageManagerOptions{4, 16});
    pm.setFaultPlan(&mplan);
    const ConfigId f = pm.addFunction(10);
    for (int i = 0; i < 24; ++i) pm.access(f);
    pgDet = pm.residencyLossesDetected();
    pgSil = pm.silentResidencyLosses();
  }
  const fault::FaultCounters& mc = mplan.counters();
  const std::uint64_t silentTotal = ovSil + sgSil + pgSil;
  const bool phaseC = silentTotal == 0 && (ovDet + sgDet + pgDet) > 0;

  const bool survived = phaseA && phaseB && phaseC;
  char buf[512];
  std::string out;
  auto line = [&](const char* fmt2, auto... args2) {
    std::snprintf(buf, sizeof buf, fmt2, args2...);
    out += buf;
  };
  auto yn = [](bool b) { return b ? "yes" : "no"; };
  auto u64 = [](std::uint64_t v) {
    return static_cast<unsigned long long>(v);
  };
  line("vfpga chaos campaign report\n");
  line("===========================\n");
  line("campaign: %s\nseed: %llu\ndevice: %s\ncheckpoint dir: %s\n\n",
       campaign.c_str(), u64(seed), p.name.c_str(), ckDir.c_str());
  line("phase A: kill-restore-verify (killed at %llu ns)\n", u64(killAt));
  line("  tasks with checkpoints on disk: %zu / %zu\n", diskTasks, kTasks);
  line("  slots tampered:              %llu (truncated %llu, rotten %llu,"
       " stale-gen %llu, intact %llu)\n",
       u64(tampered), u64(tamperTruncated), u64(tamperRotten),
       u64(tamperStale), u64(leftIntact));
  line("  corrupt slots detected:      %llu\n", u64(detectedSlots));
  line("  CK-lint flagged slots:       %llu\n", u64(ckErrorSlots));
  line("  fallbacks to older gen:      %llu\n", u64(fallbacks));
  line("  parked with diagnostic:      %llu\n", u64(parkedDiag));
  line("  congruence rejections:       %llu\n", u64(congruenceRejects));
  line("  tasks restored:              %llu\n", u64(restored));
  line("  restored tasks finished:     %zu (parked %zu)\n",
       restoredFinished, restoredParked);
  line("  restart makespan:            %.3f ms\n", restartMakespanMs);
  line("  phase survived:              %s\n\n", yn(phaseA));
  line("phase B: bit-exact restore (fallback + relocation)\n");
  line("  fell back past rotten gen:   %s (restored generation %llu)\n",
       yn(bitFellBack), u64(bitGen));
  line("  equivalence proof:           %s\n", yn(equivOk));
  line("  registers match reference:   %s\n", yn(bitExact));
  line("  phase survived:              %s\n\n", yn(phaseB));
  line("phase C: manager residency faults (verification on)\n");
  line("  overlay stale reuses:        injected %llu detected %llu"
       " silent %llu\n",
       u64(mc.staleOverlayReuses), u64(ovDet), u64(ovSil));
  line("  segment table corruptions:   injected %llu detected %llu"
       " silent %llu\n",
       u64(mc.segmentTableCorruptions), u64(sgDet), u64(sgSil));
  line("  page residency losses:       injected %llu detected %llu"
       " silent %llu\n",
       u64(mc.pageResidencyLosses), u64(pgDet), u64(pgSil));
  line("  phase survived:              %s\n\n", yn(phaseC));
  line("silent wrong state: %llu\n", u64(silentTotal));
  line("survived: %s\n", yn(survived));

  const int rc = emitPayload(a, out);
  if (rc != 0) return rc;
  return survived ? 0 : 1;
}

/// Seeded multi-device cluster campaign: N partitioned kernels sharing one
/// simulation and one content-addressed bitstream cache, admission
/// backpressure, pluggable placement and live migration off degraded
/// devices (with failback after transient faults heal). The report is
/// byte-identical per (seed, devices, policy, campaign); a copy always
/// lands in the obs output directory so repo-root stays clean. Exit 0 iff
/// every SLO was met.
int clusterCmd(const Args& a) {
  const std::uint64_t seed = std::stoull(a.get("seed", "7"));
  const std::size_t devices = std::stoul(a.get("devices", "3"));
  const std::string campaign = a.get("campaign", "ci");
  const std::string fmt = a.get("format", "text");
  if (devices < 2 || devices > 8) {
    std::fprintf(stderr, "cluster: --devices must be in [2, 8]\n");
    return 2;
  }
  if (fmt != "text" && fmt != "json") {
    std::fprintf(stderr, "cluster: unknown --format '%s' (text|json)\n",
                 fmt.c_str());
    return 2;
  }

  cluster::ClusterOptions copt;
  copt.placement =
      cluster::placementPolicyByName(a.get("policy", "least_loaded"));
  copt.minUsableColumns = 8;
  copt.maxJobsPerDevice = 3;
  std::size_t jobCount = 5 * devices;
  // dev1 is the unlucky device of every campaign; the others stay healthy.
  fault::FaultPlanSpec faulty;
  faulty.seed = seed + 1;
  if (campaign == "ci") {
    faulty.stripFailures = {{millis(2), 2}, {millis(4), 9}};
    copt.slos.maxRejectedFraction = 0.0;
    copt.slos.maxP99QueueWaitNs = millis(20);
  } else if (campaign == "heal") {
    // One transient fault: the strip heals after 3 ms and the rebalancer
    // migrates work back onto the recovered device.
    faulty.stripFailures = {{millis(2), 5, millis(3)}};
    copt.rebalanceGap = 2;
    copt.slos.maxRejectedFraction = 0.0;
    copt.slos.maxP99QueueWaitNs = millis(20);
  } else if (campaign == "stress") {
    faulty.stripFailures = {{millis(1), 2}, {millis(3), 9}};
    copt.admissionQueueDepth = 4;
    copt.maxJobsPerDevice = 2;
    jobCount = 10 * devices;
    copt.slos.maxRejectedFraction = 0.6;
    copt.slos.maxP99QueueWaitNs = millis(50);
  } else {
    std::fprintf(stderr, "cluster: unknown campaign '%s' (ci|heal|stress)\n",
                 campaign.c_str());
    return 2;
  }

  std::vector<cluster::DeviceNodeSpec> specs;
  for (std::size_t i = 0; i < devices; ++i) {
    cluster::DeviceNodeSpec s;
    s.name = "dev" + std::to_string(i);
    s.profile = mediumPartialProfile();
    if (i == 1) {
      s.faulty = true;
      s.faultSpec = faulty;
    }
    specs.push_back(std::move(s));
  }

  // Static sanity check of the campaign before anything runs (CL rules).
  {
    analysis::ClusterProfile prof;
    for (const auto& s : specs) {
      prof.deviceColumns.push_back(s.profile.geometry.cols);
    }
    prof.workloadWidths = {4, 4, 4};
    prof.admissionQueueDepth = copt.admissionQueueDepth;
    prof.minUsableColumns = copt.minUsableColumns;
    prof.rebalanceGap = copt.rebalanceGap;
    prof.anyStripFailures = true;
    analysis::Report rep;
    analysis::lintCluster(prof, rep);
    if (!rep.diagnostics().empty()) {
      std::fprintf(stderr, "%s", rep.renderText().c_str());
    }
    if (!rep.ok()) return 1;
  }

  Simulation sim;
  cluster::BitstreamCache cache(32);
  OsOptions base;
  base.priorityScheduling = true;
  cluster::DevicePool pool(sim, specs, cache, base);
  const cluster::WorkloadId ws[3] = {
      pool.registerWorkload("count", named(lib::makeCounter(6), "count"), 4),
      pool.registerWorkload("csum", named(lib::makeChecksum(6), "csum"), 4),
      pool.registerWorkload("lfsr",
                            named(lib::makeLfsr(8, 0b10111000), "lfsr"), 4),
  };

  cluster::ClusterScheduler sched(sim, pool, copt);
  Rng rng(seed);
  for (std::size_t j = 0; j < jobCount; ++j) {
    cluster::ClusterJobSpec job;
    job.name = "j" + std::to_string(j);
    job.submitAt = static_cast<SimTime>(j) * micros(120) +
                   rng.below(micros(60));
    job.priority = static_cast<int>(rng.below(3));
    job.ops = {CpuBurst{micros(20)},
               FpgaExec{ws[rng.below(3)], 15000 + 1000 * rng.below(20)},
               CpuBurst{micros(10)}};
    sched.submit(std::move(job));
  }
  sched.run();

  const std::string payload =
      fmt == "json" ? sched.renderJsonReport() : sched.renderReport();
  // Sidecar copy into the obs output directory (never the repo root).
  const std::string side = obs::outputDir() + "/cluster_" + campaign + "_" +
                           cluster::placementPolicyName(copt.placement) +
                           "_" + std::to_string(seed) +
                           (fmt == "json" ? ".json" : ".txt");
  {
    std::ofstream sf(side, std::ios::binary);
    sf.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    if (sf) {
      std::fprintf(stderr, "cluster: report sidecar %s\n", side.c_str());
    }
  }
  const int rc = emitPayload(a, payload);
  if (rc != 0) return rc;
  return sched.summary().slosMet ? 0 : 1;
}

/// Continuous health monitor over a seeded cluster degradation campaign:
/// the ci cluster workload with dev1 losing two strips mid-run, watched by
/// a TimeSeriesStore + AlertEngine + HealthModel attached to the
/// scheduler. Every signal is sampled on a sim-time cadence and every
/// render is byte-identical per seed — the determinism ctest runs the
/// command twice and compares. Alert transitions land as span instants on
/// dev0's tracer and as flight-recorder notes. Exit code is the worst
/// firing severity at campaign end (0 none, 1 warning, 2 critical): a
/// healthy campaign resolves everything and exits 0.
int monitorCmd(const Args& a) {
  const std::uint64_t seed = std::stoull(a.get("seed", "7"));
  const std::size_t devices = std::stoul(a.get("devices", "3"));
  const std::size_t refresh = std::stoul(a.get("refresh", "0"));
  const std::string fmt = a.get("format", "text");
  if (devices < 2 || devices > 8) {
    std::fprintf(stderr, "monitor: --devices must be in [2, 8]\n");
    return 2;
  }
  if (fmt != "text" && fmt != "json" && fmt != "html") {
    std::fprintf(stderr, "monitor: unknown --format '%s' (text|json|html)\n",
                 fmt.c_str());
    return 2;
  }

  // The ci cluster campaign: dev1 is the unlucky device, losing strip
  // columns 2 and 9 at 2 ms and 4 ms while jobs keep arriving.
  cluster::ClusterOptions copt;
  copt.placement = cluster::PlacementPolicy::kLeastLoaded;
  copt.minUsableColumns = 8;
  copt.maxJobsPerDevice = 3;
  copt.slos.maxRejectedFraction = 0.0;
  copt.slos.maxP99QueueWaitNs = millis(20);
  fault::FaultPlanSpec faulty;
  faulty.seed = seed + 1;
  faulty.stripFailures = {{millis(2), 2}, {millis(4), 9}};

  std::vector<cluster::DeviceNodeSpec> specs;
  for (std::size_t i = 0; i < devices; ++i) {
    cluster::DeviceNodeSpec s;
    s.name = "dev" + std::to_string(i);
    s.profile = mediumPartialProfile();
    if (i == 1) {
      s.faulty = true;
      s.faultSpec = faulty;
    }
    specs.push_back(std::move(s));
  }

  Simulation sim;
  cluster::BitstreamCache cache(32);
  OsOptions base;
  base.priorityScheduling = true;
  cluster::DevicePool pool(sim, specs, cache, base);
  const cluster::WorkloadId ws[3] = {
      pool.registerWorkload("count", named(lib::makeCounter(6), "count"), 4),
      pool.registerWorkload("csum", named(lib::makeChecksum(6), "csum"), 4),
      pool.registerWorkload("lfsr",
                            named(lib::makeLfsr(8, 0b10111000), "lfsr"), 4),
  };

  cluster::ClusterScheduler sched(sim, pool, copt);
  Rng rng(seed);
  const std::size_t jobCount = 5 * devices;
  for (std::size_t j = 0; j < jobCount; ++j) {
    cluster::ClusterJobSpec job;
    job.name = "j" + std::to_string(j);
    job.submitAt = static_cast<SimTime>(j) * micros(120) +
                   rng.below(micros(60));
    job.priority = static_cast<int>(rng.below(3));
    job.ops = {CpuBurst{micros(20)},
               FpgaExec{ws[rng.below(3)], 15000 + 1000 * rng.below(20)},
               CpuBurst{micros(10)}};
    sched.submit(std::move(job));
  }

  // ---- signal plane ----
  const SimDuration interval = micros(50);
  obs::monitor::TimeSeriesStore store(4096);
  store.setSampleIntervalNs(interval);
  store.addSeries("cluster.queue_depth", [&sched] {
    return static_cast<double>(sched.queueDepth());
  });
  store.addSeries("cluster.oldest_wait_ns", [&sched] {
    return static_cast<double>(sched.oldestQueuedWaitNs());
  }, "ns");
  store.addSeries("cluster.p99_wait_ns", [&sched] {
    return static_cast<double>(sched.liveP99QueueWaitNs());
  }, "ns");
  store.addSeries("cluster.rejected_fraction", [&sched] {
    return sched.liveRejectedFraction();
  });
  // SLO badness series (fraction of ticks in [0,1]): a tick is bad when
  // some admitted job has been stuck in the queue longer than the burn
  // target — well under the hard 20 ms SLO, so the burn alert leads it.
  const SimDuration waitTarget = micros(300);
  store.addSeries("slo.wait_bad", [&sched, waitTarget] {
    return sched.oldestQueuedWaitNs() > waitTarget ? 1.0 : 0.0;
  });
  obs::monitor::HealthModel health;
  for (std::size_t d = 0; d < devices; ++d) {
    const std::string prefix = "dev" + std::to_string(d) + ".";
    bindKernelSeries(store, pool.node(d).kernel(), prefix);
    // Named OUTSIDE the "devN." attribution prefix: an alert on the score
    // would otherwise feed back into the score it watches (firing-alert
    // weight), and a self-sustained alert can never resolve.
    const std::string name = "dev" + std::to_string(d);
    store.addSeries("health." + name + ".score",
                    [&health, name] { return health.score(name); });
  }

  // ---- alert rules ----
  obs::monitor::AlertEngine engine;
  {
    using namespace obs::monitor;
    AlertRule burn;
    burn.name = "slo_wait_burn";
    burn.series = "slo.wait_bad";
    burn.kind = RuleKind::kBurnRate;
    burn.severity = AlertSeverity::kCritical;
    burn.objective = 0.10;  // 10% of ticks may exceed the wait target
    burn.burnFactor = 2.0;
    burn.windowNs = micros(400);
    burn.longWindowNs = micros(1600);
    burn.forNs = micros(100);
    burn.resolveNs = micros(300);
    engine.addRule(burn);

    AlertRule reject;
    reject.name = "reject_burn";
    reject.series = "cluster.rejected_fraction";
    reject.kind = RuleKind::kBurnRate;
    reject.severity = AlertSeverity::kCritical;
    reject.objective = 0.01;
    reject.burnFactor = 1.0;
    reject.windowNs = micros(400);
    reject.longWindowNs = micros(1600);
    engine.addRule(reject);

    AlertRule cols;
    cols.name = "dev1_capacity_drop";
    cols.series = "dev1.usable_columns";
    cols.kind = RuleKind::kRateOfChange;
    cols.severity = AlertSeverity::kWarning;
    cols.threshold = -1.0;  // any sustained column loss per second
    cols.above = false;
    cols.windowNs = micros(200);
    cols.resolveNs = micros(200);
    engine.addRule(cols);

    AlertRule score;
    score.name = "dev1_health_degraded";
    score.series = "health.dev1.score";
    score.kind = RuleKind::kThreshold;
    score.severity = AlertSeverity::kCritical;
    score.threshold = health.options().degradedAt;
    score.forNs = micros(100);
    score.resolveNs = micros(200);
    engine.addRule(score);

    AlertRule anomaly;
    anomaly.name = "queue_depth_anomaly";
    anomaly.series = "cluster.queue_depth";
    anomaly.kind = RuleKind::kEwmaZScore;
    anomaly.severity = AlertSeverity::kWarning;
    anomaly.ewmaAlpha = 0.2;
    anomaly.zThreshold = 3.0;
    anomaly.warmupSamples = 10;
    anomaly.resolveNs = micros(200);
    engine.addRule(anomaly);

    AlertRule parked;
    parked.name = "dev1_parked_tasks";
    parked.series = "dev1.parked";
    parked.kind = RuleKind::kThreshold;
    parked.severity = AlertSeverity::kCritical;
    parked.threshold = 0.5;
    engine.addRule(parked);
  }

  // Static sanity check of the monitor setup before anything runs (MO
  // rules), same pattern as the cluster lint.
  {
    analysis::MonitorProfile prof;
    prof.seriesNames = store.seriesNames();
    for (const obs::monitor::RuleStatus& rs : engine.rules()) {
      analysis::MonitorRuleProfile rp;
      rp.name = rs.rule.name;
      rp.series = rs.rule.series;
      rp.kind = obs::monitor::ruleKindName(rs.rule.kind);
      rp.windowNs = rs.rule.windowNs;
      rp.longWindowNs = rs.rule.longWindowNs;
      rp.isBurnRate = rs.rule.kind == obs::monitor::RuleKind::kBurnRate;
      rp.isRateOfChange =
          rs.rule.kind == obs::monitor::RuleKind::kRateOfChange;
      prof.rules.push_back(std::move(rp));
    }
    prof.sampleIntervalNs = interval;
    prof.healthAttached = true;
    prof.healthHasFaultInputs = health.hasFaultInputs();
    analysis::Report rep;
    analysis::lintMonitor(prof, rep);
    if (!rep.diagnostics().empty()) {
      std::fprintf(stderr, "%s", rep.renderText().c_str());
    }
    if (!rep.ok()) return 1;
  }

  // Alert transitions land on dev0's span track and in the flight
  // recorder's note ring, so a post-mortem shows what was firing.
  obs::FlightRecorder::Options fro;
  fro.directory = obs::outputDir();
  obs::FlightRecorder recorder(fro);
  obs::FlightRecorder* prevRecorder =
      obs::FlightRecorder::installGlobal(&recorder);
  engine.setTransitionObserver(
      [&pool](const obs::monitor::AlertTransition& t) {
        pool.node(0).kernel().spanTracer().instantAt(
            t.atNs, "alert/" + t.rule, "monitor.alert",
            {{"rule", t.rule},
             {"to", t.to},
             {"severity", obs::monitor::alertSeverityName(t.severity)},
             {"value", obs::monitor::formatSampleValue(t.value)}},
            0);
        if (obs::FlightRecorder* fr = obs::FlightRecorder::global()) {
          fr->note(t.atNs, "alert " + t.rule + " -> " + t.to);
        }
      });

  cluster::ClusterScheduler::MonitorAttachment mon;
  mon.store = &store;
  mon.engine = &engine;
  mon.health = &health;
  mon.sampleInterval = interval;
  sched.attachMonitor(mon);

  // Live refresh: N dashboard frames to stderr while the campaign runs,
  // evenly spaced over the first 6 ms (the campaign's active span).
  if (refresh > 0) {
    const SimDuration span = millis(6);
    for (std::size_t f = 1; f <= refresh; ++f) {
      sim.scheduleAt(span * f / refresh, [&store, &engine, &health, &sim] {
        obs::monitor::DashboardInput frame;
        frame.store = &store;
        frame.engine = &engine;
        frame.health = &health;
        frame.title = "vfpga monitor (live)";
        frame.atNs = sim.now();
        const std::string text = obs::monitor::renderMonitorText(frame);
        std::fprintf(stderr, "%s\n", text.c_str());
      });
    }
  }

  sched.run();
  obs::FlightRecorder::installGlobal(prevRecorder);

  obs::monitor::DashboardInput in;
  in.store = &store;
  in.engine = &engine;
  in.health = &health;
  in.title = "vfpga monitor - degradation campaign, seed " +
             std::to_string(seed);
  in.atNs = store.lastTickNs();
  const std::string text = obs::monitor::renderMonitorText(in);
  const std::string json = obs::monitor::renderMonitorJson(in);
  const std::string html = obs::monitor::renderMonitorHtml(in);

  // Sidecar copies of all three renders into the obs output directory
  // (never the repo root); the CI determinism job compares them bytewise.
  const std::string stem =
      obs::outputDir() + "/monitor_ci_" + std::to_string(seed);
  struct SidecarFile {
    const char* ext;
    const std::string* payload;
  };
  const SidecarFile sidecars[3] = {
      {".txt", &text}, {".json", &json}, {".html", &html}};
  for (const SidecarFile& sc : sidecars) {
    const std::string path = stem + sc.ext;
    std::ofstream sf(path, std::ios::binary);
    sf.write(sc.payload->data(),
             static_cast<std::streamsize>(sc.payload->size()));
    if (sf) {
      std::fprintf(stderr, "monitor: sidecar %s\n", path.c_str());
    }
  }

  const std::string& payload =
      fmt == "json" ? json : fmt == "html" ? html : text;
  const int rc = emitPayload(a, payload);
  if (rc != 0) return rc;
  // Grade the exit by what is *still* firing: a campaign whose alerts all
  // resolved exits 0 even though incidents happened along the way.
  return engine.worstFiringGrade();
}

/// Deterministic partitioned workload with scripted permanent strip
/// failures: every allocator mutation (allocate / release / relocate /
/// quarantine) appends one row to the per-column occupancy matrix. The
/// whole stack is seeded and event-driven, so the CSV/JSON/HTML renders
/// are byte-identical for a given seed and device — the determinism ctest
/// runs the command twice and compares.
int heatmapCmd(const Args& a) {
  const std::string fmt = a.get("format", "csv");
  if (fmt != "csv" && fmt != "json" && fmt != "html") {
    std::fprintf(stderr, "heatmap: unknown --format '%s' (csv|json|html)\n",
                 fmt.c_str());
    return 2;
  }
  fault::FaultPlanSpec spec;
  spec.seed = std::stoull(a.get("seed", "7"));
  spec.stripFailures = {{millis(2), 2}, {millis(5), 9}};
  fault::FaultPlan plan(spec);

  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  opt.ft.plan = &plan;
  opt.ft.scrubInterval = micros(500);
  opt.ft.recovery = fault::RecoveryOptions{true, 4, micros(50)};
  opt.ft.watchdogFactor = 4.0;

  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);

  const Region strip = Region::columns(dev.geometry(), 0, 4);
  Simulation sim;
  OsKernel kernel(sim, dev, port, compiler, opt);
  obs::HeatmapCollector heatmap(
      static_cast<std::uint16_t>(dev.geometry().cols));
  kernel.attachHeatmap(&heatmap);
  const ConfigId cfgs[3] = {
      kernel.registerConfig(
          compiler.compile(named(lib::makeCounter(6), "count"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeChecksum(6), "csum"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeLfsr(8, 0b10111000), "lfsr"), strip)),
  };
  for (std::size_t i = 0; i < 6; ++i) {
    TaskSpec t;
    t.name = "hm" + std::to_string(i);
    t.arrival = static_cast<SimTime>(i) * micros(200);
    t.ops = {CpuBurst{micros(25)}, FpgaExec{cfgs[i % 3], 15000 + 4000 * i},
             CpuBurst{micros(15)}};
    kernel.addTask(std::move(t));
  }
  kernel.run();

  std::fprintf(stderr, "heatmap: %zu samples x %u columns\n",
               heatmap.samples().size(), heatmap.columns());
  const std::string payload =
      fmt == "csv"    ? heatmap.renderCsv()
      : fmt == "json" ? heatmap.renderJson()
                      : heatmap.renderHtml("vfpga occupancy - " + p.name);
  return emitPayload(a, payload);
}

/// Hierarchical profile of a seeded two-phase campaign. Phase 1 drives the
/// three report circuits on a probe-instrumented device for --cycles clock
/// cycles each, sampling per-LUT evaluations, net toggles and switchbox
/// traversals into the hot-cone report. Phase 2 reruns the heatmap
/// fault-recovery campaign under the partitioned kernel and folds its span
/// tree into the task waterfall, the per-task resource ledger, and (for
/// --format collapsed|speedscope) a flamegraph. Everything downstream of
/// the seed is event-driven, so all four formats are byte-identical per
/// seed — the determinism ctest runs the command twice and compares.
/// Exit 0 iff the profile is complete: every task produced spans and (when
/// the activity section is selected) the probe saw fabric activity.
int profileCmd(const Args& a) {
  const std::string fmt = a.get("format", "text");
  const bool flame = fmt == "collapsed" || fmt == "speedscope";
  if (fmt != "text" && fmt != "json" && !flame) {
    std::fprintf(stderr,
                 "profile: unknown --format '%s'"
                 " (text|json|collapsed|speedscope)\n",
                 fmt.c_str());
    return 2;
  }
  // Section selectors; none selected = the full profile. The flamegraph
  // formats render the span tree itself and ignore the selectors.
  const bool selActivity = a.has("activity");
  const bool selWaterfall = a.has("waterfall");
  const bool selLedger = a.has("ledger");
  const bool allSections = !selActivity && !selWaterfall && !selLedger;
  const std::size_t topk = std::stoul(a.get("top", "10"));

  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  const Region strip = Region::columns(p.geometry, 0, 4);

  // Phase 1: fabric activity under real evaluation, on a dedicated device
  // so the campaign below starts from a blank fabric.
  obs::profile::ActivityAggregator activity;
  if (!flame && (allSections || selActivity)) {
    Device dev = p.makeDevice();
    Compiler compiler(dev);
    ActivityProbe probe;
    dev.attachActivityProbe(&probe);
    const int cycles = std::stoi(a.get("cycles", "256"));
    Rng rng(std::stoull(a.get("seed", "7")));
    const CompiledCircuit circuits[3] = {
        compiler.compile(named(lib::makeCounter(6), "count"), strip),
        compiler.compile(named(lib::makeChecksum(6), "csum"), strip),
        compiler.compile(named(lib::makeLfsr(8, 0b10111000), "lfsr"), strip)};
    for (const CompiledCircuit& c : circuits) {
      dev.applyBitstream(c.fullBitstream());
      LoadedCircuit lc(dev, c);
      lc.applyInitialState();
      for (int cycle = 0; cycle < cycles; ++cycle) {
        for (const PortBinding& pb : c.ports) {
          if (pb.isInput) lc.setInput(pb.name, rng.bernoulli(0.5));
        }
        dev.evaluate();
        dev.tick();
      }
    }
    collectActivity(probe, activity);
  }

  // Phase 2: the heatmap campaign — scripted strip failures, scrubbing,
  // quarantine recovery — whose span tree feeds the waterfall/ledger.
  fault::FaultPlanSpec spec;
  spec.seed = std::stoull(a.get("seed", "7"));
  spec.stripFailures = {{millis(2), 2}, {millis(5), 9}};
  fault::FaultPlan plan(spec);

  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  opt.ft.plan = &plan;
  opt.ft.scrubInterval = micros(500);
  opt.ft.recovery = fault::RecoveryOptions{true, 4, micros(50)};
  opt.ft.watchdogFactor = 4.0;

  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);
  Simulation sim;
  OsKernel kernel(sim, dev, port, compiler, opt);
  const ConfigId cfgs[3] = {
      kernel.registerConfig(
          compiler.compile(named(lib::makeCounter(6), "count"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeChecksum(6), "csum"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeLfsr(8, 0b10111000), "lfsr"), strip)),
  };
  for (std::size_t i = 0; i < 6; ++i) {
    TaskSpec t;
    t.name = "pf" + std::to_string(i);
    t.arrival = static_cast<SimTime>(i) * micros(200);
    t.ops = {CpuBurst{micros(25)}, FpgaExec{cfgs[i % 3], 15000 + 4000 * i},
             CpuBurst{micros(15)}};
    kernel.addTask(std::move(t));
  }
  kernel.run();

  const std::vector<std::string> names = taskTrackNames(kernel);
  const obs::profile::WaterfallReport wf =
      obs::profile::buildWaterfall(kernel.spanTracer(), names);
  obs::profile::ResourceLedger ledger = buildLedger(kernel);
  ledger.publish(kernel.metricsRegistry());

  const bool complete =
      wf.complete &&
      (flame || !(allSections || selActivity) || activity.totalEvals() > 0);
  std::fprintf(stderr,
               "profile: %zu sites, %llu evals, %zu tasks, makespan %llu ns,"
               " critical %s, %s\n",
               activity.siteCount(),
               static_cast<unsigned long long>(activity.totalEvals()),
               wf.tasks.size(),
               static_cast<unsigned long long>(wf.makespanNs),
               wf.total.criticalPhase(), complete ? "complete" : "INCOMPLETE");

  std::string payload;
  if (flame) {
    obs::profile::FlamegraphInput input;
    input.tracer = &kernel.spanTracer();
    input.processName = "os/partitioned_variable";
    input.trackNames = names;
    payload = fmt == "collapsed"
                  ? renderCollapsedStacks(input)
                  : renderSpeedscope(input, "vfpga profile - " + p.name);
  } else if (fmt == "json") {
    std::ostringstream os;
    os << "{";
    bool first = true;
    auto section = [&os, &first](const char* key, const std::string& body) {
      os << (first ? "" : ",") << "\n\"" << key << "\":" << body;
      first = false;
    };
    if (allSections || selActivity) {
      section("activity", activity.renderJson(topk));
    }
    if (allSections || selWaterfall) section("waterfall", renderJson(wf));
    if (allSections || selLedger) section("ledger", ledger.renderJson());
    os << "}\n";
    payload = os.str();
  } else {
    std::ostringstream os;
    if (allSections || selActivity) {
      os << activity.renderText(topk) << "\n";
    }
    if (allSections || selWaterfall) os << renderText(wf) << "\n";
    if (allSections || selLedger) os << ledger.renderText();
    payload = os.str();
  }
  const int rc = emitPayload(a, payload);
  if (rc != 0) return rc;
  return complete ? 0 : 1;
}

/// Compares BENCH_*.json sidecars in --dir against the committed baseline
/// file. Only metrics named in the baseline participate (new metrics never
/// fail the build); a metric missing from the sidecars, or drifting beyond
/// the tolerance band, does. The sim-derived bench numbers are
/// deterministic and machine-independent, so the band only absorbs
/// intentional model changes.
int benchTrendCmd(const Args& a) {
  const std::string dir = a.get("dir", obs::outputDir());
  const std::string baselinePath = a.get("baseline", "bench/baselines.json");

  std::ifstream bin(baselinePath);
  if (!bin) {
    std::fprintf(stderr, "error: cannot open baseline %s\n",
                 baselinePath.c_str());
    return 3;
  }
  std::stringstream bbuf;
  bbuf << bin.rdbuf();
  obs::JsonValue baseline;
  try {
    baseline = obs::JsonValue::parse(bbuf.str());
  } catch (const obs::JsonError& e) {
    std::fprintf(stderr, "error: %s: %s\n", baselinePath.c_str(), e.what());
    return 3;
  }
  double tol = baseline.has("tolerance") ? baseline.at("tolerance").asNumber()
                                         : 0.2;
  if (a.has("tolerance")) tol = std::stod(a.get("tolerance"));

  // Current values, flattened to "<sidecar-stem>/<metric>{labels}" keys
  // (gauges and counters; multi-field stats/histograms are skipped).
  std::map<std::string, double> current;
  std::size_t sidecars = 0;
  try {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      const std::string fname = entry.path().filename().string();
      if (fname.rfind("BENCH_", 0) != 0 ||
          entry.path().extension() != ".json") {
        continue;
      }
      std::ifstream in(entry.path());
      std::stringstream buf;
      buf << in.rdbuf();
      obs::JsonValue doc;
      try {
        doc = obs::JsonValue::parse(buf.str());
      } catch (const obs::JsonError& e) {
        std::fprintf(stderr, "error: %s: %s\n",
                     entry.path().string().c_str(), e.what());
        return 3;
      }
      ++sidecars;
      const std::string stem = entry.path().stem().string();
      for (const obs::JsonValue& m : doc.asArray()) {
        if (!m.has("value")) continue;
        std::string key = stem + "/" + m.at("name").asString() + "{";
        bool first = true;
        for (const auto& [lk, lv] : m.at("labels").asObject()) {
          if (!first) key += ",";
          first = false;
          key += lk + "=" + lv.asString();
        }
        key += "}";
        current[key] = m.at("value").asNumber();
      }
    }
  } catch (const std::filesystem::filesystem_error& e) {
    std::fprintf(stderr, "error: cannot scan %s: %s\n", dir.c_str(),
                 e.what());
    return 3;
  }

  const obs::JsonValue::Object& metrics = baseline.at("metrics").asObject();
  std::size_t compared = 0;
  std::size_t missing = 0;
  std::size_t regressions = 0;
  std::ostringstream trend;
  trend << std::setprecision(15);
  trend << "{\n\"tolerance\":" << tol << ",\n\"rows\":[";
  bool first = true;
  for (const auto& [key, bv] : metrics) {
    const double base = bv.asNumber();
    const auto it = current.find(key);
    double cur = 0.0;
    double delta = 0.0;
    const char* status = "missing";
    if (it == current.end()) {
      ++missing;
      std::fprintf(stderr, "bench-trend: MISSING %s (no sidecar value)\n",
                   key.c_str());
    } else {
      cur = it->second;
      ++compared;
      delta = (cur - base) / std::max(std::fabs(base), 1e-12);
      if (std::fabs(delta) <= tol) {
        status = "ok";
      } else {
        status = "regression";
        ++regressions;
        std::fprintf(stderr,
                     "bench-trend: REGRESSION %s: baseline %.6g current"
                     " %.6g (%+.1f%%)\n",
                     key.c_str(), base, cur, 100.0 * delta);
      }
    }
    trend << (first ? "" : ",") << "\n{\"metric\":\"" << obs::jsonEscape(key)
          << "\",\"baseline\":" << base << ",\"current\":" << cur
          << ",\"delta\":" << delta << ",\"status\":\"" << status << "\"}";
    first = false;
  }
  trend << "\n],\n\"sidecars\":" << sidecars << ",\"compared\":" << compared
        << ",\"new\":" << (current.size() - compared)
        << ",\"missing\":" << missing << ",\"regressions\":" << regressions
        << "\n}\n";
  std::fprintf(stderr,
               "bench-trend: %zu sidecars, %zu compared, %zu missing,"
               " %zu regressions (tolerance +/-%.0f%%)\n",
               sidecars, compared, missing, regressions, 100.0 * tol);
  const int rc = emitPayload(a, trend.str());
  if (rc != 0) return rc;
  return regressions == 0 && missing == 0 ? 0 : 1;
}

// ---- compiled: compiled fast path differential campaign --------------------

/// Deterministic compiled-fast-path campaign: the differential oracle over
/// the full circuit library (interpretive reference vs compiled scalar
/// engine vs 64-wide batch), the mandatory-invalidation stages (download,
/// relocate, scrub repair, blank + resume) with a CP lint check on the
/// long-lived engine, and a seeded LUT-bit corruption corpus where the two
/// paths must agree on whatever the corrupted image computes. Output is
/// byte-identical per (device, seed, cycles) — CI runs it twice and cmp's.
/// Exit 0 iff every stage passes.
int compiledCmd(const Args& a) {
  DeviceProfile p = profileByName(a.get("device", "medium_partial"));
  const std::uint64_t seed = std::stoull(a.get("seed", "1"));
  const std::uint32_t cycles =
      static_cast<std::uint32_t>(std::stoull(a.get("cycles", "96")));
  auto ull = [](std::uint64_t v) { return static_cast<unsigned long long>(v); };

  char buf[512];
  std::string out;
  auto line = [&](const char* fmt2, auto... args2) {
    std::snprintf(buf, sizeof buf, fmt2, args2...);
    out += buf;
  };
  bool fail = false;
  compiled::CompiledKernelCache cache(32);

  line("vfpga compiled fast path campaign\n");
  line("=================================\n");
  line("device: %s\nseed: %llu\ncycles per stage: %u\n\n",
       a.get("device", "medium_partial").c_str(), ull(seed), cycles);

  line("differential oracle: interpretive reference vs compiled scalar vs"
       " batch64\n");
  line("%-14s %5s %5s %5s %6s %6s %6s %16s  %s\n", "circuit", "cols", "cells",
       "ops", "levels", "served", "diverg", "ref-digest", "extract");
  for (const AppCircuit& app : workloads::allSuites()) {
    Device dev = p.makeDevice();
    Compiler compiler(dev);
    const CompiledCircuit c =
        workloads::compileMinimal(compiler, app.netlist, seed);
    dev.applyBitstream(c.fullBitstream());
    compiled::OracleOptions opt;
    opt.cycles = cycles;
    opt.seed = seed;
    const compiled::OracleReport rep =
        compiled::runDifferentialOracle(dev, c, opt, &cache);
    fail = fail || !rep.ok() || !rep.servedCompiled;
    line("%-14s %5u %5llu %5llu %6llu %6s %6llu %016llx  %s\n",
         app.name.c_str(), static_cast<unsigned>(c.region.w),
         ull(rep.extractedCells), ull(rep.programOps), ull(rep.programLevels),
         rep.servedCompiled ? "yes" : "NO", ull(rep.divergences),
         ull(rep.referenceDigest), rep.extractionOk ? "ok" : "FAIL");
    for (const std::string& prob : rep.problems) {
      line("    ! %s\n", prob.c_str());
    }
  }

  line("\nreconfiguration invalidation stages (ct_counter, long-lived"
       " engine)\n");
  {
    Device dev = p.makeDevice();
    Compiler compiler(dev);
    ConfigPort port(dev, p.port);
    const AppCircuit app = workloads::appCircuitByName("ct_counter");
    const CompiledCircuit c =
        workloads::compileMinimal(compiler, app.netlist, seed);
    compiled::CompiledFabric engine(dev, &cache);
    auto stage = [&](const char* name, const CompiledCircuit& cur) {
      compiled::OracleOptions opt;
      opt.cycles = cycles;
      opt.seed = seed;
      const compiled::OracleReport rep =
          compiled::runDifferentialOracle(dev, cur, opt, &cache);
      fail = fail || !rep.ok() || !rep.servedCompiled;
      dev.evaluate();  // the long-lived engine re-resolves here
      const compiled::CompiledFabricStats& st = engine.stats();
      line("  %-14s ok=%-3s builds=%llu hits=%llu invalidations=%llu"
           " fallbacks=%llu\n",
           name, rep.ok() && rep.servedCompiled ? "yes" : "NO",
           ull(st.builds), ull(st.hits), ull(st.invalidations),
           ull(st.fallbacks));
      for (const std::string& prob : rep.problems) {
        line("    ! %s\n", prob.c_str());
      }
    };
    dev.applyBitstream(c.fullBitstream());
    port.resyncExpected();
    stage("download", c);

    const std::uint16_t newX0 =
        static_cast<std::uint16_t>(dev.geometry().cols - c.region.w);
    const CompiledCircuit moved = compiler.relocate(c, newX0);
    dev.clearConfig();
    dev.applyBitstream(moved.fullBitstream());
    port.resyncExpected();
    stage("relocate", moved);

    // An upset lands on a live LUT; the scrubber repairs it via the port.
    const Elaboration::Cell& cell = dev.elaboration().cells.front();
    const std::uint32_t upsetBit =
        dev.configMap().clbLutBit(cell.x, cell.y, 0);
    dev.setConfigBit(upsetBit, !dev.image().get(upsetBit));
    const ScrubResult sr = port.scrub();
    fail = fail || sr.repairedFrames == 0;
    line("  scrub repaired %u frame(s)\n", sr.repairedFrames);
    stage("scrub-repair", moved);

    // Quarantine blanking, then migration-style resume of the same image.
    dev.clearConfig();
    dev.applyBitstream(moved.fullBitstream());
    port.resyncExpected();
    stage("resume", moved);

    analysis::CompiledPathProfile prof;
    prof.kernelAttached = dev.fastPath() != nullptr;
    prof.programReady = engine.program() != nullptr;
    prof.programGeneration = engine.programGeneration();
    prof.deviceGeneration = dev.configGeneration();
    prof.probeAttached = dev.activityProbe() != nullptr;
    prof.inhibited = dev.fastPathInhibited();
    prof.programFaulted = engine.lastBuildFaulted();
    prof.lastServedCompiled = engine.lastServedCompiled();
    prof.cacheCapacity = cache.capacity();
    analysis::Report lint;
    analysis::lintCompiledPath(prof, lint);
    fail = fail || !lint.ok();
    line("  lint: %s\n",
         lint.clean() ? "clean (CP001-CP004)" : lint.renderText().c_str());
  }

  line("\nseeded corruption corpus (LUT-bit flips; paths must agree on the"
       " corrupted function)\n");
  line("%-14s %8s %10s %6s %6s\n", "circuit", "bit", "elaborates", "served",
       "diverg");
  for (const char* name : {"ct_counter", "tc_crc8", "ct_gray"}) {
    const AppCircuit app = workloads::appCircuitByName(name);
    Device dev = p.makeDevice();
    Compiler compiler(dev);
    const CompiledCircuit c =
        workloads::compileMinimal(compiler, app.netlist, seed);
    dev.applyBitstream(c.fullBitstream());
    std::vector<std::uint32_t> bits;
    const std::uint32_t lutBits =
        static_cast<std::uint32_t>(dev.geometry().lutBits());
    for (const Elaboration::Cell& cell : dev.elaboration().cells) {
      for (std::uint32_t j = 0; j < lutBits; ++j) {
        bits.push_back(dev.configMap().clbLutBit(cell.x, cell.y, j));
      }
    }
    Rng rng(seed ^ 0x9e3779b97f4a7c15ull ^ bits.size());
    for (int trial = 0; trial < 4; ++trial) {
      const std::uint32_t bit = bits[rng.next() % bits.size()];
      dev.setConfigBit(bit, !dev.image().get(bit));
      compiled::OracleOptions opt;
      opt.cycles = cycles;
      opt.seed = seed;
      opt.checkExtraction = false;
      const compiled::OracleReport rep =
          compiled::runDifferentialOracle(dev, c, opt, &cache);
      fail = fail || rep.divergences != 0 || !rep.problems.empty();
      line("%-14s %8u %10s %6s %6llu\n", name, bit,
           dev.configOk() ? "yes" : "no", rep.servedCompiled ? "yes" : "no",
           ull(rep.divergences));
      for (const std::string& prob : rep.problems) {
        line("    ! %s\n", prob.c_str());
      }
      dev.setConfigBit(bit, !dev.image().get(bit));
    }
  }

  const compiled::KernelCacheStats& cs = cache.stats();
  line("\nkernel cache: lookups=%llu hits=%llu misses=%llu insertions=%llu"
       " evictions=%llu capacity=%llu\n",
       ull(cs.lookups), ull(cs.hits), ull(cs.misses), ull(cs.insertions),
       ull(cs.evictions), ull(cache.capacity()));
  line("\nRESULT: %s\n", fail ? "FAIL" : "PASS");

  const int rc = emitPayload(a, out);
  if (rc != 0) return rc;
  return fail ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = parse(argc, argv);
  if (!args) return usage();
  try {
    if (args->command == "list-circuits") return listCircuits();
    if (args->command == "list-devices") return listDevices();
    if (args->command == "info") return deviceInfo(*args);
    if (args->command == "compile") return compileCmd(*args);
    if (args->command == "simulate") return simulateCmd(*args);
    if (args->command == "lint") return lintCmd(*args);
    if (args->command == "equiv") return equivCmd(*args);
    if (args->command == "trace") return traceCmd(*args);
    if (args->command == "report") return reportCmd(*args);
    if (args->command == "heatmap") return heatmapCmd(*args);
    if (args->command == "profile") return profileCmd(*args);
    if (args->command == "faults") return faultsCmd(*args);
    if (args->command == "chaos") return chaosCmd(*args);
    if (args->command == "cluster") return clusterCmd(*args);
    if (args->command == "monitor") return monitorCmd(*args);
    if (args->command == "bench-trend") return benchTrendCmd(*args);
    if (args->command == "compiled") return compiledCmd(*args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
