// Device-backed VFPGA managers: dynamic loader (functional context switch
// with state save/restore), partition manager (concurrent circuits, GC with
// live-state relocation), overlay manager, segment manager.
#include <gtest/gtest.h>

#include "core/dynamic_loader.hpp"
#include "core/overlay_manager.hpp"
#include "core/partition_manager.hpp"
#include "core/segment_manager.hpp"
#include "fabric/device_family.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "workloads/compile_suite.hpp"

namespace vfpga {
namespace {

/// Shared fixture: a medium partial-reconfig device with a compiler and a
/// few registered circuits.
class ManagerTest : public ::testing::Test {
 protected:
  ManagerTest()
      : profile_(mediumPartialProfile()), dev_(profile_.makeDevice()),
        port_(dev_, profile_.port), compiler_(dev_) {}

  ConfigId registerCounter(std::size_t bits, std::uint16_t width) {
    Netlist nl = lib::makeCounter(bits);
    nl.setName("ctr" + std::to_string(bits) + "w" + std::to_string(width));
    CompileOptions opt;
    opt.seed = 7;
    return registry_.add(
        compiler_.compile(nl, Region::columns(dev_.geometry(), 0, width), opt));
  }

  ConfigId registerChecksum(std::size_t bits, std::uint16_t width) {
    Netlist nl = lib::makeChecksum(bits);
    nl.setName("ck" + std::to_string(bits) + "w" + std::to_string(width));
    CompileOptions opt;
    opt.seed = 9;
    return registry_.add(
        compiler_.compile(nl, Region::columns(dev_.geometry(), 0, width), opt));
  }

  DeviceProfile profile_;
  Device dev_;
  ConfigPort port_;
  Compiler compiler_;
  ConfigRegistry registry_;
};

// ---------------------------------------------------------- DynamicLoader

TEST_F(ManagerTest, DynamicLoaderFirstActivationDownloadsAndInits) {
  DynamicLoader dl(dev_, port_, registry_);
  ConfigId a = registerCounter(6, 5);
  auto cost = dl.activate(a);
  EXPECT_TRUE(cost.downloaded);
  EXPECT_GT(cost.downloadTime, 0u);
  EXPECT_EQ(cost.saveTime, 0u);  // nothing was resident
  EXPECT_EQ(dl.current(), a);
  EXPECT_TRUE(dev_.configOk());
  // Re-activation of the resident config is free (§3: "the most recently
  // configuration used by the task is adopted").
  auto again = dl.activate(a);
  EXPECT_EQ(again.total, 0u);
  EXPECT_FALSE(again.downloaded);
}

TEST_F(ManagerTest, DynamicLoaderPreservesStateAcrossSwitches) {
  DynamicLoader dl(dev_, port_, registry_);
  ConfigId a = registerCounter(6, 5);
  ConfigId b = registerChecksum(6, 5);
  dl.activate(a);
  {
    LoadedCircuit lc = dl.loaded();
    lc.setInput("en", true);
    lc.setInput("clr", false);
    for (int i = 0; i < 37; ++i) {
      lc.evaluate();
      lc.tick();
    }
  }
  auto toB = dl.activate(b);  // saves A's registers
  EXPECT_GT(toB.saveTime, 0u);
  EXPECT_TRUE(dl.hasSavedState(a));
  auto backToA = dl.activate(a);
  EXPECT_TRUE(backToA.restoredSavedState);
  LoadedCircuit lc = dl.loaded();
  lc.setInput("en", true);
  lc.setInput("clr", false);
  lc.evaluate();
  EXPECT_EQ(lc.outputBus("q", 6), 37u);
}

TEST_F(ManagerTest, DynamicLoaderRollbackDiscardsState) {
  DynamicLoader dl(dev_, port_, registry_);
  ConfigId a = registerCounter(6, 5);
  ConfigId b = registerChecksum(6, 5);
  dl.activate(a);
  {
    LoadedCircuit lc = dl.loaded();
    lc.setInput("en", true);
    lc.setInput("clr", false);
    for (int i = 0; i < 5; ++i) {
      lc.evaluate();
      lc.tick();
    }
  }
  dl.activate(b, /*saveOutgoing=*/false);  // roll-back regime
  EXPECT_FALSE(dl.hasSavedState(a));
  dl.activate(a);
  LoadedCircuit lc = dl.loaded();
  lc.evaluate();
  EXPECT_EQ(lc.outputBus("q", 6), 0u);  // restarted from initial state
}

TEST_F(ManagerTest, DynamicLoaderPartialPortBeatsSerialOnSwitch) {
  // Same two circuits; switch cost on a partial port must be well below a
  // serial-full port (the feasibility argument of §2).
  ConfigId a = registerCounter(6, 5);
  ConfigId b = registerChecksum(6, 5);

  DynamicLoader dlPartial(dev_, port_, registry_);
  dlPartial.activate(a);
  const SimDuration partialSwitch = dlPartial.activate(b).downloadTime;

  DeviceProfile serialProfile = mediumSerialProfile();
  Device dev2 = serialProfile.makeDevice();
  ConfigPort port2(dev2, serialProfile.port);
  DynamicLoader dlSerial(dev2, port2, registry_);
  dlSerial.activate(a);
  const SimDuration serialSwitch = dlSerial.activate(b).downloadTime;

  EXPECT_LT(partialSwitch, serialSwitch / 2);
}

// -------------------------------------------------------- PartitionManager

TEST_F(ManagerTest, PartitionsHostConcurrentFunctionalCircuits) {
  PartitionManager pm(dev_, port_, registry_, compiler_, {});
  ConfigId a = registerCounter(6, 4);
  ConfigId b = registerChecksum(6, 4);
  auto la = pm.load(a);
  auto lb = pm.load(b);
  ASSERT_TRUE(la && lb);
  EXPECT_NE(pm.circuitIn(la->partition).region.x0,
            pm.circuitIn(lb->partition).region.x0);
  ASSERT_TRUE(dev_.configOk()) << dev_.elaboration().faults.front();

  // Both circuits compute concurrently and independently.
  LoadedCircuit ca = pm.loaded(la->partition);
  LoadedCircuit cb = pm.loaded(lb->partition);
  ca.setInput("en", true);
  ca.setInput("clr", false);
  std::uint64_t model = 0;
  for (int i = 0; i < 10; ++i) {
    cb.setInputBus("d", 6, static_cast<std::uint64_t>(i));
    dev_.evaluate();
    dev_.tick();
    model = (model + static_cast<std::uint64_t>(i)) & 0x3F;
  }
  dev_.evaluate();
  EXPECT_EQ(ca.outputBus("q", 6), 10u);
  EXPECT_EQ(cb.outputBus("acc", 6), model);
}

TEST_F(ManagerTest, PartitionExhaustionThenRelease) {
  PartitionManager pm(dev_, port_, registry_, compiler_, {});
  ConfigId a = registerCounter(6, 5);
  ConfigId b = registerChecksum(6, 5);
  auto la = pm.load(a);
  auto lb = pm.load(b);
  ASSERT_TRUE(la && lb);
  ConfigId c = registerCounter(4, 5);
  EXPECT_FALSE(pm.load(c).has_value());  // 12 - 10 = 2 columns left
  pm.unload(la->partition);
  EXPECT_TRUE(pm.load(c).has_value());
}

TEST_F(ManagerTest, GarbageCollectionRelocatesLiveState) {
  PartitionManager pm(dev_, port_, registry_, compiler_, {});
  ConfigId a = registerCounter(6, 4);  // [0,4)
  Netlist nlb = lib::makeCounter(6);
  nlb.setName("ctr6_second");
  ConfigId b2 = registry_.add(
      compiler_.compile(nlb, Region::columns(dev_.geometry(), 0, 4)));
  ConfigId wide = [&] {
    Netlist nl = lib::makeChecksum(6);
    nl.setName("ck_wide");
    return registry_.add(
        compiler_.compile(nl, Region::columns(dev_.geometry(), 0, 6)));
  }();

  auto la = pm.load(a);    // [0,4)
  auto lb = pm.load(b2);   // [4,8)
  ASSERT_TRUE(la && lb);
  // Run the middle circuit to accumulate state, then free the first strip.
  {
    LoadedCircuit lc = pm.loaded(lb->partition);
    lc.setInput("en", true);
    lc.setInput("clr", false);
    for (int i = 0; i < 29; ++i) {
      dev_.evaluate();
      dev_.tick();
    }
  }
  pm.unload(la->partition);
  // Free: [0,4) and [8,12) — 8 columns total but max hole 4. The 6-wide
  // circuit needs GC.
  auto lw = pm.load(wide);
  ASSERT_TRUE(lw.has_value());
  EXPECT_TRUE(lw->garbageCollected);
  EXPECT_GT(lw->gcCost, 0u);
  EXPECT_EQ(pm.garbageCollections(), 1u);
  EXPECT_GE(pm.relocations(), 1u);
  ASSERT_TRUE(dev_.configOk()) << dev_.elaboration().faults.front();

  // The moved counter kept its value and keeps counting.
  LoadedCircuit moved = pm.loaded(lb->partition);
  moved.setInput("en", true);
  moved.setInput("clr", false);
  dev_.evaluate();
  EXPECT_EQ(moved.outputBus("q", 6), 29u);
  dev_.tick();
  dev_.evaluate();
  EXPECT_EQ(moved.outputBus("q", 6), 30u);
}

TEST_F(ManagerTest, GcDisabledLeavesFragmentation) {
  PartitionManagerOptions opt;
  opt.garbageCollect = false;
  PartitionManager pm(dev_, port_, registry_, compiler_, opt);
  ConfigId a = registerCounter(6, 4);
  Netlist nlb = lib::makeCounter(6);
  nlb.setName("ctr6_b");
  ConfigId b = registry_.add(
      compiler_.compile(nlb, Region::columns(dev_.geometry(), 0, 4)));
  Netlist nlw = lib::makeChecksum(6);
  nlw.setName("ck_wide6");
  ConfigId wide = registry_.add(
      compiler_.compile(nlw, Region::columns(dev_.geometry(), 0, 6)));
  auto la = pm.load(a);
  auto lb = pm.load(b);
  pm.unload(la->partition);
  (void)lb;
  EXPECT_FALSE(pm.load(wide).has_value());  // starves without GC (§4)
  EXPECT_EQ(pm.garbageCollections(), 0u);
}

TEST_F(ManagerTest, FixedPartitionsBlankLeftoverColumns) {
  PartitionManagerOptions opt;
  opt.fixedWidths = {6, 6};
  PartitionManager pm(dev_, port_, registry_, compiler_, opt);
  ConfigId big = registerCounter(6, 5);
  auto l1 = pm.load(big);  // occupies a 6-wide fixed partition with w=5
  ASSERT_TRUE(l1);
  pm.unload(l1->partition);
  // A narrower circuit in the same partition: leftover columns of the
  // previous occupant must have been blanked, so the device still decodes.
  ConfigId small = registerChecksum(4, 3);
  auto l2 = pm.load(small);
  ASSERT_TRUE(l2);
  EXPECT_TRUE(dev_.configOk()) << dev_.elaboration().faults.front();
}

TEST_F(ManagerTest, NonRelocatableCircuitRejected) {
  PartitionManager pm(dev_, port_, registry_, compiler_, {});
  Netlist nl = lib::makeChecksum(4);
  nl.setName("pinned");
  CompileOptions opt;
  opt.relocatable = false;
  ConfigId id = registry_.add(
      compiler_.compile(nl, Region::columns(dev_.geometry(), 0, 4), opt));
  EXPECT_FALSE(pm.feasible(id));
  EXPECT_THROW(pm.load(id), std::logic_error);
}

// ---------------------------------------------------------- OverlayManager

TEST_F(ManagerTest, OverlayInvocationsHitAndMiss) {
  OverlayManager om(dev_, port_, compiler_, /*residentWidth=*/4);
  EXPECT_EQ(om.overlayWidth(), 8);
  Netlist common = lib::makeChecksum(6);
  common.setName("ov_common");
  om.installResident(
      compiler_.compile(common, Region::columns(dev_.geometry(), 0, 4)));

  Netlist f1 = lib::makeCounter(6);
  f1.setName("ov_f1");
  Netlist f2 = lib::makeLfsr(8, 0b10111000);
  f2.setName("ov_f2");
  OverlayId o1 = om.addOverlay(
      compiler_.compile(f1, Region::columns(dev_.geometry(), 0, 4)));
  OverlayId o2 = om.addOverlay(
      compiler_.compile(f2, Region::columns(dev_.geometry(), 0, 4)));

  auto r1 = om.invoke(o1);
  EXPECT_TRUE(r1.loaded);
  EXPECT_GT(r1.cost, 0u);
  EXPECT_TRUE(dev_.configOk()) << dev_.elaboration().faults.front();
  auto r1again = om.invoke(o1);
  EXPECT_FALSE(r1again.loaded);
  EXPECT_EQ(r1again.cost, 0u);
  auto r2 = om.invoke(o2);
  EXPECT_TRUE(r2.loaded);
  EXPECT_TRUE(dev_.configOk());
  EXPECT_EQ(om.invocations(), 3u);
  EXPECT_EQ(om.overlayLoads(), 2u);
  EXPECT_NEAR(om.hitRate(), 1.0 / 3.0, 1e-12);
}

TEST_F(ManagerTest, OverlaySwapPreservesResidentCircuitState) {
  OverlayManager om(dev_, port_, compiler_, 4);
  Netlist common = lib::makeCounter(6);
  common.setName("ov_ctr");
  om.installResident(
      compiler_.compile(common, Region::columns(dev_.geometry(), 0, 4)));
  Netlist f1 = lib::makeChecksum(6);
  f1.setName("ov_ck");
  Netlist f2 = lib::makeLfsr(8, 0b10111000);
  f2.setName("ov_lfsr");
  OverlayId o1 = om.addOverlay(
      compiler_.compile(f1, Region::columns(dev_.geometry(), 0, 4)));
  OverlayId o2 = om.addOverlay(
      compiler_.compile(f2, Region::columns(dev_.geometry(), 0, 4)));
  om.invoke(o1);

  LoadedCircuit ctr = om.resident();
  ctr.setInput("en", true);
  ctr.setInput("clr", false);
  for (int i = 0; i < 11; ++i) {
    dev_.evaluate();
    dev_.tick();
  }
  // Swapping the overlay must not disturb the resident strip's registers
  // (partial reconfiguration of disjoint frames).
  om.invoke(o2);
  ASSERT_TRUE(dev_.configOk());
  dev_.evaluate();
  EXPECT_EQ(ctr.outputBus("q", 6), 11u);
}

TEST_F(ManagerTest, OverlayRejectsOversizedCircuits) {
  OverlayManager om(dev_, port_, compiler_, 8);  // overlay area = 4
  Netlist big = lib::makeCounter(6);
  big.setName("ov_big");
  CompiledCircuit c =
      compiler_.compile(big, Region::columns(dev_.geometry(), 0, 5));
  EXPECT_THROW(om.addOverlay(c), std::invalid_argument);
  EXPECT_THROW(OverlayManager(dev_, port_, compiler_, 12),
               std::invalid_argument);
}

// ---------------------------------------------------------- SegmentManager

TEST_F(ManagerTest, SegmentFaultsLoadsAndEvicts) {
  SegmentManager sm(dev_, port_, compiler_, ReplacementPolicy::kLru);
  // Three 5-wide segments on a 12-column device: at most two resident.
  std::vector<SegmentId> segs;
  for (int i = 0; i < 3; ++i) {
    Netlist nl = lib::makeChecksum(4);
    nl.setName("seg" + std::to_string(i));
    segs.push_back(sm.addSegment(
        compiler_.compile(nl, Region::columns(dev_.geometry(), 0, 5))));
  }
  auto r0 = sm.access(segs[0]);
  EXPECT_TRUE(r0.fault);
  auto r0b = sm.access(segs[0]);
  EXPECT_FALSE(r0b.fault);
  sm.access(segs[1]);
  EXPECT_EQ(sm.residentCount(), 2u);
  auto r2 = sm.access(segs[2]);  // must evict one (LRU -> segs[0]? no: 0 was
                                 // reused after 1 loaded... order: 0,0,1,2)
  EXPECT_TRUE(r2.fault);
  EXPECT_GE(r2.evicted, 1u);
  EXPECT_TRUE(dev_.configOk()) << dev_.elaboration().faults.front();
  EXPECT_EQ(sm.faults(), 3u);
  EXPECT_EQ(sm.accesses(), 4u);
}

TEST_F(ManagerTest, SegmentLruKeepsHotSegmentResident) {
  SegmentManager sm(dev_, port_, compiler_, ReplacementPolicy::kLru);
  std::vector<SegmentId> segs;
  for (int i = 0; i < 3; ++i) {
    Netlist nl = lib::makeChecksum(4);
    nl.setName("lruseg" + std::to_string(i));
    segs.push_back(sm.addSegment(
        compiler_.compile(nl, Region::columns(dev_.geometry(), 0, 5))));
  }
  // Hot = segs[0]; alternate cold 1 / 2 between hot touches.
  sm.access(segs[0]);
  std::uint64_t hotFaults = 0;
  for (int i = 0; i < 6; ++i) {
    sm.access(segs[1 + (i % 2)]);
    const auto before = sm.faults();
    sm.access(segs[0]);
    hotFaults += sm.faults() - before;
  }
  EXPECT_EQ(hotFaults, 0u);  // LRU never evicts the hot segment
}

}  // namespace
}  // namespace vfpga
