// Hierarchical profiler: fabric activity aggregation (checked against an
// independent software model of the counter circuit), the task-waterfall
// builder, the per-task resource ledger and the flamegraph renders — plus
// the obs_bridge glue that feeds them from a real kernel run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "core/obs_bridge.hpp"
#include "core/os_kernel.hpp"
#include "fabric/activity_probe.hpp"
#include "fabric/device_family.hpp"
#include "netlist/library/control.hpp"
#include "obs/json.hpp"
#include "obs/profile/activity.hpp"
#include "obs/profile/flamegraph.hpp"
#include "obs/profile/ledger.hpp"
#include "obs/profile/waterfall.hpp"

namespace vfpga {
namespace {

using obs::profile::ActivityAggregator;
using obs::profile::ConeStat;
using obs::profile::SiteSample;

TEST(ActivityAggregator, FoldsByCoordinateAndRanksDeterministically) {
  ActivityAggregator agg;
  agg.add(SiteSample{2, 3, 10, 5, 1});
  agg.add(SiteSample{2, 3, 10, 5, 1});  // same site folds
  agg.add(SiteSample{1, 1, 100, 0, 0});
  agg.add(SiteSample{4, 1, 50, 25, 0});  // score ties with (1,1): 100
  agg.setCycles(16);

  EXPECT_EQ(agg.siteCount(), 3u);
  EXPECT_EQ(agg.totalEvals(), 170u);
  EXPECT_EQ(agg.totalToggles(), 35u);

  const std::vector<ConeStat> top = agg.topK(10);
  ASSERT_EQ(top.size(), 3u);
  // Ties on score (100) break by y then x: (1,1) before (4,1).
  EXPECT_EQ(top[0].x, 1);
  EXPECT_EQ(top[1].x, 4);
  // Folded site: counters doubled, score = evals + 2*toggles + hops.
  EXPECT_EQ(top[2].evals, 20u);
  EXPECT_EQ(top[2].score(), 20u + 2 * 10u + 2u);

  // topK truncates; renders are strict-parser clean and repeatable.
  EXPECT_EQ(agg.topK(2).size(), 2u);
  const obs::JsonValue doc = obs::JsonValue::parse(agg.renderJson(2));
  EXPECT_EQ(doc.at("sites").asNumber(), 3.0);
  EXPECT_EQ(doc.at("cones").asArray().size(), 2u);
  EXPECT_EQ(agg.renderText(3), agg.renderText(3));
}

// The acceptance oracle: drive a compiled 4-bit counter (en=1, clr=0) for
// N cycles and check the probe's per-FF-site toggle counts against the
// closed form — counter bit b flips exactly floor(N / 2^b) times starting
// from zero. The probe samples the device simulator itself, so this pins
// the whole chain: elaboration binding, eval/tick hooks, site folding.
TEST(ActivityProbe, CounterToggleCountsMatchSoftwareOracle) {
  const DeviceProfile p = mediumPartialProfile();
  Device dev = p.makeDevice();
  Compiler compiler(dev);
  const CompiledCircuit c = compiler.compile(
      lib::makeCounter(4), Region::columns(dev.geometry(), 0, 4));

  ActivityProbe probe;
  dev.attachActivityProbe(&probe);
  dev.applyBitstream(c.fullBitstream());
  LoadedCircuit lc(dev, c);
  lc.applyInitialState();
  lc.setInput("en", true);
  lc.setInput("clr", false);

  const std::uint64_t kCycles = 32;
  for (std::uint64_t i = 0; i < kCycles; ++i) {
    dev.evaluate();
    dev.tick();
  }
  EXPECT_EQ(probe.cyclesObserved(), kCycles);

  ActivityAggregator agg;
  collectActivity(probe, agg);

  // Pull the per-site toggle count at each FF's CLB site. Mapped FF order
  // need not match bit order, so compare as sorted multisets.
  ASSERT_EQ(c.ffSites.size(), 4u);
  const std::vector<ConeStat> sites = agg.topK(agg.siteCount());
  std::vector<std::uint64_t> got;
  for (const CellSite& ff : c.ffSites) {
    bool found = false;
    for (const ConeStat& s : sites) {
      if (s.x == ff.x && s.y == ff.y) {
        got.push_back(s.toggles);
        // Every enabled cell evaluates once per cycle.
        EXPECT_EQ(s.evals, kCycles);
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no activity at FF site (" << ff.x << "," << ff.y
                       << ")";
  }
  std::vector<std::uint64_t> want;
  for (std::uint64_t b = 0; b < 4; ++b) {
    want.push_back(kCycles >> b);  // floor(N / 2^b)
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(Waterfall, SyntheticSpansBreakDownPhasesAndCriticalPath) {
  obs::SpanTracer tracer(obs::SpanTracer::Clock([] {
    return std::uint64_t{0};
  }));
  tracer.complete("wait", "os.wait", 0, 100, {}, 1);
  tracer.complete("download/c", "os.config", 100, 50, {}, 1);
  tracer.complete("t0/c", "os.fpga_exec", 150, 200, {}, 1);
  tracer.complete("t0/svc", "os.service", 350, 50, {}, 1);
  tracer.instantAt(360, "stall", "os.stall", {{"stall_ns", "25"}}, 1);
  tracer.instantAt(365, "wait", "os.wait", {{"wait_ns", "40"}}, 1);
  tracer.instantAt(370, "preempt/slice", "os.preempt", {}, 1);

  // One named task with records -> complete; a second named, silent task
  // flips the campaign to incomplete.
  const auto one = obs::profile::buildWaterfall(tracer, {"t0"});
  ASSERT_EQ(one.tasks.size(), 1u);
  EXPECT_TRUE(one.complete);
  const obs::profile::PhaseBreakdown& ph = one.tasks[0].phases;
  EXPECT_EQ(ph.waitNs, 140u);  // 100 from the span + 40 from the instant
  EXPECT_EQ(ph.configNs, 50u);
  EXPECT_EQ(ph.execNs, 200u);
  EXPECT_EQ(ph.cpuNs, 50u);
  EXPECT_EQ(ph.stallNs, 25u);
  EXPECT_EQ(ph.preemptions, 1u);
  EXPECT_STREQ(ph.criticalPhase(), "exec");
  EXPECT_EQ(one.makespanNs, 400u);

  const auto two = obs::profile::buildWaterfall(tracer, {"t0", "ghost"});
  EXPECT_FALSE(two.complete);

  const obs::JsonValue doc = obs::JsonValue::parse(renderJson(one));
  EXPECT_EQ(doc.at("tasks").asArray().size(), 1u);
  EXPECT_EQ(doc.at("complete").asBool(), true);
  EXPECT_EQ(renderText(one), renderText(one));
}

TEST(Waterfall, NestedConfigIsSubtractedFromGrossExec) {
  obs::SpanTracer tracer(obs::SpanTracer::Clock([] {
    return std::uint64_t{0};
  }));
  // Whole-device shape: the gross exec span [0,300) contains its own
  // download [0,100); net fabric time is 200.
  tracer.complete("download/c", "os.config", 0, 100, {}, 1);
  tracer.complete("t0/c", "os.fpga_exec", 0, 300, {}, 1);
  const auto report = obs::profile::buildWaterfall(tracer, {"t0"});
  EXPECT_EQ(report.tasks[0].phases.configNs, 100u);
  EXPECT_EQ(report.tasks[0].phases.execNs, 200u);
}

TEST(ResourceLedger, ClassRollupSumsAndPublishes) {
  obs::profile::ResourceLedger ledger;
  obs::profile::LedgerRow a;
  a.task = "a";
  a.priority = 0;
  a.completed = true;
  a.fpgaCycles = 100;
  a.configBits = 1000;
  a.downloads = 1;
  a.waitNs = 10;
  a.execNs = 20;
  obs::profile::LedgerRow b = a;
  b.task = "b";
  b.fpgaCycles = 50;
  obs::profile::LedgerRow c = a;
  c.task = "c";
  c.priority = 2;
  c.completed = false;
  c.relocations = 3;
  ledger.add(a);
  ledger.add(b);
  ledger.add(c);

  const auto classes = ledger.byClass();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(classes[0].priority, 0);
  EXPECT_EQ(classes[0].tasks, 2u);
  EXPECT_EQ(classes[0].fpgaCycles, 150u);
  EXPECT_EQ(classes[1].priority, 2);
  EXPECT_EQ(classes[1].completed, 0u);
  EXPECT_EQ(classes[1].relocations, 3u);

  obs::MetricsRegistry reg;
  ledger.publish(reg);
  EXPECT_EQ(reg.counter("vfpga_profile_task_fpga_cycles_total",
                        {{"task", "a"}})
                .value(),
            100u);
  EXPECT_EQ(reg.counter("vfpga_profile_class_relocations_total",
                        {{"class", "2"}})
                .value(),
            3u);

  const obs::JsonValue doc = obs::JsonValue::parse(ledger.renderJson());
  EXPECT_EQ(doc.at("tasks").asArray().size(), 3u);
  EXPECT_EQ(doc.at("classes").asArray().size(), 2u);
}

TEST(Flamegraph, CollapsedStacksAreSelfTimeWeightedAndSorted) {
  obs::SpanTracer tracer(obs::SpanTracer::Clock([] {
    return std::uint64_t{0};
  }));
  // Insert inner before outer: containment, not insertion order, must
  // decide the stacks.
  tracer.complete("inner", "t", 10, 30, {}, 1);
  tracer.complete("outer", "t", 0, 100, {}, 1);
  tracer.complete("solo", "t", 0, 40, {}, 2);

  obs::profile::FlamegraphInput input;
  input.tracer = &tracer;
  input.processName = "proc";
  input.trackNames = {"t0", "t1"};
  const std::string collapsed = renderCollapsedStacks(input);
  EXPECT_EQ(collapsed,
            "proc;t0;outer 70\n"
            "proc;t0;outer;inner 30\n"
            "proc;t1;solo 40\n");

  const std::string ss = renderSpeedscope(input, "unit");
  const obs::JsonValue doc = obs::JsonValue::parse(ss);
  EXPECT_EQ(doc.at("name").asString(), "unit");
  EXPECT_EQ(doc.at("profiles").asArray().size(), 2u);
  EXPECT_EQ(doc.at("$schema").asString(),
            "https://www.speedscope.app/file-format-schema.json");
  EXPECT_EQ(renderSpeedscope(input, "unit"), ss);  // byte-deterministic
}

// End-to-end: a real partitioned kernel run feeds the bridge adapters; the
// waterfall is complete, the ledger bills the cycles the tasks asked for,
// and the wait phase marks agree with the kernel's own accounting.
TEST(KernelProfile, BridgeBuildsCompleteWaterfallAndLedger) {
  const DeviceProfile p = mediumPartialProfile();
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);
  Simulation sim;
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  OsKernel kernel(sim, dev, port, compiler, opt);

  Netlist nl = lib::makeCounter(6);
  nl.setName("ctr");
  const ConfigId cfg = kernel.registerConfig(
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 4)));
  for (int i = 0; i < 2; ++i) {
    TaskSpec t;
    t.name = "k" + std::to_string(i);
    t.arrival = static_cast<SimTime>(i) * micros(10);
    t.ops = {CpuBurst{micros(5)},
             FpgaExec{cfg, 10000u + 1000u * static_cast<unsigned>(i)}};
    kernel.addTask(std::move(t));
  }
  kernel.run();

  const std::vector<std::string> names = taskTrackNames(kernel);
  ASSERT_EQ(names.size(), 2u);
  const auto report = obs::profile::buildWaterfall(kernel.spanTracer(), names);
  EXPECT_TRUE(report.complete);
  ASSERT_EQ(report.tasks.size(), 2u);
  for (const auto& tw : report.tasks) {
    EXPECT_GT(tw.phases.configNs + tw.phases.execNs, 0u) << tw.task;
  }

  const obs::profile::ResourceLedger ledger = buildLedger(kernel, "dev0");
  ASSERT_EQ(ledger.rows().size(), 2u);
  EXPECT_EQ(ledger.rows()[0].fpgaCycles, 10000u);
  EXPECT_EQ(ledger.rows()[1].fpgaCycles, 11000u);
  EXPECT_EQ(ledger.rows()[0].device, "dev0");
  EXPECT_TRUE(ledger.rows()[0].completed);
  EXPECT_GE(ledger.rows()[0].downloads + ledger.rows()[0].configHits, 1u);
  EXPECT_GT(ledger.rows()[0].configBits, 0u);
  // Ledger wait must equal the kernel's fpgaWaitTotal (same source), and
  // the waterfall's wait phase is rebuilt from os.wait spans — the two
  // paths must agree.
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(ledger.rows()[i].waitNs, kernel.tasks()[i].fpgaWaitTotal);
    EXPECT_EQ(report.tasks[i].phases.waitNs, kernel.tasks()[i].fpgaWaitTotal);
  }
}

}  // namespace
}  // namespace vfpga
