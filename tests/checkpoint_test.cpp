// Durable checkpoint/restart tests: on-disk format guards (byte-wise
// payload CRC, inner register CRC, slot-parity stale-generation detection,
// double-buffered generation fallback), kernel death + restore (same
// kernel instance gone, fresh kernel re-admits from disk), bit-exactness
// of a restored task against an uninterrupted reference (same strip,
// relocated strip, different device), congruence-violation rejection,
// contention-aware scrub deferral, residency fault classes in the
// technique managers, the FT007-FT009 / CK001-CK005 lint rules, and
// cluster re-admission through submitFromCheckpoint.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "analysis/equiv/verify.hpp"
#include "analysis/fault_lint.hpp"
#include "cluster/scheduler.hpp"
#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "core/os_kernel.hpp"
#include "core/overlay_manager.hpp"
#include "core/page_manager.hpp"
#include "core/segment_manager.hpp"
#include "fabric/device_family.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"

namespace vfpga {
namespace {

Netlist named(Netlist nl, const char* name) {
  nl.setName(name);
  return nl;
}

std::string tempDir(const char* tag) {
  const std::string dir =
      ::testing::TempDir() + "/vfpga_ck_" + tag + "_" +
      std::to_string(::testing::UnitTest::GetInstance()->random_seed());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return dir;
}

std::vector<char> readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<char>((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
}

void writeFile(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// "VFCK" + u16 version + u64 generation + u32 payloadLen.
constexpr std::size_t kHeader = 18;

/// Reference CRC-16/CCITT-FALSE over dense bytes (must match the store's
/// payload seal so tests can re-seal a tampered payload).
std::uint16_t refCrc16(const std::uint8_t* p, std::size_t n) {
  std::uint16_t crc = 0xFFFF;
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= static_cast<std::uint16_t>(std::uint16_t{p[i]} << 8);
    for (int b = 0; b < 8; ++b) {
      crc = (crc & 0x8000) != 0
                ? static_cast<std::uint16_t>((crc << 1) ^ 0x1021)
                : static_cast<std::uint16_t>(crc << 1);
    }
  }
  return crc;
}

fault::TaskCheckpoint sampleCheckpoint() {
  fault::TaskCheckpoint ck;
  ck.task = "sample";
  ck.priority = -3;
  ck.device = "12x12";
  ck.placementX0 = 4;
  ck.placementWidth = 4;
  fault::CheckpointOp fpga;
  fpga.isFpga = true;
  fpga.config = "count";
  fpga.configWidth = 4;
  fpga.cycles = 1234;
  fault::CheckpointOp cpu;
  cpu.isFpga = false;
  cpu.cpuNs = micros(30);
  ck.ops = {fpga, cpu};
  ck.registers = {true, false, true, true, false, false, true, false, true};
  ck.overlayResidency = {1, 2};
  ck.segmentResidency = {7};
  ck.pageResidency = {(3u << 16) | 1u, (3u << 16) | 2u};
  ck.ioBindings = {"q0=p3", "q1=p4"};
  return ck;
}

// ---- on-disk format --------------------------------------------------------

TEST(CheckpointFormat, EncodeDecodeRoundTrip) {
  const fault::TaskCheckpoint ck = sampleCheckpoint();
  const auto bytes = fault::encodeCheckpoint(ck, 5);
  const fault::DecodeResult r = fault::decodeCheckpoint(bytes);
  ASSERT_TRUE(r.ok) << r.diagnostic;
  EXPECT_EQ(r.generation, 5u);
  EXPECT_EQ(r.version, fault::kCheckpointVersion);
  EXPECT_EQ(r.checkpoint.task, ck.task);
  EXPECT_EQ(r.checkpoint.priority, ck.priority);
  EXPECT_EQ(r.checkpoint.device, ck.device);
  EXPECT_EQ(r.checkpoint.placementX0, ck.placementX0);
  EXPECT_EQ(r.checkpoint.placementWidth, ck.placementWidth);
  ASSERT_EQ(r.checkpoint.ops.size(), 2u);
  EXPECT_TRUE(r.checkpoint.ops[0].isFpga);
  EXPECT_EQ(r.checkpoint.ops[0].config, "count");
  EXPECT_EQ(r.checkpoint.ops[0].configWidth, 4);
  EXPECT_EQ(r.checkpoint.ops[0].cycles, 1234u);
  EXPECT_FALSE(r.checkpoint.ops[1].isFpga);
  EXPECT_EQ(r.checkpoint.ops[1].cpuNs, micros(30));
  EXPECT_EQ(r.checkpoint.registers, ck.registers);
  EXPECT_EQ(r.checkpoint.overlayResidency, ck.overlayResidency);
  EXPECT_EQ(r.checkpoint.segmentResidency, ck.segmentResidency);
  EXPECT_EQ(r.checkpoint.pageResidency, ck.pageResidency);
  EXPECT_EQ(r.checkpoint.ioBindings, ck.ioBindings);
}

/// Regression: the payload CRC must be byte-wise. The fabric's frame CRC
/// consumes 0/1 bit streams and reduces each byte to nonzero-vs-zero —
/// sealing the payload with it let any flip that kept a byte nonzero
/// (e.g. 'x' -> '8' inside a circuit name) pass validation.
TEST(CheckpointFormat, SingleBitRotInNonzeroByteIsRejected) {
  auto bytes = fault::encodeCheckpoint(sampleCheckpoint(), 1);
  // Flip bit 6 of every payload byte in turn; each variant must fail.
  int nonzeroBefore = 0;
  for (std::size_t i = kHeader; i < bytes.size() - 2; ++i) {
    auto rotted = bytes;
    rotted[i] ^= 0x40;
    if (bytes[i] != 0 && rotted[i] != 0) ++nonzeroBefore;
    const fault::DecodeResult r = fault::decodeCheckpoint(rotted);
    EXPECT_FALSE(r.ok) << "flip at payload byte " << i << " not caught";
    EXPECT_FALSE(r.payloadCrcOk);
  }
  // The regression is only meaningful if nonzero->nonzero flips occurred.
  EXPECT_GT(nonzeroBefore, 0);
}

TEST(CheckpointFormat, TruncationIsRejected) {
  const auto bytes = fault::encodeCheckpoint(sampleCheckpoint(), 1);
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, kHeader, std::size_t{3}}) {
    auto cut = bytes;
    cut.resize(keep);
    const fault::DecodeResult r = fault::decodeCheckpoint(cut);
    EXPECT_FALSE(r.ok) << "truncation to " << keep << " bytes not caught";
    EXPECT_FALSE(r.diagnostic.empty());
  }
}

TEST(CheckpointFormat, UnsupportedVersionIsRejected) {
  auto bytes = fault::encodeCheckpoint(sampleCheckpoint(), 1);
  bytes[4] = static_cast<std::uint8_t>(fault::kCheckpointVersion + 1);
  const fault::DecodeResult r = fault::decodeCheckpoint(bytes);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.magicOk);
  EXPECT_FALSE(r.versionSupported);
}

/// Targeted register rot with a re-sealed outer CRC must still be caught
/// by the snapshot's own CRC (defense in depth for the state bits).
TEST(CheckpointFormat, InnerStateCrcGuardsRegisterRot) {
  fault::TaskCheckpoint ck;
  ck.task = "t";
  ck.registers = {true, false, true, false, true, false, true, false,
                  true};
  auto bytes = fault::encodeCheckpoint(ck, 1);
  // Payload layout with no device/ops: task(4+1) priority(8) device(4)
  // placement(2+2) opCount(4) -> register bit count at 25, bits at 29.
  const std::size_t regByte = kHeader + 29;
  ASSERT_LT(regByte, bytes.size() - 2);
  bytes[regByte] ^= 0x05;  // flip two register bits
  const std::uint16_t crc =
      refCrc16(bytes.data() + kHeader, bytes.size() - kHeader - 2);
  bytes[bytes.size() - 2] = static_cast<std::uint8_t>(crc & 0xff);
  bytes[bytes.size() - 1] = static_cast<std::uint8_t>(crc >> 8);
  const fault::DecodeResult r = fault::decodeCheckpoint(bytes);
  EXPECT_FALSE(r.ok);
  EXPECT_TRUE(r.payloadCrcOk);  // the outer seal was legitimately redone
  EXPECT_FALSE(r.stateCrcOk);   // ...but the snapshot's own CRC catches it
}

// ---- double-buffered store -------------------------------------------------

TEST(CheckpointStore, FallsBackPastRottenNewestGeneration) {
  fault::CheckpointStore store(tempDir("fallback"));
  fault::TaskCheckpoint ck = sampleCheckpoint();
  store.write(ck);  // generation 1 -> slot 1
  ck.ops[0].cycles = 99;
  const auto w2 = store.write(ck);  // generation 2 -> slot 0
  EXPECT_EQ(w2.generation, 2u);
  auto bytes = readFile(w2.path);
  bytes[kHeader + bytes.size() / 2] ^= 0x10;
  writeFile(w2.path, bytes);

  const auto lr = store.load(ck.task);
  ASSERT_TRUE(lr.ok) << lr.diagnostic;
  EXPECT_EQ(lr.generation, 1u);
  EXPECT_TRUE(lr.fellBack);
  EXPECT_EQ(lr.corruptSlots, 1u);
  EXPECT_EQ(lr.checkpoint.ops[0].cycles, 1234u);  // the *old* content
  EXPECT_EQ(store.stats().fallbacks, 1u);
}

TEST(CheckpointStore, StaleGenerationRestampViolatesSlotParity) {
  fault::CheckpointStore store(tempDir("stale"));
  const fault::TaskCheckpoint ck = sampleCheckpoint();
  store.write(ck);
  const auto w2 = store.write(ck);
  // Re-stamp generation 2 (slot 0) as generation 3: slot 0 may only hold
  // even generations, so the forged header is detected without any CRC.
  auto bytes = readFile(w2.path);
  bytes[6] = 3;
  for (int i = 1; i < 8; ++i) bytes[6 + i] = 0;
  writeFile(w2.path, bytes);

  const auto lr = store.load(ck.task);
  ASSERT_TRUE(lr.ok);
  EXPECT_EQ(lr.generation, 1u);
  EXPECT_TRUE(lr.fellBack);
  ASSERT_EQ(lr.slotDiagnostics.size(), 1u);
  EXPECT_NE(lr.slotDiagnostics[0].find("stale generation"),
            std::string::npos);
}

TEST(CheckpointStore, BothSlotsBadIsACleanDiagnosedFailure) {
  fault::CheckpointStore store(tempDir("bothbad"));
  const fault::TaskCheckpoint ck = sampleCheckpoint();
  store.write(ck);
  store.write(ck);
  for (const std::string& path : store.slotPaths(ck.task)) {
    auto bytes = readFile(path);
    bytes.resize(bytes.size() / 3);
    writeFile(path, bytes);
  }
  const auto lr = store.load(ck.task);
  EXPECT_FALSE(lr.ok);
  EXPECT_EQ(lr.corruptSlots, 2u);
  EXPECT_NE(lr.diagnostic.find("no intact checkpoint"), std::string::npos);
  EXPECT_EQ(store.stats().failedLoads, 1u);
}

TEST(CheckpointStore, GenerationNumberingSurvivesRestart) {
  const std::string dir = tempDir("restart");
  const fault::TaskCheckpoint ck = sampleCheckpoint();
  {
    fault::CheckpointStore store(dir);
    EXPECT_EQ(store.write(ck).generation, 1u);
    EXPECT_EQ(store.write(ck).generation, 2u);
  }
  // A fresh store (fresh process) must continue numbering, not restart at
  // 1 — otherwise a restore could pick a pre-crash generation as newest.
  fault::CheckpointStore store(dir);
  EXPECT_EQ(store.write(ck).generation, 3u);
  const auto lr = store.load(ck.task);
  ASSERT_TRUE(lr.ok);
  EXPECT_EQ(lr.generation, 3u);
  EXPECT_EQ(store.taskNames(), std::vector<std::string>{"sample"});
}

TEST(CheckpointStore, TaskNamesAreSanitizedIntoFileStems) {
  fault::CheckpointStore store(tempDir("sanitize"));
  fault::TaskCheckpoint ck = sampleCheckpoint();
  ck.task = "../evil/task";
  const auto wr = store.write(ck);
  // Slashes are neutralized, so the file may not escape the store
  // directory ("..": still a legal filename prefix, not traversal).
  const std::filesystem::path p(wr.path);
  EXPECT_EQ(p.filename().string().find('/'), std::string::npos);
  EXPECT_EQ(std::filesystem::weakly_canonical(p.parent_path()),
            std::filesystem::weakly_canonical(store.dir()));
  EXPECT_EQ(store.taskNames(), std::vector<std::string>{".._evil_task"});
}

// ---- kernel death and restore ----------------------------------------------

struct KernelEnv {
  Device dev;
  ConfigPort port;
  Compiler compiler;
  explicit KernelEnv(const DeviceProfile& prof)
      : dev(prof.makeDevice()), port(dev, prof.port), compiler(dev) {}
};

std::vector<ConfigId> registerThree(OsKernel& kernel, Compiler& compiler,
                                    Device& dev) {
  const Region strip = Region::columns(dev.geometry(), 0, 4);
  return {
      kernel.registerConfig(
          compiler.compile(named(lib::makeCounter(6), "count"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeChecksum(6), "csum"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeLfsr(8, 0b10111000), "lfsr"),
                           strip)),
  };
}

TaskSpec checkpointTask(std::size_t i, ConfigId cfg) {
  TaskSpec t;
  t.name = "ck" + std::to_string(i);
  t.arrival = static_cast<SimTime>(i) * micros(100);
  t.ops = {CpuBurst{micros(20)}, FpgaExec{cfg, 20000 + 4000 * i},
           CpuBurst{micros(10)}};
  return t;
}

OsOptions checkpointOptions(const std::string& dir) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  opt.ft.checkpointDir = dir;
  opt.ft.checkpointInterval = micros(150);
  return opt;
}

/// Kernel death mid-campaign (no finalize, object destroyed), then a
/// fresh kernel on the same directory restores every task and finishes
/// them all — the post-kernel-restart survival path.
TEST(KernelCheckpoint, SurvivesKernelDeathViaRestore) {
  const std::string dir = tempDir("kernel");
  const OsOptions opt = checkpointOptions(dir);
  {
    KernelEnv env(mediumPartialProfile());
    Simulation sim;
    OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
    const auto cfgs = registerThree(kernel, env.compiler, env.dev);
    for (std::size_t i = 0; i < 4; ++i) {
      kernel.addTask(checkpointTask(i, cfgs[i % 3]));
    }
    kernel.start();
    while (sim.step() && sim.now() < micros(600)) {
    }
    // Kernel dies here: scope exit without finalize().
  }

  KernelEnv env(mediumPartialProfile());
  Simulation sim;
  OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
  registerThree(kernel, env.compiler, env.dev);
  fault::CheckpointStore* store = kernel.checkpointStore();
  ASSERT_NE(store, nullptr);
  const std::vector<std::string> names = store->taskNames();
  ASSERT_FALSE(names.empty());
  std::size_t restored = 0;
  for (const std::string& task : names) {
    const auto lr = store->load(task);
    ASSERT_TRUE(lr.ok) << lr.diagnostic;
    kernel.restoreTask(lr.checkpoint);
    ++restored;
  }
  kernel.run();
  kernel.checkInvariants();
  ASSERT_EQ(kernel.tasks().size(), restored);
  for (const TaskRuntime& t : kernel.tasks()) {
    EXPECT_EQ(t.state, TaskState::kDone) << t.spec.name;
    EXPECT_EQ(t.restores, 1u);
  }
  const std::uint64_t metricRestores =
      kernel.metricsRegistry()
          .counter("vfpga_fault_checkpoint_restores_total",
                   {{"policy", fpgaPolicyName(opt.policy)}}, "")
          .value();
  EXPECT_EQ(metricRestores, restored);
}

TEST(KernelCheckpoint, ParkAndPreemptWriteCheckpoints) {
  const std::string dir = tempDir("park");
  OsOptions opt = checkpointOptions(dir);
  opt.ft.checkpointInterval = 0;  // only park/preempt writes
  opt.ft.watchdogFactor = 4.0;
  opt.ft.watchdogTripLimit = 1;
  fault::FaultPlanSpec spec;
  spec.seed = 3;
  spec.execHangRate = 1.0;  // every execution hangs -> watchdog parks
  fault::FaultPlan plan(spec);
  opt.ft.plan = &plan;

  KernelEnv env(mediumPartialProfile());
  Simulation sim;
  OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
  const auto cfgs = registerThree(kernel, env.compiler, env.dev);
  kernel.addTask(checkpointTask(0, cfgs[0]));
  kernel.run();
  ASSERT_EQ(kernel.tasks()[0].state, TaskState::kParked);
  // The park left a durable checkpoint behind (preempt + park reasons).
  EXPECT_GT(kernel.tasks()[0].checkpoints, 0u);
  EXPECT_GT(kernel.tasks()[0].checkpointedBytes, 0u);
  const auto lr = kernel.checkpointStore()->load("ck0");
  ASSERT_TRUE(lr.ok) << lr.diagnostic;
  EXPECT_FALSE(lr.checkpoint.ops.empty());
}

TEST(KernelCheckpoint, CongruenceViolationIsDiagnosedNotSilent) {
  KernelEnv env(mediumPartialProfile());
  Simulation sim;
  OsKernel kernel(sim, env.dev, env.port, env.compiler,
                  checkpointOptions(tempDir("congruence")));
  registerThree(kernel, env.compiler, env.dev);

  fault::TaskCheckpoint unknown;
  unknown.task = "ghost";
  fault::CheckpointOp op;
  op.isFpga = true;
  op.config = "not_registered";
  op.configWidth = 4;
  op.cycles = 10;
  unknown.ops = {op};
  EXPECT_THROW(kernel.restoreTask(unknown), std::runtime_error);

  fault::TaskCheckpoint wrongWidth = unknown;
  wrongWidth.task = "wide";
  wrongWidth.ops[0].config = "count";  // registered, but at width 4
  wrongWidth.ops[0].configWidth = 6;
  EXPECT_THROW(kernel.restoreTask(wrongWidth), std::runtime_error);
  EXPECT_TRUE(kernel.tasks().empty());  // neither task was admitted
}

/// A restored register snapshot must continue bit-exactly: same strip,
/// relocated strip, and a different (congruent) device all have to match
/// an uninterrupted reference register for register.
TEST(KernelCheckpoint, RestoredCounterIsBitExactEverywhere) {
  const DeviceProfile prof = mediumPartialProfile();
  auto clock = [](LoadedCircuit& lc, int cycles) {
    lc.setInput("en", true);
    lc.setInput("clr", false);
    for (int i = 0; i < cycles; ++i) {
      lc.evaluate();
      lc.tick();
    }
    lc.evaluate();
  };

  Device devA = prof.makeDevice();
  Compiler ca(devA);
  const CompiledCircuit cc =
      ca.compile(named(lib::makeCounter(6), "bx"),
                 Region::columns(devA.geometry(), 0, 4));
  devA.applyBitstream(cc.fullBitstream());
  LoadedCircuit la(devA, cc);
  la.applyInitialState();
  clock(la, 23);

  // Durable round trip: what a restore actually gets back.
  fault::CheckpointStore store(tempDir("bitexact"));
  fault::TaskCheckpoint ck;
  ck.task = "bx";
  ck.registers = la.saveState();
  store.write(ck);
  const auto lr = store.load("bx");
  ASSERT_TRUE(lr.ok);

  // Uninterrupted reference.
  Device devR = prof.makeDevice();
  devR.applyBitstream(cc.fullBitstream());
  LoadedCircuit lref(devR, cc);
  lref.applyInitialState();
  clock(lref, 64);

  // Same strip, same device profile (a restarted kernel on the machine).
  {
    Device dev = prof.makeDevice();
    dev.applyBitstream(cc.fullBitstream());
    LoadedCircuit lb(dev, cc);
    lb.restoreState(lr.checkpoint.registers);
    clock(lb, 41);
    EXPECT_EQ(lb.saveState(), lref.saveState());
    EXPECT_EQ(lb.outputBus("q", 6), lref.outputBus("q", 6));
  }
  // Relocated strip on a fresh device (repaired / congruent target), with
  // the equivalence proof a kernel restore performs before state writeback.
  {
    Device dev = prof.makeDevice();
    Compiler cb(dev);
    const CompiledCircuit cr = cb.relocate(cc, 5);
    dev.applyBitstream(cr.fullBitstream());
    ASSERT_NO_THROW(analysis::equiv::verifyConfiguredOrThrow(
        dev, cr, "checkpoint restore test"));
    LoadedCircuit lb(dev, cr);
    lb.restoreState(lr.checkpoint.registers);
    clock(lb, 41);
    EXPECT_EQ(lb.saveState(), lref.saveState());
    EXPECT_EQ(lb.outputBus("q", 6), lref.outputBus("q", 6));
  }
}

// ---- contention-aware scrubbing --------------------------------------------

TEST(KernelCheckpoint, ScrubDefersWhileConfigPortBusy) {
  fault::FaultPlanSpec spec;
  spec.seed = 5;
  spec.meanUpsetsPerScrub = 0.5;
  fault::FaultPlan plan(spec);
  KernelEnv env(mediumPartialProfile());
  Simulation sim;
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  opt.ft.plan = &plan;
  // Scrub far more often than a download completes: ticks must land while
  // the port is busy and be deferred instead of stealing bandwidth.
  opt.ft.scrubInterval = micros(20);
  OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
  const auto cfgs = registerThree(kernel, env.compiler, env.dev);
  for (std::size_t i = 0; i < 4; ++i) {
    kernel.addTask(checkpointTask(i, cfgs[i % 3]));
  }
  kernel.run();
  const auto counter = [&](const char* name) {
    return kernel.metricsRegistry()
        .counter(name, {{"policy", fpgaPolicyName(opt.policy)}}, "")
        .value();
  };
  EXPECT_GT(counter("vfpga_fault_scrub_deferred_total"), 0u);
  EXPECT_GT(counter("vfpga_fault_scrub_runs_total"), 0u);
  for (const TaskRuntime& t : kernel.tasks()) {
    EXPECT_EQ(t.state, TaskState::kDone) << t.spec.name;
  }
}

// ---- technique-manager residency fault classes -----------------------------

TEST(ManagerFaults, OverlayStaleReuseDetectedWithVerification) {
  fault::FaultPlanSpec spec;
  spec.seed = 9;
  spec.overlayStaleReuseRate = 0.5;
  fault::FaultPlan plan(spec);
  const DeviceProfile prof = mediumPartialProfile();
  for (const bool verify : {true, false}) {
    Device dev = prof.makeDevice();
    ConfigPort port(dev, prof.port);
    Compiler compiler(dev);
    OverlayManager om(dev, port, compiler, 4);
    om.setFaultPlan(&plan, verify);
    om.installResident(
        compiler.compile(named(lib::makeChecksum(6), "ov_common"),
                         Region::columns(dev.geometry(), 0, 4)));
    const OverlayId o = om.addOverlay(
        compiler.compile(named(lib::makeCounter(6), "ov_f"),
                         Region::columns(dev.geometry(), 0, 4)));
    for (int i = 0; i < 20; ++i) om.invoke(o);
    if (verify) {
      EXPECT_GT(om.staleReusesDetected(), 0u);
      EXPECT_EQ(om.silentStaleReuses(), 0u);
    } else {
      EXPECT_GT(om.silentStaleReuses(), 0u);
      EXPECT_EQ(om.staleReusesDetected(), 0u);
    }
  }
}

TEST(ManagerFaults, SegmentTableCorruptionDetectedWithVerification) {
  fault::FaultPlanSpec spec;
  spec.seed = 9;
  spec.segmentTableCorruptRate = 0.5;
  fault::FaultPlan plan(spec);
  const DeviceProfile prof = mediumPartialProfile();
  for (const bool verify : {true, false}) {
    Device dev = prof.makeDevice();
    ConfigPort port(dev, prof.port);
    Compiler compiler(dev);
    SegmentManager sm(dev, port, compiler, ReplacementPolicy::kLru);
    sm.setFaultPlan(&plan, verify);
    std::vector<SegmentId> segs;
    for (int i = 0; i < 2; ++i) {
      segs.push_back(sm.addSegment(compiler.compile(
          named(lib::makeCounter(6),
                ("sg" + std::to_string(i)).c_str()),
          Region::columns(dev.geometry(), 0, 5))));
    }
    for (int i = 0; i < 20; ++i) sm.access(segs[i % 2]);
    if (verify) {
      EXPECT_GT(sm.tableCorruptionsDetected(), 0u);
      EXPECT_EQ(sm.silentTableCorruptions(), 0u);
    } else {
      EXPECT_GT(sm.silentTableCorruptions(), 0u);
      EXPECT_EQ(sm.tableCorruptionsDetected(), 0u);
    }
  }
}

TEST(ManagerFaults, PageResidencyLossDetectedWithVerification) {
  fault::FaultPlanSpec spec;
  spec.seed = 9;
  spec.pageResidencyLossRate = 0.5;
  fault::FaultPlan plan(spec);
  const DeviceProfile prof = mediumPartialProfile();
  for (const bool verify : {true, false}) {
    PageManager pm(prof.port, 128, PageManagerOptions{4, 16});
    pm.setFaultPlan(&plan, verify);
    const ConfigId f = pm.addFunction(10);
    for (int i = 0; i < 20; ++i) pm.access(f);
    if (verify) {
      EXPECT_GT(pm.residencyLossesDetected(), 0u);
      EXPECT_EQ(pm.silentResidencyLosses(), 0u);
    } else {
      EXPECT_GT(pm.silentResidencyLosses(), 0u);
      EXPECT_EQ(pm.residencyLossesDetected(), 0u);
    }
  }
}

// ---- lint rules ------------------------------------------------------------

bool hasRule(const analysis::Report& rep, const char* rule) {
  for (const auto& d : rep.diagnostics()) {
    if (d.rule == rule) return true;
  }
  return false;
}

TEST(FaultLint, ResidencyFaultsWithoutVerificationFireFt007To009) {
  analysis::FaultToleranceProfile p;
  p.overlayStaleReuseRate = 0.2;
  p.segmentTableCorruptRate = 0.2;
  p.pageResidencyLossRate = 0.2;
  p.verifyResidency = false;
  analysis::Report rep;
  analysis::lintFaultTolerance(p, rep);
  EXPECT_TRUE(hasRule(rep, "FT007"));
  EXPECT_TRUE(hasRule(rep, "FT008"));
  EXPECT_TRUE(hasRule(rep, "FT009"));

  p.verifyResidency = true;
  analysis::Report clean;
  analysis::lintFaultTolerance(p, clean);
  EXPECT_FALSE(hasRule(clean, "FT007"));
  EXPECT_FALSE(hasRule(clean, "FT008"));
  EXPECT_FALSE(hasRule(clean, "FT009"));
}

TEST(FaultLint, CheckpointVerdictsMapToCkRules) {
  struct Case {
    const char* rule;
    analysis::CheckpointProfile p;
  };
  std::vector<Case> cases(5);
  cases[0].rule = "CK001";
  cases[0].p.magicOk = false;
  cases[1].rule = "CK002";
  cases[1].p.payloadCrcOk = false;
  cases[2].rule = "CK003";
  cases[2].p.stateCrcOk = false;
  cases[3].rule = "CK004";
  cases[3].p.stateBits = 6;
  cases[3].p.expectedStateBits = 9;
  cases[4].rule = "CK005";
  cases[4].p.generationParityOk = false;
  for (const Case& c : cases) {
    analysis::Report rep;
    analysis::lintCheckpoint(c.p, rep);
    EXPECT_TRUE(hasRule(rep, c.rule)) << c.rule;
    EXPECT_FALSE(rep.ok()) << c.rule;
  }
  analysis::Report clean;
  analysis::lintCheckpoint(analysis::CheckpointProfile{}, clean);
  EXPECT_TRUE(clean.ok());
}

// ---- cluster re-admission --------------------------------------------------

TEST(ClusterCheckpoint, SubmitFromCheckpointCompletesOnAnyDevice) {
  Simulation sim;
  cluster::BitstreamCache cache(8);
  std::vector<cluster::DeviceNodeSpec> specs(2);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "dev" + std::to_string(i);
    specs[i].profile = mediumPartialProfile();
  }
  cluster::DevicePool pool(sim, specs, cache);
  pool.registerWorkload("count", named(lib::makeCounter(6), "count"), 4);
  cluster::ClusterOptions copt;
  cluster::ClusterScheduler sched(sim, pool, copt);

  fault::TaskCheckpoint ck;
  ck.task = "revived";
  ck.priority = 1;
  fault::CheckpointOp op;
  op.isFpga = true;
  op.config = "count";
  op.configWidth = 4;
  op.cycles = 8000;
  ck.ops = {op};
  ck.registers = std::vector<bool>(9, true);

  // Unknown circuit and incongruent width are diagnosed rejections.
  fault::TaskCheckpoint ghost = ck;
  ghost.ops[0].config = "missing";
  EXPECT_THROW(sched.submitFromCheckpoint(ghost, 0), std::runtime_error);
  fault::TaskCheckpoint wide = ck;
  wide.ops[0].configWidth = 6;
  EXPECT_THROW(sched.submitFromCheckpoint(wide, 0), std::runtime_error);

  sched.submitFromCheckpoint(ck, micros(10));
  sched.run();
  ASSERT_EQ(sched.outcomes().size(), 1u);
  const cluster::ClusterJobOutcome& out = sched.outcomes()[0];
  EXPECT_EQ(out.name, "revived");
  EXPECT_TRUE(out.admitted);
  EXPECT_TRUE(out.completed);
  EXPECT_FALSE(out.device.empty());
  EXPECT_TRUE(sched.summary().slosMet);
}

}  // namespace
}  // namespace vfpga
