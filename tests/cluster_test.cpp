// Cluster-layer tests: the content-addressed bitstream cache (dedupe, LRU
// eviction, digest stability), the device pool's cluster-wide ConfigId
// guarantee, live-migration correctness down at the register level
// (snapshot -> move -> resume must be bit-identical to an uninterrupted
// run, for both a cooperative hand-off and a quarantine-forced
// relocation), the kernel migration ticket, and the cluster scheduler
// (determinism, backpressure, drain, transient-fault failback, CL rules).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/cluster_lint.hpp"
#include "analysis/equiv/verify.hpp"
#include "cluster/scheduler.hpp"
#include "core/strip_allocator.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "sim/rng.hpp"

namespace vfpga {
namespace {

Netlist named(Netlist nl, const char* name) {
  nl.setName(name);
  return nl;
}

// ---- BitstreamCache --------------------------------------------------------

TEST(BitstreamCache, DigestIsStableAndContentSensitive) {
  Device dev = mediumPartialProfile().makeDevice();
  const Netlist a = named(lib::makeCounter(6), "count");
  const Netlist b = named(lib::makeLfsr(8, 0b10111000), "lfsr");
  const std::uint32_t fb = mediumPartialProfile().frameBits;

  EXPECT_EQ(cluster::compileDigest(a, dev.geometry(), fb, 4),
            cluster::compileDigest(a, dev.geometry(), fb, 4));
  EXPECT_NE(cluster::compileDigest(a, dev.geometry(), fb, 4),
            cluster::compileDigest(b, dev.geometry(), fb, 4));
  // Same netlist, different strip width or frame size: distinct identity.
  EXPECT_NE(cluster::compileDigest(a, dev.geometry(), fb, 4),
            cluster::compileDigest(a, dev.geometry(), fb, 5));
  EXPECT_NE(cluster::compileDigest(a, dev.geometry(), fb, 4),
            cluster::compileDigest(a, dev.geometry(), fb * 2, 4));
  // Different fabric geometry: distinct identity.
  Device tiny = tinyProfile().makeDevice();
  EXPECT_NE(cluster::compileDigest(a, dev.geometry(), fb, 4),
            cluster::compileDigest(a, tiny.geometry(), fb, 4));
}

TEST(BitstreamCache, DedupesCompilesAndCountsHits) {
  Device dev = mediumPartialProfile().makeDevice();
  Compiler compiler(dev);
  const Netlist nl = named(lib::makeCounter(6), "count");
  int compiles = 0;
  auto compileFn = [&] {
    ++compiles;
    return compiler.compile(nl, Region::columns(compiler.geometry(), 0, 4));
  };

  cluster::BitstreamCache cache(8);
  auto c1 = cache.getOrCompile(11, compileFn);
  auto c2 = cache.getOrCompile(11, compileFn);
  auto c3 = cache.getOrCompile(11, compileFn);
  EXPECT_EQ(compiles, 1);
  EXPECT_EQ(c1.get(), c2.get());
  EXPECT_EQ(c2.get(), c3.get());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().compiles, 1u);
  EXPECT_EQ(cache.stats().uniqueDigests, 1u);
  EXPECT_DOUBLE_EQ(cache.hitRate(), 2.0 / 3.0);
}

TEST(BitstreamCache, LruEvictionRecompilesColdEntry) {
  Device dev = mediumPartialProfile().makeDevice();
  Compiler compiler(dev);
  const Netlist nl = named(lib::makeCounter(6), "count");
  auto compileFn = [&] {
    return compiler.compile(nl, Region::columns(compiler.geometry(), 0, 4));
  };

  cluster::BitstreamCache cache(2);
  auto kept = cache.getOrCompile(1, compileFn);  // shared ptr survives evict
  cache.getOrCompile(2, compileFn);
  cache.getOrCompile(1, compileFn);  // touch 1: now 2 is the LRU entry
  cache.getOrCompile(3, compileFn);  // evicts 2
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.getOrCompile(2, compileFn);  // cold again: recompile
  EXPECT_EQ(cache.stats().compiles, 4u);
  EXPECT_EQ(cache.stats().uniqueDigests, 3u);  // 2 counted once, not twice
  EXPECT_NE(kept.get(), nullptr);
}

// ---- DevicePool ------------------------------------------------------------

TEST(DevicePool, WorkloadIdsAgreeAcrossNodesAndCompileOnce) {
  Simulation sim;
  cluster::BitstreamCache cache(8);
  std::vector<cluster::DeviceNodeSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "dev" + std::to_string(i);
    specs[i].profile = mediumPartialProfile();
  }
  cluster::DevicePool pool(sim, specs, cache);

  const cluster::WorkloadId w0 =
      pool.registerWorkload("count", named(lib::makeCounter(6), "count"), 4);
  const cluster::WorkloadId w1 = pool.registerWorkload(
      "lfsr", named(lib::makeLfsr(8, 0b10111000), "lfsr"), 4);

  EXPECT_EQ(w0, 0u);
  EXPECT_EQ(w1, 1u);
  EXPECT_EQ(pool.workloadWidth(w0), 4);
  EXPECT_EQ(pool.workloadCount(), 2u);
  // 2 workloads x 3 nodes = 6 registrations but only 2 real compiles.
  EXPECT_EQ(cache.stats().compiles, 2u);
  EXPECT_EQ(cache.stats().hits, 4u);
  EXPECT_EQ(cache.stats().uniqueDigests, 2u);
  for (std::size_t i = 0; i < pool.nodeCount(); ++i) {
    EXPECT_EQ(pool.node(i).kernel().registry().size(), 2u);
    EXPECT_EQ(pool.node(i).usableColumns(), 12);
  }
}

// ---- migration correctness (register level) --------------------------------

/// Runs `cycles` enabled-counter cycles on `lc` (en held, clr low).
void clockCounter(LoadedCircuit& lc, int cycles) {
  lc.setInput("en", true);
  lc.setInput("clr", false);
  for (int i = 0; i < cycles; ++i) {
    lc.evaluate();
    lc.tick();
  }
  lc.evaluate();
}

TEST(Migration, SnapshotMoveResumeIsBitIdentical) {
  // Run 23 cycles on device A, migrate the register snapshot to a
  // *different strip* of device B, run 41 more — the result must be
  // bit-identical (outputs and full FF state) to 64 uninterrupted cycles.
  const Netlist nl = named(lib::makeCounter(6), "count");

  Device devA = mediumPartialProfile().makeDevice();
  Compiler compilerA(devA);
  const CompiledCircuit cA =
      compilerA.compile(nl, Region::columns(compilerA.geometry(), 0, 4));
  devA.applyBitstream(cA.fullBitstream());
  ASSERT_TRUE(devA.configOk());
  LoadedCircuit la(devA, cA);
  la.applyInitialState();
  clockCounter(la, 23);
  EXPECT_EQ(la.outputBus("q", 6), 23u);
  const std::vector<bool> snapshot = la.saveState();

  // Target lives at columns 5..8 — state is mapped-order, so it relocates.
  Device devB = mediumPartialProfile().makeDevice();
  Compiler compilerB(devB);
  const CompiledCircuit cB = compilerB.relocate(cA, 5);
  devB.applyBitstream(cB.fullBitstream());
  ASSERT_TRUE(devB.configOk());
  // Equivalence invariant: the destination fabric must provably compute
  // the migrated circuit before any state is restored into it.
  {
    const auto chk = analysis::equiv::checkConfigured(devB, cB);
    ASSERT_TRUE(chk.ok()) << chk.result.summary();
    EXPECT_TRUE(chk.result.fullyProven) << chk.result.summary();
  }
  LoadedCircuit lb(devB, cB);
  lb.restoreState(snapshot);
  clockCounter(lb, 41);

  // Uninterrupted reference on a fresh device.
  Device devR = mediumPartialProfile().makeDevice();
  const CompiledCircuit cR = cA;
  devR.applyBitstream(cR.fullBitstream());
  ASSERT_TRUE(devR.configOk());
  LoadedCircuit lr(devR, cR);
  lr.applyInitialState();
  clockCounter(lr, 64);

  EXPECT_EQ(lb.outputBus("q", 6), lr.outputBus("q", 6));
  EXPECT_EQ(lb.saveState(), lr.saveState());
}

TEST(Migration, QuarantineForcedRelocationIsBitIdentical) {
  // Same bit-identity bar, but the move is *forced*: a column inside the
  // busy strip fails and the partition manager relocates the occupant
  // (state save, blank, relocate, verified download, state restore).
  const Netlist nl = named(lib::makeCounter(6), "count");

  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  ConfigPort port(dev, prof.port);
  Compiler compiler(dev);
  ConfigRegistry registry;
  const ConfigId cfg = registry.add(
      compiler.compile(nl, Region::columns(compiler.geometry(), 0, 4)));
  PartitionManager pm(dev, port, registry, compiler);

  const auto load = pm.load(cfg);
  ASSERT_TRUE(load.has_value());
  {
    LoadedCircuit lc = pm.loaded(load->partition);
    lc.applyInitialState();
    clockCounter(lc, 23);
    EXPECT_EQ(lc.outputBus("q", 6), 23u);
  }

  const auto q = pm.quarantine(1);  // column 1 sits inside the busy strip
  EXPECT_TRUE(q.quarantined);
  EXPECT_TRUE(q.relocated);
  ASSERT_NE(q.movedTo, kNoPartition);

  // Equivalence invariant: the forced relocation left a configuration
  // that still provably computes the compiled circuit.
  {
    const auto chk =
        analysis::equiv::checkConfigured(dev, pm.circuitIn(q.movedTo));
    ASSERT_TRUE(chk.ok()) << chk.result.summary();
    EXPECT_TRUE(chk.result.fullyProven) << chk.result.summary();
  }

  LoadedCircuit moved = pm.loaded(q.movedTo);
  moved.setInput("en", false);
  moved.setInput("clr", false);
  moved.evaluate();
  EXPECT_EQ(moved.outputBus("q", 6), 23u);  // state survived the move
  clockCounter(moved, 41);

  Device devR = mediumPartialProfile().makeDevice();
  Compiler compilerR(devR);
  const CompiledCircuit cR =
      compilerR.compile(nl, Region::columns(compilerR.geometry(), 0, 4));
  devR.applyBitstream(cR.fullBitstream());
  ASSERT_TRUE(devR.configOk());
  LoadedCircuit lr(devR, cR);
  lr.applyInitialState();
  clockCounter(lr, 64);

  EXPECT_EQ(moved.outputBus("q", 6), lr.outputBus("q", 6));
  EXPECT_EQ(moved.saveState(), lr.saveState());
}

// ---- kernel migration ticket ----------------------------------------------

TEST(Migration, ExtractedRunningTaskResumesOnSecondKernel) {
  // With invariant checks on, the destination kernel proves the resumed
  // configuration equivalent right after the migrated state is restored
  // (the OsKernel migration-resume hook); a corrupted move would throw.
  struct ChecksGuard {
    ChecksGuard() { analysis::setInvariantChecks(true); }
    ~ChecksGuard() { analysis::setInvariantChecks(false); }
  } guard;
  Simulation sim;
  DeviceProfile prof = mediumPartialProfile();
  Device devA = prof.makeDevice(), devB = prof.makeDevice();
  ConfigPort portA(devA, prof.port), portB(devB, prof.port);
  Compiler compA(devA), compB(devB);
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  OsKernel a(sim, devA, portA, compA, opt);
  OsKernel b(sim, devB, portB, compB, opt);
  const Netlist nl = named(lib::makeCounter(6), "count");
  const ConfigId cfgA = a.registerConfig(
      compA.compile(nl, Region::columns(compA.geometry(), 0, 4)));
  const ConfigId cfgB = b.registerConfig(
      compB.compile(nl, Region::columns(compB.geometry(), 0, 4)));
  ASSERT_EQ(cfgA, cfgB);

  TaskSpec t;
  t.name = "mig";
  t.ops = {CpuBurst{micros(5)}, FpgaExec{cfgA, 200000}, CpuBurst{micros(5)}};
  a.addTask(t);
  a.start();
  b.start();

  while (a.runningExecCount() == 0) ASSERT_TRUE(sim.step());
  const auto movable = a.migratableTasks();
  ASSERT_EQ(movable.size(), 1u);
  OsKernel::MigrationTicket ticket = a.extractForMigration(movable[0]);
  EXPECT_TRUE(ticket.fromRunning);
  EXPECT_GT(ticket.cost, 0);
  EXPECT_FALSE(ticket.savedState.empty());
  EXPECT_EQ(ticket.continuation.migratedStateBits, ticket.savedState.size());
  EXPECT_EQ(a.tasks()[movable[0]].state, TaskState::kMigrated);
  // The continuation owes at most the original cycles and runs from `now`.
  ASSERT_EQ(ticket.continuation.ops.size(), 2u);
  const auto* fx = std::get_if<FpgaExec>(&ticket.continuation.ops[0]);
  ASSERT_NE(fx, nullptr);
  EXPECT_LE(fx->cycles, 200000u);
  EXPECT_GT(fx->cycles, 0u);

  b.addTask(ticket.continuation);
  while (sim.step()) {
  }
  a.finalize();
  b.finalize();
  ASSERT_EQ(b.tasks().size(), 1u);
  EXPECT_EQ(b.tasks()[0].state, TaskState::kDone);
}

// ---- ClusterScheduler ------------------------------------------------------

struct CampaignConfig {
  std::size_t devices = 3;
  std::size_t jobs = 12;
  cluster::ClusterOptions options;
  std::vector<fault::StripFailureEvent> dev1Failures;
};

struct CampaignRun {
  Simulation sim;
  cluster::BitstreamCache cache{16};
  std::unique_ptr<cluster::DevicePool> pool;
  std::unique_ptr<cluster::ClusterScheduler> sched;
};

/// Builds + runs one seeded campaign; identical configs must yield
/// byte-identical reports.
std::unique_ptr<CampaignRun> runCampaign(const CampaignConfig& cfg) {
  auto run = std::make_unique<CampaignRun>();
  std::vector<cluster::DeviceNodeSpec> specs(cfg.devices);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "dev" + std::to_string(i);
    specs[i].profile = mediumPartialProfile();
    if (i == 1 && !cfg.dev1Failures.empty()) {
      specs[i].faulty = true;
      specs[i].faultSpec.seed = 99;
      specs[i].faultSpec.stripFailures = cfg.dev1Failures;
    }
  }
  run->pool = std::make_unique<cluster::DevicePool>(run->sim, specs,
                                                    run->cache);
  const cluster::WorkloadId w =
      run->pool->registerWorkload("count", named(lib::makeCounter(6), "count"),
                                  4);
  run->sched = std::make_unique<cluster::ClusterScheduler>(
      run->sim, *run->pool, cfg.options);
  Rng rng(5);
  for (std::size_t j = 0; j < cfg.jobs; ++j) {
    cluster::ClusterJobSpec job;
    job.name = "t" + std::to_string(j);
    job.submitAt =
        static_cast<SimTime>(j) * micros(80) + rng.below(micros(40));
    job.priority = static_cast<int>(rng.below(2));
    job.ops = {CpuBurst{micros(10)}, FpgaExec{w, 20000 + 500 * rng.below(8)},
               CpuBurst{micros(5)}};
    run->sched->submit(std::move(job));
  }
  run->sched->run();
  return run;
}

TEST(ClusterScheduler, SameSeedByteIdenticalReports) {
  CampaignConfig cfg;
  cfg.options.maxJobsPerDevice = 2;
  cfg.dev1Failures = {{millis(1), 2}, {millis(2), 9}};
  cfg.options.minUsableColumns = 8;
  auto a = runCampaign(cfg);
  auto b = runCampaign(cfg);
  EXPECT_EQ(a->sched->renderReport(), b->sched->renderReport());
  EXPECT_EQ(a->sched->renderJsonReport(), b->sched->renderJsonReport());
  EXPECT_FALSE(a->sched->renderReport().empty());
}

TEST(ClusterScheduler, BackpressureRejectsBeyondQueueDepth) {
  CampaignConfig cfg;
  cfg.jobs = 16;
  cfg.options.admissionQueueDepth = 2;
  cfg.options.maxJobsPerDevice = 1;
  cfg.devices = 2;
  auto run = runCampaign(cfg);
  const auto& s = run->sched->summary();
  EXPECT_EQ(s.submitted, 16u);
  EXPECT_GT(s.rejected, 0u);
  EXPECT_EQ(s.admitted + s.rejected, s.submitted);
  EXPECT_EQ(s.completed, s.admitted);  // admitted jobs still all finish
  EXPECT_NEAR(s.rejectedFraction,
              static_cast<double>(s.rejected) / s.submitted, 1e-12);
  std::size_t rejectedRows = 0;
  for (const auto& o : run->sched->outcomes()) {
    if (!o.admitted) {
      ++rejectedRows;
      EXPECT_TRUE(o.device.empty());
    }
  }
  EXPECT_EQ(rejectedRows, s.rejected);
}

TEST(ClusterScheduler, DrainsDegradedDeviceAndCompletesEverything) {
  CampaignConfig cfg;
  cfg.options.minUsableColumns = 8;
  cfg.options.maxJobsPerDevice = 2;
  // Two failures shrink dev1's largest span below 8 -> forced evacuation.
  cfg.dev1Failures = {{millis(1), 2}, {millis(2), 9}};
  auto run = runCampaign(cfg);
  const auto& s = run->sched->summary();
  EXPECT_EQ(s.completed, s.admitted);
  EXPECT_EQ(s.parked, 0u);
  EXPECT_GE(s.migrationsDrain, 1u);
  EXPECT_LT(run->pool->node(1).usableColumns(), 8);
  EXPECT_TRUE(s.sloCompletedMet);
}

TEST(ClusterScheduler, TransientFaultHealsAndWorkFlowsBack) {
  CampaignConfig cfg;
  cfg.jobs = 18;
  cfg.options.minUsableColumns = 8;
  cfg.options.maxJobsPerDevice = 2;
  cfg.options.rebalanceGap = 2;
  // dev1 loses column 5 at 1 ms and heals 2 ms later.
  cfg.dev1Failures = {{millis(1), 5, millis(2)}};
  auto run = runCampaign(cfg);
  const auto& s = run->sched->summary();
  EXPECT_EQ(s.completed, s.admitted);
  // Healed: the full fabric is usable again and the heal was counted.
  EXPECT_EQ(run->pool->node(1).usableColumns(), 12);
  const PartitionManager* pm = run->pool->node(1).kernel().partitionManager();
  ASSERT_NE(pm, nullptr);
  EXPECT_EQ(pm->ftStats().stripsHealed, 1u);
  EXPECT_EQ(pm->allocator().quarantinedColumns(), 0);
}

// ---- transient heal / repair primitives ------------------------------------

TEST(StripAllocator, UnquarantineRestoresSpanAndMerges) {
  StripAllocator alloc(12);
  alloc.quarantineColumn(5);
  EXPECT_EQ(alloc.quarantinedColumns(), 1);
  EXPECT_EQ(alloc.largestUsableSpan(), 6);
  alloc.unquarantineColumn(5);
  EXPECT_EQ(alloc.quarantinedColumns(), 0);
  EXPECT_EQ(alloc.largestUsableSpan(), 12);
  // The table must be fully merged again: one idle strip, allocatable at
  // full width.
  EXPECT_EQ(alloc.strips().size(), 1u);
  EXPECT_TRUE(alloc.allocate(12).has_value());
  // Unquarantining a healthy column is a no-op.
  alloc.unquarantineColumn(3);
  alloc.checkInvariants();
}

TEST(StripAllocator, RepairUnmergedIdleIsIdleOnHealthyTable) {
  StripAllocator alloc(12);
  const auto a = alloc.allocate(4);
  const auto b = alloc.allocate(4);
  ASSERT_TRUE(a && b);
  alloc.release(*a);
  alloc.release(*b);
  // release() keeps the table merged, so the repair pass finds nothing.
  EXPECT_EQ(alloc.repairUnmergedIdle(), 0u);
  EXPECT_EQ(alloc.strips().size(), 1u);
  alloc.checkInvariants();
}

// ---- CL lint rules ---------------------------------------------------------

std::vector<std::string> ruleIds(const analysis::Report& rep) {
  std::vector<std::string> ids;
  for (const auto& d : rep.diagnostics()) ids.push_back(d.rule);
  return ids;
}

TEST(ClusterLint, FlagsEveryMisconfiguration) {
  analysis::ClusterProfile p;
  p.deviceColumns = {12};
  p.workloadWidths = {4, 20};  // 20 fits nowhere -> CL001
  p.admissionQueueDepth = 0;   // CL002
  p.minUsableColumns = 16;     // CL003
  p.rebalanceGap = 1;          // CL005
  p.anyStripFailures = true;   // single faulty device -> CL004
  analysis::Report rep;
  analysis::lintCluster(p, rep);
  const auto ids = ruleIds(rep);
  EXPECT_EQ(ids, (std::vector<std::string>{"CL001", "CL002", "CL003",
                                           "CL004", "CL005"}));
  EXPECT_FALSE(rep.ok());  // CL001-CL003 are errors
}

TEST(ClusterLint, CleanProfilePasses) {
  analysis::ClusterProfile p;
  p.deviceColumns = {12, 12, 12};
  p.workloadWidths = {4, 6};
  p.admissionQueueDepth = 16;
  p.minUsableColumns = 8;
  p.rebalanceGap = 2;
  p.anyStripFailures = true;  // fine: there are migration targets
  analysis::Report rep;
  analysis::lintCluster(p, rep);
  EXPECT_TRUE(rep.diagnostics().empty());
  EXPECT_TRUE(rep.ok());
}

TEST(ClusterLint, RulesAreRegistered) {
  for (const char* id : {"CL001", "CL002", "CL003", "CL004", "CL005"}) {
    const analysis::RuleInfo* info = analysis::findRule(id);
    ASSERT_NE(info, nullptr) << id;
  }
  EXPECT_EQ(analysis::findRule("CL001")->severity,
            analysis::Severity::kError);
  EXPECT_EQ(analysis::findRule("CL004")->severity,
            analysis::Severity::kWarning);
}

}  // namespace
}  // namespace vfpga
