// Technology-mapping correctness: the mapped netlist must be functionally
// identical to the gate netlist, for combinational and sequential circuits,
// and obey the K-input constraint.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/library/arith.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "sim/rng.hpp"
#include "techmap/lut_mapper.hpp"
#include "techmap/mapped_netlist.hpp"

namespace vfpga {
namespace {

/// Drives both evaluators with the same random input stream for `cycles`
/// clock cycles and asserts every output matches every cycle.
void expectEquivalent(const Netlist& nl, const MappedNetlist& m, int cycles,
                      std::uint64_t seed) {
  Evaluator ref(nl);
  MappedEvaluator dut(m);
  ASSERT_EQ(m.inputs.size(), nl.inputs().size());
  ASSERT_EQ(m.outputs.size(), nl.outputs().size());
  // Port order is preserved by the mapper.
  for (std::size_t i = 0; i < m.inputs.size(); ++i) {
    ASSERT_EQ(m.inputs[i].name, nl.gate(nl.inputs()[i]).name);
  }
  Rng rng(seed);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::vector<bool> in(nl.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.bernoulli(0.5);
    ref.setInputs(in);
    for (std::size_t i = 0; i < in.size(); ++i) dut.setInput(i, in[i]);
    ref.eval();
    dut.eval();
    for (std::size_t o = 0; o < m.outputs.size(); ++o) {
      ASSERT_EQ(dut.output(o), ref.value(nl.outputs()[o]))
          << "output " << m.outputs[o].name << " cycle " << cycle;
    }
    ref.tick();
    dut.tick();
  }
}

void expectKConstraint(const MappedNetlist& m) {
  for (const MappedCell& c : m.cells) {
    EXPECT_LE(c.inputs.size(), m.k);
  }
  EXPECT_NO_THROW(m.check());
}

struct LibraryCase {
  const char* label;
  Netlist nl;
  int cycles;
};

std::vector<LibraryCase> libraryCases() {
  std::vector<LibraryCase> cases;
  cases.push_back({"adder8", lib::makeRippleAdder(8), 64});
  cases.push_back({"sub8", lib::makeSubtractor(8), 64});
  cases.push_back({"cmp8", lib::makeComparator(8), 64});
  cases.push_back({"mul4", lib::makeArrayMultiplier(4), 64});
  cases.push_back({"mac4", lib::makeMac(4), 64});
  cases.push_back({"alu8", lib::makeAlu(8), 64});
  cases.push_back({"crc8s", lib::makeSerialCrc(8, 0x07), 128});
  cases.push_back({"crc16p8", lib::makeParallelCrc(16, 0x1021, 8), 64});
  cases.push_back({"lfsr8", lib::makeLfsr(8, 0b10111000), 128});
  cases.push_back({"parity8", lib::makeParityTree(8), 32});
  cases.push_back({"hamming", lib::makeHamming74Encoder(), 32});
  cases.push_back({"conv", lib::makeConvolutionalEncoder(7, {0171, 0133}), 128});
  cases.push_back({"counter6", lib::makeCounter(6), 128});
  cases.push_back({"shift8", lib::makeShiftRegister(8), 64});
  cases.push_back({"pi8", lib::makePiController(8, 1, 3), 64});
  cases.push_back({"misr8", lib::makeMisr(8, 0x1D), 64});
  cases.push_back({"barrel8", lib::makeBarrelShifter(8), 64});
  cases.push_back({"popcnt8", lib::makePopcount(8), 64});
  cases.push_back({"prio8", lib::makePriorityEncoder(8), 64});
  cases.push_back({"cksum8", lib::makeChecksum(8), 64});
  cases.push_back({"rle4", lib::makeRunLengthDetector(4, 4), 64});
  cases.push_back({"minmax6", lib::makeMinMax(6), 64});
  return cases;
}

class MapLibrary : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MapLibrary, EquivalentAtK4) {
  auto cases = libraryCases();
  auto& c = cases[GetParam()];
  MappedNetlist m = mapToLuts(c.nl, MapOptions{4});
  expectKConstraint(m);
  expectEquivalent(c.nl, m, c.cycles, 1234 + GetParam());
}

TEST_P(MapLibrary, EquivalentAtK6) {
  auto cases = libraryCases();
  auto& c = cases[GetParam()];
  MappedNetlist m6 = mapToLuts(c.nl, MapOptions{6});
  MappedNetlist m4 = mapToLuts(c.nl, MapOptions{4});
  expectKConstraint(m6);
  expectEquivalent(c.nl, m6, c.cycles, 4321 + GetParam());
  // Wider LUTs never need more cells.
  EXPECT_LE(m6.cells.size(), m4.cells.size());
}

INSTANTIATE_TEST_SUITE_P(AllLibraryCircuits, MapLibrary,
                         ::testing::Range<std::size_t>(0, 22),
                         [](const auto& info) {
                           return libraryCases()[info.param].label;
                         });

TEST(LutMapper, RejectsUnsupportedK) {
  Netlist nl = lib::makeParityTree(4);
  EXPECT_THROW(mapToLuts(nl, MapOptions{2}), std::invalid_argument);
  EXPECT_THROW(mapToLuts(nl, MapOptions{7}), std::invalid_argument);
}

TEST(LutMapper, SingleGatePacksIntoOneLut) {
  Netlist nl;
  Builder b(nl);
  Bus in = b.inputBus("x", 4);
  nl.addOutput("o", b.and_(b.and_(in[0], in[1]), b.and_(in[2], in[3])));
  MappedNetlist m = mapToLuts(nl, MapOptions{4});
  EXPECT_EQ(m.cells.size(), 1u);  // whole 4-input cone in one LUT
  EXPECT_EQ(m.depth(), 1u);
}

TEST(LutMapper, ConstantOutputGetsZeroInputCell) {
  Netlist nl;
  nl.addOutput("zero", nl.constant(false));
  nl.addOutput("one", nl.constant(true));
  MappedNetlist m = mapToLuts(nl);
  ASSERT_EQ(m.cells.size(), 2u);
  MappedEvaluator ev(m);
  ev.eval();
  EXPECT_FALSE(ev.output(0));
  EXPECT_TRUE(ev.output(1));
}

TEST(LutMapper, PassThroughPortNeedsNoCell) {
  Netlist nl;
  GateId a = nl.addInput("a");
  nl.addOutput("o", a);
  MappedNetlist m = mapToLuts(nl);
  EXPECT_TRUE(m.cells.empty());
  EXPECT_EQ(m.outputs[0].net, m.inputNet(0));
}

TEST(LutMapper, RegisterFeedbackLoopMaps) {
  // q' = !q : a toggle flip-flop, the smallest feedback loop.
  Netlist nl;
  Builder b(nl);
  Bus q = b.stateBus(1);
  b.bindState(q, std::vector<GateId>{b.not_(q[0])});
  nl.addOutput("q", q[0]);
  MappedNetlist m = mapToLuts(nl);
  ASSERT_EQ(m.cells.size(), 1u);
  EXPECT_TRUE(m.cells[0].hasFf);
  MappedEvaluator ev(m);
  bool expect = false;
  for (int i = 0; i < 8; ++i) {
    ev.eval();
    EXPECT_EQ(ev.output(0), expect);
    ev.tick();
    expect = !expect;
  }
}

TEST(LutMapper, FanoutHeavyGatesAreNotDuplicated) {
  // One AND gate fanning out to 8 XORs: the AND must become its own cell.
  Netlist nl;
  Builder b(nl);
  Bus in = b.inputBus("x", 10);
  GateId shared = b.and_(in[8], in[9]);
  for (int i = 0; i < 8; ++i) {
    nl.addOutput("o" + std::to_string(i),
                 b.xor_(in[static_cast<std::size_t>(i)], shared));
  }
  MappedNetlist m = mapToLuts(nl, MapOptions{4});
  // 8 XOR cells + 1 shared AND cell.
  EXPECT_EQ(m.cells.size(), 9u);
}

TEST(LutMapper, DffInitialValuePreserved) {
  Netlist nl;
  GateId d = nl.addInput("d");
  GateId q = nl.addDff(d, /*init=*/true);
  nl.addOutput("q", q);
  MappedNetlist m = mapToLuts(nl);
  ASSERT_EQ(m.ffCount(), 1u);
  MappedEvaluator ev(m);
  ev.setInput(0, false);
  ev.eval();
  EXPECT_TRUE(ev.output(0));  // init value visible before first tick
}

TEST(LutMapper, DepthShrinksWithLargerK) {
  Netlist nl = lib::makeParityTree(16);
  MappedNetlist m4 = mapToLuts(nl, MapOptions{4});
  MappedNetlist m6 = mapToLuts(nl, MapOptions{6});
  EXPECT_LE(m6.depth(), m4.depth());
  EXPECT_GE(m4.depth(), 2u);  // 16-bit parity cannot fit one 4-LUT
}

TEST(MappedNetlist, CheckRejectsBadStructures) {
  MappedNetlist m;
  m.k = 4;
  MappedCell c;
  c.inputs = {0, 1, 2, 3, 4};  // 5 inputs > K
  m.cells.push_back(c);
  EXPECT_THROW(m.check(), std::logic_error);
}

TEST(MappedNetlist, StateRoundTripInMappedEvaluator) {
  Netlist nl = lib::makeCounter(6);
  MappedNetlist m = mapToLuts(nl);
  MappedEvaluator ev(m);
  auto enIdx = [&]() -> std::size_t {
    for (std::size_t i = 0; i < m.inputs.size(); ++i) {
      if (m.inputs[i].name == "en") return i;
    }
    throw std::logic_error("no en port");
  }();
  for (std::size_t i = 0; i < m.inputs.size(); ++i) ev.setInput(i, false);
  ev.setInput(enIdx, true);
  for (int i = 0; i < 13; ++i) {
    ev.eval();
    ev.tick();
  }
  ev.eval();
  const auto snapshot = ev.ffState();
  std::vector<bool> outsBefore;
  for (std::size_t o = 0; o < m.outputs.size(); ++o) {
    outsBefore.push_back(ev.output(o));
  }
  for (int i = 0; i < 7; ++i) {
    ev.eval();
    ev.tick();
  }
  ev.setFfState(snapshot);
  ev.eval();
  for (std::size_t o = 0; o < m.outputs.size(); ++o) {
    EXPECT_EQ(ev.output(o), outsBefore[o]);
  }
}

}  // namespace
}  // namespace vfpga
