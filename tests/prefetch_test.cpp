// PrefetchLoader: double-buffered speculative configuration loading.
#include <gtest/gtest.h>

#include "core/dynamic_loader.hpp"
#include "core/prefetch_loader.hpp"
#include "fabric/device_family.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"

namespace vfpga {
namespace {

class PrefetchTest : public ::testing::Test {
 protected:
  PrefetchTest()
      : profile_(mediumPartialProfile()), dev_(profile_.makeDevice()),
        port_(dev_, profile_.port), compiler_(dev_) {}

  ConfigId addCircuit(const std::string& name, int which) {
    Netlist nl = (which == 0)   ? lib::makeCounter(6)
                 : (which == 1) ? lib::makeChecksum(6)
                                : lib::makeLfsr(8, 0b10111000);
    nl.setName(name);
    return registry_.add(compiler_.compile(
        nl, Region::columns(dev_.geometry(), 0, 4)));
  }

  DeviceProfile profile_;
  Device dev_;
  ConfigPort port_;
  Compiler compiler_;
  ConfigRegistry registry_;
};

TEST_F(PrefetchTest, LearnsAlternationAndHidesDownloads) {
  PrefetchLoader loader(dev_, port_, registry_, compiler_);
  ConfigId a = addCircuit("a", 0);
  ConfigId b = addCircuit("b", 1);
  SimTime now = 0;
  const SimDuration bigGap = millis(50);  // plenty to hide any download
  // Warm-up: first A->B->A transitions are misses.
  for (int i = 0; i < 4; ++i) {
    loader.activate(i % 2 ? b : a, now);
    now += bigGap;
  }
  // Once the A<->B alternation is learned, switches are free.
  for (int i = 0; i < 10; ++i) {
    auto r = loader.activate(i % 2 ? b : a, now);
    EXPECT_TRUE(r.predicted) << "switch " << i;
    EXPECT_EQ(r.stall, 0u) << "switch " << i;
    now += bigGap;
  }
  EXPECT_GT(loader.hitRate(), 0.7);
}

TEST_F(PrefetchTest, ShortGapsPayResidualStall) {
  // Three configurations rotating: the shadow half must genuinely be
  // rewritten on every prefetch (with only two, both halves end up caching
  // their circuit and background downloads become no-ops).
  PrefetchLoader loader(dev_, port_, registry_, compiler_);
  const ConfigId cfg[3] = {addCircuit("a", 0), addCircuit("b", 1),
                           addCircuit("c", 2)};
  SimTime now = 0;
  for (int i = 0; i < 9; ++i) {  // learn the rotation with generous gaps
    loader.activate(cfg[i % 3], now);
    now += millis(50);
  }
  // Switch almost immediately: the (correctly) predicted download cannot
  // have finished, so the switch stalls for its remainder — but strictly
  // less than a full demand load.
  auto r = loader.activate(cfg[0 % 3], now);
  now += r.stall + micros(10);
  auto quick = loader.activate(cfg[1], now);
  EXPECT_TRUE(quick.predicted);
  EXPECT_GT(quick.stall, 0u);
  // A full demand load of the same circuit costs more than the residue.
  DynamicLoader demand(dev_, port_, registry_);
  // (cost query only — compare against a fresh full-strip download time)
  const SimDuration fullLoad =
      port_.downloadCost(registry_.circuit(cfg[1]).partialBitstream());
  EXPECT_LT(quick.stall, fullLoad + millis(1));
}

TEST_F(PrefetchTest, MissFallsBackToDemandLoad) {
  PrefetchLoader loader(dev_, port_, registry_, compiler_);
  ConfigId a = addCircuit("a", 0);
  ConfigId b = addCircuit("b", 1);
  ConfigId c = addCircuit("c", 2);
  SimTime now = 0;
  loader.activate(a, now);
  now += millis(50);
  loader.activate(b, now);  // learns a->b
  now += millis(50);
  loader.activate(a, now);
  now += millis(50);
  auto r = loader.activate(c, now);  // predicted b, asked for c
  EXPECT_FALSE(r.predicted);
  EXPECT_GT(r.stall, 0u);
  EXPECT_GE(loader.misses(), 1u);
  EXPECT_EQ(loader.active(), c);
}

TEST_F(PrefetchTest, ActiveCircuitComputesCorrectlyAfterFlips) {
  PrefetchLoader loader(dev_, port_, registry_, compiler_);
  ConfigId ctr = addCircuit("ctr", 0);
  ConfigId ck = addCircuit("ck", 1);
  SimTime now = 0;
  std::uint64_t expected = 0;
  for (int round = 0; round < 4; ++round) {
    auto r1 = loader.activate(ctr, now);
    now += r1.stall + millis(10);
    ASSERT_TRUE(dev_.configOk()) << dev_.elaboration().faults.front();
    LoadedCircuit lc = loader.loaded();
    lc.applyInitialState();  // prefetched circuits start fresh
    lc.setInput("en", true);
    lc.setInput("clr", false);
    for (int i = 0; i < 5; ++i) {
      lc.evaluate();
      lc.tick();
    }
    lc.evaluate();
    expected = 5;  // fresh start each residency
    EXPECT_EQ(lc.outputBus("q", 6), expected);

    auto r2 = loader.activate(ck, now);
    now += r2.stall + millis(10);
    ASSERT_TRUE(dev_.configOk());
  }
}

TEST_F(PrefetchTest, RejectsBadConfigurationsAndPorts) {
  PrefetchLoader loader(dev_, port_, registry_, compiler_);
  // Wider than half the device.
  Netlist wide = lib::makeChecksum(6);
  wide.setName("wide7");
  ConfigId w = registry_.add(compiler_.compile(
      wide, Region::columns(dev_.geometry(), 0, 7)));
  EXPECT_THROW(loader.activate(w, 0), std::invalid_argument);

  // Serial-full port cannot prefetch.
  DeviceProfile serial = mediumSerialProfile();
  Device dev2 = serial.makeDevice();
  ConfigPort port2(dev2, serial.port);
  Compiler compiler2(dev2);
  EXPECT_THROW(PrefetchLoader(dev2, port2, registry_, compiler2),
               std::invalid_argument);
}

TEST_F(PrefetchTest, TimeMustBeMonotonic) {
  PrefetchLoader loader(dev_, port_, registry_, compiler_);
  ConfigId a = addCircuit("a", 0);
  ConfigId b = addCircuit("b", 1);
  loader.activate(a, millis(10));
  EXPECT_THROW(loader.activate(b, millis(5)), std::logic_error);
}

}  // namespace
}  // namespace vfpga
