// End-to-end CAD flow tests: netlist -> map -> place -> route -> bitstream
// -> device, asserting the configured device is cycle-accurate against the
// reference Evaluator, including after relocation and state save/restore.
#include <gtest/gtest.h>

#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "fabric/config_port.hpp"
#include "fabric/device_family.hpp"
#include "netlist/builder.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/library/arith.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "place/placer.hpp"
#include "route/router.hpp"
#include "sim/rng.hpp"
#include "techmap/lut_mapper.hpp"

namespace vfpga {
namespace {

// ------------------------------------------------------------------- placer

TEST(Placer, AssignsDistinctInRegionSites) {
  Netlist nl = lib::makeRippleAdder(4);
  MappedNetlist m = mapToLuts(nl);
  Region region{1, 1, 4, 4};
  Rng rng(7);
  Placement p = place(m, region, rng);
  ASSERT_EQ(p.sites.size(), m.cells.size());
  std::set<std::pair<int, int>> used;
  for (const CellSite& s : p.sites) {
    EXPECT_TRUE(region.contains(s.x, s.y));
    EXPECT_TRUE(used.insert({s.x, s.y}).second) << "site reused";
  }
}

TEST(Placer, ThrowsWhenRegionTooSmall) {
  Netlist nl = lib::makeArrayMultiplier(4);
  MappedNetlist m = mapToLuts(nl);
  Rng rng(7);
  EXPECT_THROW(place(m, Region{0, 0, 2, 2}, rng), std::runtime_error);
}

TEST(Placer, AnnealingBeatsRandomPlacement) {
  Netlist nl = lib::makeParallelCrc(16, 0x1021, 8);
  MappedNetlist m = mapToLuts(nl);
  Region region = Region{0, 0, 8, 8};
  Rng rng(11);
  // A "random placement" is what the SA loop starts from; measure it by
  // running with zero optimization effort.
  PlaceOptions noEffort;
  noEffort.movesPerCellPerTemp = 0;  // clamps to the minimum internally
  PlaceOptions full;
  Rng rngA(11), rngB(11);
  Placement random = place(m, region, rngA, noEffort);
  Placement optimized = place(m, region, rngB, full);
  EXPECT_LT(optimized.finalCost, random.finalCost);
}

TEST(Placer, DeterministicForSameSeed) {
  Netlist nl = lib::makeAlu(4);
  MappedNetlist m = mapToLuts(nl);
  Rng a(3), b(3);
  Placement pa = place(m, Region{0, 0, 6, 6}, a);
  Placement pb = place(m, Region{0, 0, 6, 6}, b);
  for (std::size_t i = 0; i < pa.sites.size(); ++i) {
    EXPECT_EQ(pa.sites[i].x, pb.sites[i].x);
    EXPECT_EQ(pa.sites[i].y, pb.sites[i].y);
  }
}

// ------------------------------------------------------------------- router

TEST(Router, RoutesSimpleNetAndReportsHops) {
  Device dev(FabricGeometry{4, 4, 4, 4, 2});
  const RoutingGraph& rrg = dev.rrg();
  RouteRequest req;
  req.source = rrg.clbOut(0, 0);
  req.sinks = {rrg.clbIn(2, 2, 0)};
  Router router(rrg);
  auto result = router.routeAll({req});
  ASSERT_TRUE(result.has_value());
  ASSERT_EQ(result->nets.size(), 1u);
  EXPECT_GE(result->nets[0].edges.size(), 2u);
  EXPECT_EQ(result->nets[0].sinkHops.size(), 1u);
}

TEST(Router, RespectsAllowedMask) {
  Device dev(FabricGeometry{4, 4, 4, 4, 2});
  const RoutingGraph& rrg = dev.rrg();
  // Confine to columns [0,1] but ask for a sink in column 3.
  Router router(rrg, columnRangeMask(rrg, 0, 1));
  RouteRequest req;
  req.source = rrg.clbOut(0, 0);
  req.sinks = {rrg.clbIn(3, 0, 0)};
  EXPECT_FALSE(router.routeAll({req}).has_value());
}

TEST(Router, NegotiatesCongestionGreedyCannotResolve) {
  // Many nets from the same corner region: first-fit greedy should fail or
  // conflict where negotiation succeeds.
  Device dev(FabricGeometry{4, 4, 4, 2, 2});  // only 2 wires per channel
  const RoutingGraph& rrg = dev.rrg();
  std::vector<RouteRequest> reqs;
  for (int i = 0; i < 4; ++i) {
    RouteRequest r;
    r.source = rrg.clbOut(0, i);
    r.sinks = {rrg.clbIn(3, i, 0), rrg.clbIn(3, (i + 1) % 4, 1)};
    reqs.push_back(r);
  }
  Router router(rrg);
  RouteOptions negotiated;
  auto ok = router.routeAll(reqs, negotiated);
  EXPECT_TRUE(ok.has_value());
  // Verify legality: no node shared between nets.
  if (ok) {
    std::set<RRNodeId> used;
    for (const RoutedNet& net : ok->nets) {
      for (RRNodeId n : net.nodes) {
        EXPECT_TRUE(used.insert(n).second)
            << "node shared: " << rrg.describe(n);
      }
    }
  }
}

TEST(Router, SharedTreeNodesAppearOncePerNet) {
  Device dev(FabricGeometry{4, 4, 4, 4, 2});
  const RoutingGraph& rrg = dev.rrg();
  RouteRequest req;
  req.source = rrg.clbOut(1, 1);
  req.sinks = {rrg.clbIn(3, 1, 0), rrg.clbIn(3, 2, 0), rrg.clbIn(3, 3, 0)};
  Router router(rrg);
  auto result = router.routeAll({req});
  ASSERT_TRUE(result.has_value());
  std::set<RRNodeId> nodes(result->nets[0].nodes.begin(),
                           result->nets[0].nodes.end());
  EXPECT_EQ(nodes.size(), result->nets[0].nodes.size());
}

// ----------------------------------------------------------- full flow

/// Compiles `nl` onto a fresh tiny/medium device, downloads it, and checks
/// cycle-accuracy against the Evaluator over `cycles` random cycles.
void expectDeviceEquivalent(const Netlist& nl, Device& dev,
                            const Region& region, int cycles,
                            std::uint64_t seed, bool relocatable = true) {
  Compiler compiler(dev);
  CompileOptions opt;
  opt.relocatable = relocatable;
  opt.seed = seed;
  CompiledCircuit c = compiler.compile(nl, region, opt);

  dev.clearConfig();
  dev.applyBitstream(c.fullBitstream());
  ASSERT_TRUE(dev.configOk()) << dev.elaboration().faults.front();
  LoadedCircuit lc(dev, c);
  lc.applyInitialState();

  Evaluator ref(nl);
  Rng rng(seed * 77 + 1);
  for (int cycle = 0; cycle < cycles; ++cycle) {
    std::vector<bool> in(nl.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.bernoulli(0.5);
    ref.setInputs(in);
    for (std::size_t i = 0; i < in.size(); ++i) {
      lc.setInput(nl.gate(nl.inputs()[i]).name, in[i]);
    }
    ref.eval();
    lc.evaluate();
    for (GateId out : nl.outputs()) {
      ASSERT_EQ(lc.output(nl.gate(out).name), ref.value(out))
          << "output " << nl.gate(out).name << " cycle " << cycle;
    }
    ref.tick();
    lc.tick();
  }
}

TEST(Flow, CombinationalAdderOnTinyDevice) {
  Device dev = tinyProfile().makeDevice();
  Netlist nl = lib::makeRippleAdder(4);
  expectDeviceEquivalent(nl, dev, Region::full(dev.geometry()), 48, 5,
                         /*relocatable=*/false);
}

TEST(Flow, SequentialCounterOnTinyDevice) {
  Device dev = tinyProfile().makeDevice();
  Netlist nl = lib::makeCounter(4);
  expectDeviceEquivalent(nl, dev, Region::full(dev.geometry()), 64, 6,
                         /*relocatable=*/false);
}

TEST(Flow, SerialCrcOnStrip) {
  Device dev = mediumPartialProfile().makeDevice();
  Netlist nl = lib::makeSerialCrc(8, 0x07);
  expectDeviceEquivalent(nl, dev, Region::columns(dev.geometry(), 2, 4), 96,
                         7);
}

TEST(Flow, PiControllerOnStrip) {
  Device dev = mediumPartialProfile().makeDevice();
  Netlist nl = lib::makePiController(6, 1, 2);
  expectDeviceEquivalent(nl, dev, Region::columns(dev.geometry(), 0, 6), 48,
                         8);
}

TEST(Flow, ConvolutionalEncoderOnStrip) {
  Device dev = mediumPartialProfile().makeDevice();
  Netlist nl = lib::makeConvolutionalEncoder(5, {0b10111, 0b11001});
  expectDeviceEquivalent(nl, dev, Region::columns(dev.geometry(), 6, 4), 96,
                         9);
}

TEST(Flow, CompileErrorsAreDiagnosed) {
  Device dev = tinyProfile().makeDevice();
  Compiler compiler(dev);
  // Too many cells for a 1-column strip.
  Netlist big = lib::makeArrayMultiplier(4);
  EXPECT_THROW(
      compiler.compile(big, Region::columns(dev.geometry(), 0, 1)),
      CompileError);
  // Region outside the device.
  Netlist small = lib::makeParityTree(4);
  EXPECT_THROW(compiler.compile(small, Region{5, 0, 4, 4}), CompileError);
}

TEST(Flow, IoCapacityLimitEnforced) {
  Device dev = tinyProfile().makeDevice();
  Compiler compiler(dev);
  // 2 columns * 2 pads * 4 slots = 16 relocatable slots; parity-16 needs 17.
  Netlist nl = lib::makeParityTree(16);
  EXPECT_GT(nl.inputs().size() + nl.outputs().size(),
            compiler.ioCapacity(Region::columns(dev.geometry(), 0, 2), true));
  EXPECT_THROW(compiler.compile(nl, Region::columns(dev.geometry(), 0, 2)),
               CompileError);
}

TEST(Flow, PartialBitstreamTouchesOnlyRegionFrames) {
  Device dev = mediumPartialProfile().makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeChecksum(4);
  CompiledCircuit c =
      compiler.compile(nl, Region::columns(dev.geometry(), 4, 3));
  const ConfigMap& map = dev.configMap();
  auto [f0, f1] = map.framesOfColumns(4, 6);
  Bitstream bs = c.partialBitstream();
  for (const Frame& f : bs.frames) {
    EXPECT_GE(f.id, f0);
    EXPECT_LT(f.id, f1);
  }
  // And the circuit must not set any bit outside those frames.
  for (std::uint32_t bit = 0; bit < c.image.size(); ++bit) {
    if (c.image.get(bit)) {
      EXPECT_GE(map.frameOfBit(bit), f0);
      EXPECT_LT(map.frameOfBit(bit), f1);
    }
  }
}

TEST(Flow, TwoCircuitsCoexistInDisjointStrips) {
  Device dev = mediumPartialProfile().makeDevice();
  Compiler compiler(dev);
  Netlist nlA = lib::makeChecksum(4);
  Netlist nlB = lib::makeShiftRegister(6);
  CompiledCircuit a =
      compiler.compile(nlA, Region::columns(dev.geometry(), 0, 3));
  CompiledCircuit b =
      compiler.compile(nlB, Region::columns(dev.geometry(), 3, 3));
  dev.applyBitstream(a.partialBitstream());
  dev.applyBitstream(b.partialBitstream());
  ASSERT_TRUE(dev.configOk()) << dev.elaboration().faults.front();

  LoadedCircuit la(dev, a), lb(dev, b);
  // Drive both independently; FF indices interleave, so use the per-
  // circuit state maps rather than raw device state.
  Evaluator refA(nlA), refB(nlB);
  Rng rng(17);
  for (int cycle = 0; cycle < 32; ++cycle) {
    const std::uint64_t dA = rng.next() & 0xF;
    const bool dB = rng.bernoulli(0.5);
    la.setInputBus("d", 4, dA);
    lb.setInput("d", dB);
    refA.writeBus(findInputBus(nlA, "d", 4), dA);
    refB.setInput("d", dB);
    refA.eval();
    refB.eval();
    dev.evaluate();
    EXPECT_EQ(la.outputBus("acc", 4),
              refA.readBus(findOutputBus(nlA, "acc", 4)));
    EXPECT_EQ(lb.outputBus("q", 6), refB.readBus(findOutputBus(nlB, "q", 6)));
    refA.tick();
    refB.tick();
    dev.tick();
  }
}

TEST(Flow, RelocationPreservesFunction) {
  Device dev = mediumPartialProfile().makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeSerialCrc(8, 0x07);
  CompiledCircuit c =
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 4));
  CompiledCircuit moved = compiler.relocate(c, 7);
  EXPECT_EQ(moved.region.x0, 7);
  EXPECT_EQ(moved.region.w, c.region.w);

  dev.clearConfig();
  dev.applyBitstream(moved.fullBitstream());
  ASSERT_TRUE(dev.configOk()) << dev.elaboration().faults.front();
  LoadedCircuit lc(dev, moved);
  lc.applyInitialState();
  Evaluator ref(nl);
  Rng rng(23);
  for (int cycle = 0; cycle < 64; ++cycle) {
    const bool d = rng.bernoulli(0.5);
    lc.setInput("d", d);
    ref.setInput("d", d);
    lc.evaluate();
    ref.eval();
    EXPECT_EQ(lc.outputBus("crc", 8), ref.readBus(findOutputBus(nl, "crc", 8)));
    lc.tick();
    ref.tick();
  }
}

TEST(Flow, RelocationMovesAllConfigBitsIntoTargetFrames) {
  Device dev = mediumPartialProfile().makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeChecksum(4);
  CompiledCircuit c =
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 3));
  CompiledCircuit moved = compiler.relocate(c, 9);
  const ConfigMap& map = dev.configMap();
  auto [f0, f1] = map.framesOfColumns(9, 11);
  for (std::uint32_t bit = 0; bit < moved.image.size(); ++bit) {
    if (moved.image.get(bit)) {
      EXPECT_GE(map.frameOfBit(bit), f0);
      EXPECT_LT(map.frameOfBit(bit), f1);
    }
  }
}

TEST(Flow, RelocateRejectsBadTargets) {
  Device dev = mediumPartialProfile().makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeChecksum(4);
  CompiledCircuit c =
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 3));
  EXPECT_THROW(compiler.relocate(c, 11), CompileError);  // 11+3 > 12

  CompileOptions pinned;
  pinned.relocatable = false;
  CompiledCircuit fixed =
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 3), pinned);
  EXPECT_THROW(compiler.relocate(fixed, 4), CompileError);
}

TEST(Flow, StateSaveRestoreAcrossReconfiguration) {
  // The dynamic-loading scenario from §3: run task A (a counter), preempt
  // it (save state), run task B (an LFSR), then restore A exactly where it
  // stopped.
  Device dev = mediumPartialProfile().makeDevice();
  ConfigPort port(dev, mediumPartialProfile().port);
  Compiler compiler(dev);
  const Region strip = Region::columns(dev.geometry(), 0, 6);
  Netlist nlA = lib::makeCounter(6);
  Netlist nlB = lib::makeLfsr(8, 0b10111000);
  CompiledCircuit a = compiler.compile(nlA, strip);
  CompiledCircuit b = compiler.compile(nlB, strip);

  port.download(a.fullBitstream());
  ASSERT_TRUE(dev.configOk());
  LoadedCircuit la(dev, a);
  la.applyInitialState();
  la.setInput("en", true);
  la.setInput("clr", false);
  for (int i = 0; i < 23; ++i) {
    la.evaluate();
    la.tick();
  }
  la.evaluate();
  EXPECT_EQ(la.outputBus("q", 6), 23u);
  const std::vector<bool> savedA = la.saveState();

  // Swap in task B, run it a while.
  port.download(b.fullBitstream());
  ASSERT_TRUE(dev.configOk());
  LoadedCircuit lb(dev, b);
  lb.applyInitialState();
  for (int i = 0; i < 9; ++i) {
    lb.evaluate();
    lb.tick();
  }

  // Swap task A back and restore its registers.
  port.download(a.fullBitstream());
  ASSERT_TRUE(dev.configOk());
  LoadedCircuit la2(dev, a);
  la2.restoreState(savedA);
  la2.setInput("en", true);
  la2.setInput("clr", false);
  la2.evaluate();
  EXPECT_EQ(la2.outputBus("q", 6), 23u);
  la2.tick();
  la2.evaluate();
  EXPECT_EQ(la2.outputBus("q", 6), 24u);
}

TEST(Flow, DeviceTimingMatchesDepth) {
  Device dev = tinyProfile().makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeParityTree(8);
  CompiledCircuit c = compiler.compile(
      nl, Region::full(dev.geometry()),
      [] {
        CompileOptions o;
        o.relocatable = false;
        return o;
      }());
  dev.applyBitstream(c.fullBitstream());
  ASSERT_TRUE(dev.configOk());
  // Critical path must be at least depth * lutDelay.
  const SimDuration lower = c.mapped.depth() * dev.timing().lutDelay;
  EXPECT_GE(dev.criticalPathDelay(), lower);
  EXPECT_GT(dev.minClockPeriod(), dev.criticalPathDelay());
}

}  // namespace
}  // namespace vfpga
