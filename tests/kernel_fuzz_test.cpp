// Property-based OS-kernel tests: randomly generated task sets must run to
// completion under every policy, with accounting invariants intact, and
// every run must be bit-deterministic.
#include <gtest/gtest.h>

#include "core/os_kernel.hpp"
#include "fabric/device_family.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "workloads/taskset.hpp"

namespace vfpga {
namespace {

struct KernelRun {
  OsMetrics metrics;
  std::vector<SimTime> finishTimes;
};

KernelRun runRandomWorkload(FpgaPolicy policy, std::uint64_t seed) {
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  ConfigPort port(dev, prof.port);
  Compiler compiler(dev);
  Simulation sim;
  OsOptions opt;
  opt.policy = policy;
  if (policy == FpgaPolicy::kPartitionedFixed) opt.fixedWidths = {4, 4, 4};
  if (policy == FpgaPolicy::kDynamicLoading) {
    opt.fpgaSlice = (seed % 2) ? millis(1) : SimDuration{0};
    opt.saveStateOnPreempt = (seed % 3) != 0;
  }
  OsKernel kernel(sim, dev, port, compiler, opt);

  std::vector<ConfigId> cfgs;
  for (int i = 0; i < 3; ++i) {
    Netlist nl = (i == 0)   ? lib::makeCounter(6)
                 : (i == 1) ? lib::makeChecksum(6)
                            : lib::makeLfsr(8, 0b10111000);
    nl.setName("c" + std::to_string(i));
    cfgs.push_back(kernel.registerConfig(compiler.compile(
        nl, Region::columns(dev.geometry(), 0, 4))));
  }

  Rng rng(seed);
  workloads::TaskSetParams params;
  params.numTasks = 4 + rng.below(8);
  params.numConfigs = 3;
  params.execsPerTask = 1 + rng.below(3);
  params.minCycles = 1000;
  params.maxCycles = 200000;
  params.meanArrivalGapMs = 0.2 + rng.uniform();
  params.meanCpuBurstMs = 0.05 + rng.uniform() * 0.3;
  params.configZipf = rng.uniform() * 1.5;
  params.oneConfigPerTask = rng.bernoulli(0.5);
  for (auto& spec : workloads::makeTaskSet(params, rng)) {
    kernel.addTask(spec);
  }
  kernel.run();

  KernelRun result;
  result.metrics = kernel.metrics();
  for (const TaskRuntime& t : kernel.tasks()) {
    result.finishTimes.push_back(t.finish);
  }
  // Device must be left in a decodable state under every policy.
  EXPECT_TRUE(dev.configOk()) << dev.elaboration().faults.front();
  return result;
}

class KernelFuzz
    : public ::testing::TestWithParam<std::tuple<FpgaPolicy, std::uint64_t>> {
};

TEST_P(KernelFuzz, InvariantsHoldOnRandomWorkloads) {
  const auto [policy, seed] = GetParam();
  const KernelRun run = runRandomWorkload(policy, seed);
  const OsMetrics& m = run.metrics;

  // Every task finished; makespan is the latest finish.
  EXPECT_EQ(m.tasksFinished, run.finishTimes.size());
  SimTime latest = 0;
  for (SimTime f : run.finishTimes) latest = std::max(latest, f);
  EXPECT_EQ(m.makespan, latest);

  // Accounting identities.
  EXPECT_EQ(m.waitTime.count(), m.tasksFinished);
  EXPECT_EQ(m.turnaround.count(), m.tasksFinished);
  EXPECT_GE(m.turnaround.max(), m.waitTime.min());
  if (policy == FpgaPolicy::kSoftwareOnly) {
    EXPECT_EQ(m.downloads, 0u);
    EXPECT_EQ(m.fpgaComputeTime, 0u);
  } else {
    EXPECT_GT(m.fpgaGrants, 0u);
    // Compute cannot exceed makespan times the concurrency bound.
    const std::uint64_t maxConcurrent =
        (policy == FpgaPolicy::kPartitionedFixed ||
         policy == FpgaPolicy::kPartitionedVariable)
            ? 3u  // 12 columns / 4-wide circuits
            : 1u;
    EXPECT_LE(m.fpgaComputeTime, m.makespan * maxConcurrent);
    EXPECT_LE(m.configTime, m.makespan);
  }
  // Roll-backs only exist in the no-save dynamic regime.
  if (policy != FpgaPolicy::kDynamicLoading) {
    EXPECT_EQ(m.rollbacks, 0u);
  }
}

TEST_P(KernelFuzz, RunsAreBitDeterministic) {
  const auto [policy, seed] = GetParam();
  const KernelRun a = runRandomWorkload(policy, seed);
  const KernelRun b = runRandomWorkload(policy, seed);
  EXPECT_EQ(a.finishTimes, b.finishTimes);
  EXPECT_EQ(a.metrics.makespan, b.metrics.makespan);
  EXPECT_EQ(a.metrics.downloads, b.metrics.downloads);
  EXPECT_EQ(a.metrics.bitsDownloaded, b.metrics.bitsDownloaded);
}

INSTANTIATE_TEST_SUITE_P(
    PoliciesAndSeeds, KernelFuzz,
    ::testing::Combine(
        ::testing::Values(FpgaPolicy::kSoftwareOnly, FpgaPolicy::kExclusive,
                          FpgaPolicy::kDynamicLoading,
                          FpgaPolicy::kPartitionedFixed,
                          FpgaPolicy::kPartitionedVariable),
        ::testing::Values(1, 2, 3, 4)),
    [](const auto& info) {
      return std::string(fpgaPolicyName(std::get<0>(info.param))) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace vfpga
