// Formal equivalence checking tests: reverse extraction round-trips, the
// full library proving equivalent post-P&R and post-relocation, and — the
// heart of the contract — a seeded corruption corpus (LUT truth-table bit
// flips, routing mux swaps, corrupted relocated strips) where every
// corruption whose effect is observable at the device level must be
// flagged with a concrete, replayable counterexample. Plus the TA timing
// lint rules and the verifyConfiguredOrThrow invariant form.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/equiv/verify.hpp"
#include "analysis/timing_lint/timing_lint.hpp"
#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "fabric/device_family.hpp"
#include "fabric/sta.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/library/control.hpp"
#include "sim/rng.hpp"
#include "techmap/mapped_netlist.hpp"
#include "workloads/app_circuits.hpp"
#include "workloads/compile_suite.hpp"

namespace vfpga {
namespace {

using analysis::equiv::checkConfigured;
using analysis::equiv::checkConfiguredAgainst;
using analysis::equiv::ConfiguredCheck;
using analysis::equiv::mappedToNetlist;
using analysis::equiv::replayCounterexample;

struct CompiledOnDevice {
  Device dev;
  CompiledCircuit c;
};

/// Compiles a named application circuit onto a minimal relocatable strip of
/// a fresh medium_partial device and downloads it.
CompiledOnDevice compileNamed(const std::string& name,
                              std::uint64_t seed = 1) {
  const workloads::AppCircuit app = workloads::appCircuitByName(name);
  CompiledOnDevice r{mediumPartialProfile().makeDevice(), {}};
  Compiler compiler(r.dev);
  r.c = workloads::compileMinimal(compiler, app.netlist, seed);
  r.dev.applyBitstream(r.c.fullBitstream());
  return r;
}

/// Every counterexample of a failed check must replay exactly against the
/// reference Evaluators of the two compared netlists.
void expectReplayableCounterexamples(const CompiledCircuit& c,
                                     const ConfiguredCheck& chk) {
  ASSERT_FALSE(chk.result.counterexamples.empty());
  const Netlist golden = mappedToNetlist(c.mapped, c.name + "@mapped");
  const Netlist revised =
      mappedToNetlist(chk.extracted.mapped, c.name + "@extracted");
  for (const auto& cx : chk.result.counterexamples) {
    EXPECT_TRUE(replayCounterexample(golden, revised, cx)) << cx.render();
  }
}

/// Device-level observability oracle, independent of the checker: runs the
/// (possibly corrupted) device against the compiler's MappedEvaluator with
/// random FF-state writebacks and random inputs. True when any output
/// diverges within `trials` single-cycle experiments.
bool corruptionObservable(Device& dev, const CompiledCircuit& c,
                          std::uint64_t seed, int trials = 48) {
  if (!dev.configOk()) return true;  // elaboration faults are observable
  MappedEvaluator me(c.mapped);
  LoadedCircuit lc(dev, c);
  Rng rng(seed);
  for (int t = 0; t < trials; ++t) {
    std::vector<bool> st(c.ffSites.size(), false);
    for (std::size_t k = 0; k < st.size(); ++k) st[k] = rng.below(2) != 0;
    me.setFfState(st);
    lc.restoreState(st);
    for (std::size_t i = 0; i < c.mapped.inputs.size(); ++i) {
      const bool v = rng.below(2) != 0;
      me.setInput(i, v);
      lc.setInput(c.mapped.inputs[i].name, v);
    }
    me.eval();
    lc.evaluate();
    for (std::size_t o = 0; o < c.mapped.outputs.size(); ++o) {
      if (me.output(o) != lc.output(c.mapped.outputs[o].name)) return true;
    }
  }
  return false;
}

/// All LUT truth-table bits of enabled cells whose entry index keeps every
/// *undriven* pin at 0 — the entries the device can actually exercise
/// (extraction cofactors undriven pins at 0, so other entries are
/// don't-care by construction).
std::vector<std::uint32_t> meaningfulLutBits(Device& dev) {
  const ConfigMap& cfg = dev.configMap();
  const std::uint32_t lutBits =
      static_cast<std::uint32_t>(dev.geometry().lutBits());
  std::vector<std::uint32_t> bits;
  for (const Elaboration::Cell& cell : dev.elaboration().cells) {
    std::uint32_t undrivenMask = 0;
    for (std::size_t p = 0; p < cell.inputs.size(); ++p) {
      if (cell.inputs[p].kind == SignalSource::Kind::kUndriven) {
        undrivenMask |= 1u << p;
      }
    }
    for (std::uint32_t j = 0; j < lutBits; ++j) {
      if ((j & undrivenMask) != 0) continue;
      bits.push_back(cfg.clbLutBit(cell.x, cell.y, j));
    }
  }
  return bits;
}

// ---- extraction round-trip -------------------------------------------------

TEST(Extraction, HealthyConfigurationRoundTrips) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  const auto ext = analysis::equiv::extractConfigured(cod.dev, cod.c);
  ASSERT_TRUE(ext.ok()) << (ext.problems.empty() ? ext.portProblems[0]
                                                 : ext.problems[0]);
  EXPECT_EQ(ext.mapped.inputs.size(), cod.c.mapped.inputs.size());
  EXPECT_EQ(ext.mapped.outputs.size(), cod.c.mapped.outputs.size());

  // Independent functional cross-check: lockstep the extracted netlist
  // against the source netlist from reset under random stimulus.
  const Netlist src = workloads::appCircuitByName("ct_counter").netlist;
  const Netlist got = mappedToNetlist(ext.mapped, "ct_counter@extracted");
  Evaluator es(src), eg(got);
  es.reset();
  eg.reset();
  Rng rng(7);
  for (int t = 0; t < 256; ++t) {
    for (GateId in : src.inputs()) {
      const bool v = rng.below(2) != 0;
      es.setInput(src.gate(in).name, v);
      eg.setInput(src.gate(in).name, v);
    }
    es.eval();
    eg.eval();
    for (GateId out : src.outputs()) {
      ASSERT_EQ(es.value(out), eg.output(src.gate(out).name))
          << "output " << src.gate(out).name << " diverged at cycle " << t;
    }
    es.tick();
    eg.tick();
  }
}

TEST(Extraction, BlankRegionIsNotEquivalent) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  cod.dev.clearConfig();  // circuit metadata now points at a blank fabric
  // A blank region still *decodes* (disabled output pads extract as
  // constant drivers) — it is the equivalence verdict that must fail.
  const ConfiguredCheck chk = checkConfigured(cod.dev, cod.c);
  EXPECT_FALSE(chk.ok());
  EXPECT_FALSE(chk.result.equivalent);
}

// ---- healthy circuits prove equivalent -------------------------------------

TEST(Equivalence, LibraryProvesPostPnrAndPostRelocate) {
  for (const workloads::AppCircuit& app : workloads::allSuites()) {
    CompiledOnDevice cod = compileNamed(app.name);

    const ConfiguredCheck pnr =
        checkConfiguredAgainst(cod.dev, cod.c, app.netlist);
    EXPECT_TRUE(pnr.ok()) << app.name << ": " << pnr.result.summary();
    EXPECT_TRUE(pnr.result.fullyProven)
        << app.name << ": " << pnr.result.summary();

    // Relocate to the far edge and prove the moved image still computes
    // the *source* netlist (not merely the pre-move image).
    Device dev2 = mediumPartialProfile().makeDevice();
    Compiler compiler2(dev2);
    const std::uint16_t newX0 =
        static_cast<std::uint16_t>(dev2.geometry().cols - cod.c.region.w);
    const CompiledCircuit moved = compiler2.relocate(cod.c, newX0);
    dev2.applyBitstream(moved.fullBitstream());
    const ConfiguredCheck rel =
        checkConfiguredAgainst(dev2, moved, app.netlist);
    EXPECT_TRUE(rel.ok()) << app.name << ": " << rel.result.summary();
    EXPECT_TRUE(rel.result.fullyProven)
        << app.name << ": " << rel.result.summary();
  }
}

// ---- seeded corruption corpus ----------------------------------------------

TEST(Corruption, SeededLutFlipCorpusIsFullyDetected) {
  // For every corruption whose effect the device-level oracle can observe,
  // the checker must report inequivalence with a replayable witness; and
  // whenever the checker claims equivalence the oracle must agree.
  int observable = 0;
  for (const char* name : {"ct_counter", "tc_crc8", "nw_parity", "ct_gray"}) {
    CompiledOnDevice cod = compileNamed(name);
    const std::vector<std::uint32_t> bits = meaningfulLutBits(cod.dev);
    ASSERT_FALSE(bits.empty());
    Rng rng(0xc0de ^ std::string_view(name).size());
    int observableHere = 0;
    for (std::size_t trial = 0; trial < bits.size() && observableHere < 6;
         ++trial) {
      const std::uint32_t bit = bits[trial];
      cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));

      const bool seen = corruptionObservable(cod.dev, cod.c, rng.next());
      const ConfiguredCheck chk = checkConfigured(cod.dev, cod.c);
      if (seen) {
        ++observable;
        ++observableHere;
        ASSERT_FALSE(chk.ok())
            << name << ": observable LUT flip at config bit " << bit
            << " escaped the checker (" << chk.result.summary() << ")";
        if (chk.extracted.ok()) {
          expectReplayableCounterexamples(cod.c, chk);
        }
      } else if (chk.ok()) {
        // consistent: neither side saw a functional change
      } else if (chk.extracted.ok()) {
        // Checker is strictly stronger than the sampling oracle: it may
        // catch flips the random trials missed — with a witness.
        expectReplayableCounterexamples(cod.c, chk);
      }

      cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));  // restore
      ASSERT_TRUE(checkConfigured(cod.dev, cod.c).ok());
    }
  }
  // The corpus must actually exercise the detection path, not vacuously
  // pass on unobservable flips.
  EXPECT_GE(observable, 16);
}

TEST(Corruption, RoutingMuxSwapCorpusIsDetected) {
  int exercised = 0;
  for (const char* name : {"ct_counter", "nw_checksum"}) {
    CompiledOnDevice cod = compileNamed(name);
    const RoutingGraph& rrg = cod.dev.rrg();
    const ConfigMap& cfg = cod.dev.configMap();

    // Candidate swaps: a CLB input pin whose active mux edge we turn off
    // while turning on a different incoming edge.
    std::vector<std::pair<RREdgeId, RREdgeId>> swaps;
    for (const Elaboration::Cell& cell : cod.dev.elaboration().cells) {
      for (std::size_t p = 0; p < cell.inputs.size(); ++p) {
        if (cell.inputs[p].kind == SignalSource::Kind::kUndriven) continue;
        const RRNodeId pin =
            rrg.clbIn(cell.x, cell.y, static_cast<int>(p));
        RREdgeId on = kNoRRNode;
        for (RREdgeId e : rrg.edgesInto(pin)) {
          if (cod.dev.image().get(cfg.edgeBit(e))) on = e;
        }
        if (on == kNoRRNode) continue;
        // Pair the active edge with every alternative; many alternatives
        // carry the *same* net on a sibling wire segment (functionally
        // silent swaps), so the corpus walks candidates until it has
        // accumulated enough observable ones.
        for (RREdgeId e : rrg.edgesInto(pin)) {
          if (e != on) swaps.push_back({on, e});
        }
      }
    }
    ASSERT_FALSE(swaps.empty());

    Rng rng(0x5a5a);
    int exercisedHere = 0;
    for (std::size_t trial = 0; trial < swaps.size() && exercisedHere < 4;
         ++trial) {
      const auto [on, off] = swaps[trial];
      cod.dev.setConfigBit(cfg.edgeBit(on), false);
      cod.dev.setConfigBit(cfg.edgeBit(off), true);

      const bool seen = corruptionObservable(cod.dev, cod.c, rng.next());
      const ConfiguredCheck chk = checkConfigured(cod.dev, cod.c);
      if (seen) {
        ++exercised;
        ++exercisedHere;
        EXPECT_FALSE(chk.ok())
            << name << ": observable mux swap escaped the checker ("
            << chk.result.summary() << ")";
        if (chk.extracted.ok()) {
          expectReplayableCounterexamples(cod.c, chk);
        }
      }

      cod.dev.setConfigBit(cfg.edgeBit(on), true);
      cod.dev.setConfigBit(cfg.edgeBit(off), false);
      ASSERT_TRUE(checkConfigured(cod.dev, cod.c).ok());
    }
  }
  EXPECT_GE(exercised, 6);
}

TEST(Corruption, CorruptedRelocatedStripIsDetected) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  Device dev2 = mediumPartialProfile().makeDevice();
  Compiler compiler2(dev2);
  const std::uint16_t newX0 =
      static_cast<std::uint16_t>(dev2.geometry().cols - cod.c.region.w);
  const CompiledCircuit moved = compiler2.relocate(cod.c, newX0);
  dev2.applyBitstream(moved.fullBitstream());
  ASSERT_TRUE(checkConfigured(dev2, moved).ok());

  // Corrupt inside the *relocated* strip and require detection there.
  const std::vector<std::uint32_t> bits = meaningfulLutBits(dev2);
  Rng rng(0xfeed);
  int detected = 0, seen = 0;
  for (std::size_t trial = 0; trial < bits.size() && seen < 4; ++trial) {
    const std::uint32_t bit = bits[trial];
    dev2.setConfigBit(bit, !dev2.image().get(bit));
    if (corruptionObservable(dev2, moved, rng.next())) {
      ++seen;
      const ConfiguredCheck chk = checkConfigured(dev2, moved);
      EXPECT_FALSE(chk.ok());
      if (!chk.ok()) ++detected;
      if (chk.extracted.ok()) expectReplayableCounterexamples(moved, chk);
    }
    dev2.setConfigBit(bit, !dev2.image().get(bit));
  }
  EXPECT_GE(seen, 4);
  EXPECT_EQ(detected, seen);
}

// ---- checker internals: residue, state, sequential ------------------------

TEST(Checker, TinyBoundsForceSimulationResidueAndEq004) {
  // Shrink the exhaustive bound and BDD budget until wide cones can only
  // be simulated: the verdict must degrade to "not fully proven" (EQ004
  // warning), never to a spurious inequivalence.
  CompiledOnDevice cod = compileNamed("nw_checksum");
  analysis::equiv::EquivOptions opt;
  opt.coneInputBound = 2;
  opt.bddNodeLimit = 1;  // clamps to the floor; real cones overflow it
  const workloads::AppCircuit app = workloads::appCircuitByName("nw_checksum");
  const ConfiguredCheck chk =
      checkConfiguredAgainst(cod.dev, cod.c, app.netlist, opt);
  ASSERT_TRUE(chk.extracted.ok());
  EXPECT_TRUE(chk.result.equivalent) << chk.result.summary();
  EXPECT_FALSE(chk.result.fullyProven);
  EXPECT_GT(chk.result.conesRandomSim, 0u);

  analysis::Report rep;
  analysis::equiv::lintEquivalence(chk, "nw_checksum", rep);
  EXPECT_EQ(rep.errorCount(), 0u);
  EXPECT_GT(rep.warningCount(), 0u);  // EQ004
}

TEST(Checker, DivergingInitialStateIsSequentialMismatch) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  const Netlist golden = mappedToNetlist(cod.c.mapped, "g");
  MappedNetlist tampered = cod.c.mapped;
  for (auto& cell : tampered.cells) {
    if (cell.hasFf) {
      cell.ffInit = !cell.ffInit;
      break;
    }
  }
  const Netlist revised = mappedToNetlist(tampered, "r");
  // Pin the identity register correspondence (as checkConfigured does via
  // CLB sites) so the divergence surfaces as a matched-pair state
  // mismatch rather than as unmatched residue.
  analysis::equiv::EquivOptions opt;
  for (std::uint32_t k = 0; k < golden.dffs().size(); ++k) {
    opt.pinnedFfPairs.emplace_back(k, k);
  }
  const auto res = analysis::equiv::checkEquivalence(golden, revised, opt);
  EXPECT_FALSE(res.equivalent);
  EXPECT_FALSE(res.stateMismatches.empty());
}

TEST(Checker, UnmatchedRegisterResidueFindsSequentialCounterexample) {
  // golden: out = dff(in); revised: out = dff(dff(in)) — the extra
  // pipeline stage cannot be matched, the whole endpoint is residue, and
  // only the lockstep oracle can (and must) find the off-by-one-cycle
  // divergence, as a replayable input trace.
  Netlist golden("one_stage");
  {
    const GateId in = golden.addInput("in");
    golden.addOutput("out", golden.addDff(in));
  }
  Netlist revised("two_stage");
  {
    const GateId in = revised.addInput("in");
    revised.addOutput("out", revised.addDff(revised.addDff(in)));
  }
  const auto res = analysis::equiv::checkEquivalence(golden, revised);
  EXPECT_FALSE(res.equivalent);
  ASSERT_FALSE(res.counterexamples.empty());
  EXPECT_TRUE(res.counterexamples[0].sequential);
  EXPECT_TRUE(replayCounterexample(golden, revised, res.counterexamples[0]))
      << res.counterexamples[0].render();
}

// ---- invariant form --------------------------------------------------------

TEST(VerifyConfigured, PassesCleanThrowsOnCorruption) {
  CompiledOnDevice cod = compileNamed("ct_gray");
  EXPECT_NO_THROW(
      analysis::equiv::verifyConfiguredOrThrow(cod.dev, cod.c, "test"));

  // Flip meaningful LUT bits until the oracle sees the corruption, then
  // the invariant form must throw.
  const std::vector<std::uint32_t> bits = meaningfulLutBits(cod.dev);
  Rng rng(3);
  for (int trial = 0; trial < 32; ++trial) {
    const std::uint32_t bit =
        bits[static_cast<std::size_t>(rng.below(bits.size()))];
    cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));
    if (corruptionObservable(cod.dev, cod.c, rng.next())) {
      EXPECT_THROW(
          analysis::equiv::verifyConfiguredOrThrow(cod.dev, cod.c, "test"),
          analysis::InvariantViolation);
      return;
    }
    cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));
  }
  FAIL() << "no observable corruption found in 32 trials";
}

// ---- timing lint -----------------------------------------------------------

TEST(TimingLint, CleanCircuitMeetsFamilyConstraints) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  analysis::Report rep;
  const TimingAnalysis ta = analysis::lintTiming(
      cod.dev, analysis::constraintsFor(mediumPartialProfile()), rep);
  EXPECT_EQ(ta.status, TimingStatus::kOk);
  EXPECT_TRUE(rep.clean()) << rep.renderText();
}

TEST(TimingLint, ImpossibleClockYieldsNegativeSlack) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  analysis::TimingConstraints tight;
  tight.clockPeriod = 1;  // ns: nothing on this fabric can meet that
  analysis::Report rep;
  analysis::lintTiming(cod.dev, tight, rep);
  EXPECT_GT(rep.errorCount(), 0u);
  bool sawTa001 = false;
  for (const auto& d : rep.diagnostics()) sawTa001 |= d.rule == "TA001";
  EXPECT_TRUE(sawTa001);
}

TEST(TimingLint, FaultedConfigurationIsTa006NotSilence) {
  Device dev = mediumPartialProfile().makeDevice();
  const ConfigMap& cfg = dev.configMap();
  // An enabled output pad with no driver is a configuration fault.
  dev.setConfigBit(cfg.padSlotEnableBit(0), true);
  dev.setConfigBit(cfg.padSlotOutputBit(0), true);
  ASSERT_FALSE(dev.configOk());

  analysis::Report rep;
  const TimingAnalysis ta = analysis::lintTiming(
      dev, analysis::constraintsFor(mediumPartialProfile()), rep);
  EXPECT_EQ(ta.status, TimingStatus::kConfigFaulted);
  EXPECT_GT(rep.errorCount(), 0u);
  bool sawTa006 = false;
  for (const auto& d : rep.diagnostics()) sawTa006 |= d.rule == "TA006";
  EXPECT_TRUE(sawTa006);
}

}  // namespace
}  // namespace vfpga
