// Fault-injection and fault-tolerance tests: seeded campaigns against the
// whole stack (wire corruption, truncated transfers, configuration upsets,
// snapshot rot, permanent strip failures, hangs) plus unit coverage of the
// quarantine allocator, frame-CRC verification and the readback scrubber.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "analysis/fault_lint.hpp"
#include "analysis/kernel_check.hpp"
#include "core/os_kernel.hpp"
#include "core/strip_allocator.hpp"
#include "fabric/device_family.hpp"
#include "fault/fault_plan.hpp"
#include "fault/recovery.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "workloads/taskset.hpp"

namespace vfpga {
namespace {

Netlist named(Netlist nl, const char* name) {
  nl.setName(name);
  return nl;
}

std::uint64_t faultCounter(OsKernel& kernel, FpgaPolicy policy,
                           const char* name) {
  return kernel.metricsRegistry()
      .counter(name, {{"policy", fpgaPolicyName(policy)}}, "")
      .value();
}

// ---- FaultPlan ------------------------------------------------------------

TEST(FaultPlan, SameSeedSameFaultSequence) {
  fault::FaultPlanSpec spec;
  spec.seed = 42;
  spec.downloadCorruptRate = 0.5;
  spec.downloadAbortRate = 0.3;
  spec.stateCorruptRate = 0.5;
  spec.meanUpsetsPerScrub = 2.0;
  spec.execHangRate = 0.4;
  fault::FaultPlan a(spec);
  fault::FaultPlan b(spec);

  const ConfigImage image(1024);
  for (int i = 0; i < 20; ++i) {
    Bitstream wa = makeFullBitstream(image, 128);
    Bitstream wb = makeFullBitstream(image, 128);
    const DownloadTamper ta = a.tamperDownload(wa);
    const DownloadTamper tb = b.tamperDownload(wb);
    EXPECT_EQ(ta.framesApplied, tb.framesApplied);
    EXPECT_EQ(ta.corrupted, tb.corrupted);
    for (std::size_t f = 0; f < wa.frames.size(); ++f) {
      EXPECT_EQ(wa.frames[f].payload, wb.frames[f].payload);
    }
    std::vector<bool> sa(64, false);
    std::vector<bool> sb(64, false);
    EXPECT_EQ(a.corruptState(sa), b.corruptState(sb));
    EXPECT_EQ(sa, sb);
    EXPECT_EQ(a.drawUpsets(4096), b.drawUpsets(4096));
    EXPECT_EQ(a.execHangs(), b.execHangs());
  }
  EXPECT_EQ(a.counters().corruptedDownloads, b.counters().corruptedDownloads);
  EXPECT_EQ(a.counters().upsets, b.counters().upsets);
  EXPECT_GT(a.counters().corruptedDownloads +
                a.counters().abortedDownloads + a.counters().upsets,
            0u);
}

TEST(FaultPlan, InertSpecInjectsNothing) {
  fault::FaultPlan plan(fault::FaultPlanSpec{});
  const ConfigImage image(256);
  for (int i = 0; i < 10; ++i) {
    Bitstream bs = makeFullBitstream(image, 64);
    const Bitstream before = bs;
    const DownloadTamper t = plan.tamperDownload(bs);
    EXPECT_EQ(t.framesApplied, kAllFrames);
    EXPECT_FALSE(t.corrupted);
    std::vector<bool> state(32, true);
    EXPECT_FALSE(plan.corruptState(state));
    EXPECT_TRUE(plan.drawUpsets(1024).empty());
    EXPECT_FALSE(plan.execHangs());
  }
  EXPECT_EQ(plan.counters().flippedBits, 0u);
}

// ---- quarantine allocator -------------------------------------------------

TEST(StripAllocatorQuarantine, VariableModeLosesOnlyTheFailedColumn) {
  StripAllocator alloc(12);
  alloc.quarantineColumn(5);
  EXPECT_EQ(alloc.quarantinedColumns(), 1);
  EXPECT_EQ(alloc.totalFree(), 11);
  EXPECT_EQ(alloc.largestFree(), 6);        // [6..11]
  EXPECT_EQ(alloc.largestUsableSpan(), 6);  // quarantine caps every future fit
  // The faulty column is never allocated: a full-width request now fails.
  EXPECT_FALSE(alloc.allocate(12).has_value());
  EXPECT_TRUE(alloc.allocate(6).has_value());
}

TEST(StripAllocatorQuarantine, FixedModeLosesTheWholePartition) {
  StripAllocator alloc(12, {4, 4, 4});
  alloc.quarantineColumn(5);
  EXPECT_EQ(alloc.quarantinedColumns(), 4);
  EXPECT_EQ(alloc.totalFree(), 8);
}

TEST(StripAllocatorQuarantine, BusyStripMustBeEvacuatedFirst) {
  StripAllocator alloc(12);
  const auto id = alloc.allocate(4);
  ASSERT_TRUE(id.has_value());
  EXPECT_THROW(alloc.quarantineColumn(2), std::logic_error);
  alloc.release(*id);
  EXPECT_NO_THROW(alloc.quarantineColumn(2));
}

TEST(StripAllocatorQuarantine, CompactionPinsFaultyStrips) {
  StripAllocator alloc(12);
  const auto a = alloc.allocate(3);
  const auto b = alloc.allocate(3);
  ASSERT_TRUE(a && b);
  alloc.release(*a);             // idle [0..2], busy [3..5], idle [6..11]
  alloc.quarantineColumn(8);     // pin in the right idle region
  const auto moves = alloc.compact();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].toX0, 0);   // busy strip packed left of the pin
  for (const Strip& s : alloc.strips()) {
    if (s.faulty) {
      EXPECT_EQ(s.x0, 8);  // the pin did not move
    }
  }
  alloc.checkInvariants();
  // All idle space on one side of the pin consolidates.
  EXPECT_EQ(alloc.largestFreeAfterCompaction(), alloc.largestFree());
}

TEST(StripAllocatorQuarantine, Al005FlagsBusyFaultyStrip) {
  std::vector<Strip> strips = {
      Strip{1, 0, 4, true, true},    // busy AND faulty: the invariant breach
      Strip{2, 4, 8, false, false},
  };
  analysis::Report rep;
  analysis::verifyStrips(strips, 12, false, rep);
  bool found = false;
  for (const auto& d : rep.diagnostics()) {
    if (d.rule == "AL005") found = true;
  }
  EXPECT_TRUE(found);
}

// ---- frame CRC verify + scrub ---------------------------------------------

TEST(ConfigPortFaults, VerifyDetectsCorruptionAndRetryHeals) {
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  ConfigPort port(dev, prof.port);

  // Corrupt exactly the first attempt of every download.
  int attempt = 0;
  port.setTamperHook([&attempt](Bitstream& bs) {
    DownloadTamper t;
    if (attempt++ == 0 && !bs.frames.empty()) {
      bs.frames[0].payload[3] ^= 1;
      t.corrupted = true;
    }
    return t;
  });

  ConfigImage image(dev.configMap().totalBits());
  for (std::uint32_t b = 0; b < 64; ++b) image.set(b, (b % 3) == 0);
  const Bitstream bs = makeFullBitstream(image, dev.configMap().frameBits());

  fault::RecoveryOptions rec{true, 3, micros(50)};
  const fault::DownloadOutcome out = fault::downloadWithRetry(port, bs, rec);
  EXPECT_TRUE(out.ok);
  EXPECT_EQ(out.retries, 1);
  EXPECT_GT(out.verifyFailures, 0u);
  EXPECT_EQ(dev.image(), image);  // healed copy matches the intent
  EXPECT_GT(port.stats().verifyFailures, 0u);
}

TEST(ConfigPortFaults, RetryBudgetExhaustedReportsFailure) {
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  ConfigPort port(dev, prof.port);
  port.setTamperHook([](Bitstream& bs) {
    DownloadTamper t;
    t.framesApplied = bs.frames.size() / 2;  // every transfer truncated
    return t;
  });
  ConfigImage image(dev.configMap().totalBits());
  // Set bits in late frames too, so the truncated prefix provably differs.
  for (std::uint32_t b = 0; b < image.size(); b += 97) image.set(b, true);
  const Bitstream bs = makeFullBitstream(image, dev.configMap().frameBits());
  const fault::DownloadOutcome out =
      fault::downloadWithRetry(port, bs, fault::RecoveryOptions{true, 2});
  EXPECT_FALSE(out.ok);
  EXPECT_EQ(out.retries, 2);
  EXPECT_EQ(out.aborts, 3u);  // initial try + 2 retries, all truncated
}

TEST(ConfigPortFaults, ScrubRepairsUpsetsTowardGoldenImage) {
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  ConfigPort port(dev, prof.port);
  ConfigImage image(dev.configMap().totalBits());
  for (std::uint32_t b = 0; b < 256; b += 7) image.set(b, true);
  port.download(makeFullBitstream(image, dev.configMap().frameBits()));
  ASSERT_EQ(dev.image(), port.expectedImage());

  // Background upsets strike the configuration RAM directly.
  dev.setConfigBit(10, !dev.image().get(10));
  dev.setConfigBit(3000, !dev.image().get(3000));
  const ScrubResult res = port.scrub();
  EXPECT_EQ(res.repairedFrames, 2u);
  EXPECT_EQ(dev.image(), port.expectedImage());
  // A clean device scrubs clean.
  EXPECT_EQ(port.scrub().repairedFrames, 0u);
}

// ---- fault lint -----------------------------------------------------------

TEST(FaultLint, FlagsInconsistentKnobs) {
  analysis::FaultToleranceProfile p;
  p.downloadCorruptRate = 0.2;
  p.meanUpsetsPerScrub = 1.0;
  p.execHangRate = 0.1;
  p.anyStripFailures = true;
  p.verifyDownloads = false;
  p.scrubInterval = 0;
  p.watchdogFactor = 0.0;
  p.garbageCollect = false;
  analysis::Report rep;
  analysis::lintFaultTolerance(p, rep);
  std::vector<std::string> rules;
  for (const auto& d : rep.diagnostics()) rules.push_back(d.rule);
  EXPECT_NE(std::find(rules.begin(), rules.end(), "FT001"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "FT003"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "FT005"), rules.end());
  EXPECT_NE(std::find(rules.begin(), rules.end(), "FT006"), rules.end());
}

TEST(FaultLint, SilentOnSoundConfiguration) {
  analysis::FaultToleranceProfile p;
  p.downloadCorruptRate = 0.2;
  p.meanUpsetsPerScrub = 1.0;
  p.execHangRate = 0.1;
  p.anyStripFailures = true;
  p.verifyDownloads = true;
  p.maxDownloadRetries = 3;
  p.scrubInterval = micros(500);
  p.watchdogFactor = 4.0;
  p.garbageCollect = true;
  analysis::Report rep;
  analysis::lintFaultTolerance(p, rep);
  EXPECT_TRUE(rep.diagnostics().empty());
}

// ---- end-to-end campaigns -------------------------------------------------

struct CampaignEnv {
  Device dev;
  ConfigPort port;
  Compiler compiler;
  explicit CampaignEnv(const DeviceProfile& prof)
      : dev(prof.makeDevice()), port(dev, prof.port), compiler(dev) {}
};

std::vector<ConfigId> registerThree(OsKernel& kernel, Compiler& compiler,
                                    Device& dev) {
  const Region strip = Region::columns(dev.geometry(), 0, 4);
  return {
      kernel.registerConfig(
          compiler.compile(named(lib::makeCounter(6), "count"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeChecksum(6), "csum"), strip)),
      kernel.registerConfig(
          compiler.compile(named(lib::makeLfsr(8, 0b10111000), "lfsr"), strip)),
  };
}

TaskSpec campaignTask(std::size_t i, ConfigId cfg) {
  TaskSpec t;
  t.name = "ft" + std::to_string(i);
  t.arrival = static_cast<SimTime>(i) * micros(150);
  t.ops = {CpuBurst{micros(30)}, FpgaExec{cfg, 20000 + 5000 * i},
           CpuBurst{micros(20)}};
  return t;
}

/// The CI campaign (same knobs as `vfpga_cli faults --campaign ci`): every
/// fault class fires, every task still finishes, and the recovery path
/// demonstrably did work (repairs, retries, a quarantine relocation).
TEST(FaultCampaign, ScriptedCampaignSurvivesWithRecoveries) {
  fault::FaultPlanSpec spec;
  spec.seed = 7;
  spec.downloadCorruptRate = 0.25;
  spec.downloadAbortRate = 0.15;
  spec.stateCorruptRate = 0.20;
  spec.meanUpsetsPerScrub = 1.5;
  spec.execHangRate = 0.10;
  spec.stripFailures = {{millis(2), 2}, {millis(5), 9}};
  fault::FaultPlan plan(spec);

  CampaignEnv env(mediumPartialProfile());
  Simulation sim;
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  opt.ft.plan = &plan;
  opt.ft.scrubInterval = micros(500);
  opt.ft.recovery = fault::RecoveryOptions{true, 4, micros(50)};
  opt.ft.watchdogFactor = 4.0;
  OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
  const auto cfgs = registerThree(kernel, env.compiler, env.dev);
  for (std::size_t i = 0; i < 8; ++i) {
    kernel.addTask(campaignTask(i, cfgs[i % 3]));
  }
  kernel.run();
  kernel.checkInvariants();

  for (const TaskRuntime& t : kernel.tasks()) {
    EXPECT_EQ(t.state, TaskState::kDone) << t.spec.name;
  }
  EXPECT_EQ(kernel.metrics().tasksParked, 0u);
  auto c = [&](const char* name) {
    return faultCounter(kernel, opt.policy, name);
  };
  EXPECT_GT(c("vfpga_fault_scrub_repaired_frames_total"), 0u);
  EXPECT_GT(c("vfpga_fault_download_retries_total"), 0u);
  EXPECT_EQ(c("vfpga_fault_strips_quarantined_total"), 2u);
  EXPECT_GE(c("vfpga_fault_quarantine_relocations_total"), 1u);
  EXPECT_GT(c("vfpga_fault_upsets_total"), 0u);
  // The final scrub left the device decodable despite everything.
  EXPECT_TRUE(env.dev.configOk());
}

TEST(FaultCampaign, RetryBudgetExhaustedParksTaskWithDiagnostic) {
  setenv("VFPGA_FLIGHT_DIR", ::testing::TempDir().c_str(), 1);
  fault::FaultPlanSpec spec;
  spec.seed = 11;
  spec.downloadAbortRate = 1.0;  // every transfer truncated, forever
  fault::FaultPlan plan(spec);

  CampaignEnv env(mediumPartialProfile());
  Simulation sim;
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  opt.ft.plan = &plan;
  opt.ft.recovery = fault::RecoveryOptions{true, 0, micros(50)};
  OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
  const auto cfgs = registerThree(kernel, env.compiler, env.dev);
  kernel.addTask(campaignTask(0, cfgs[0]));
  kernel.run();  // graceful degradation: drains instead of throwing

  EXPECT_EQ(kernel.tasks()[0].state, TaskState::kParked);
  EXPECT_EQ(kernel.metrics().tasksParked, 1u);
  // The park is recorded in the trace for the post-mortem.
  bool recorded = false;
  for (const auto& e : kernel.trace().records()) {
    if (e.detail.find("parked") != std::string::npos) recorded = true;
  }
  EXPECT_TRUE(recorded);
}

TEST(FaultCampaign, WholeDeviceDownloadFailureParksTask) {
  setenv("VFPGA_FLIGHT_DIR", ::testing::TempDir().c_str(), 1);
  fault::FaultPlanSpec spec;
  spec.seed = 5;
  spec.downloadAbortRate = 1.0;
  fault::FaultPlan plan(spec);

  CampaignEnv env(mediumPartialProfile());
  Simulation sim;
  OsOptions opt;
  opt.policy = FpgaPolicy::kDynamicLoading;
  opt.ft.plan = &plan;
  opt.ft.recovery = fault::RecoveryOptions{true, 1, micros(50)};
  OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
  const auto cfgs = registerThree(kernel, env.compiler, env.dev);
  kernel.addTask(campaignTask(0, cfgs[0]));
  kernel.addTask(campaignTask(1, cfgs[1]));
  kernel.run();

  EXPECT_EQ(kernel.metrics().tasksParked, 2u);
}

TEST(FaultCampaign, StateCorruptionDetectedAndTaskStillFinishes) {
  fault::FaultPlanSpec spec;
  spec.seed = 13;
  spec.stateCorruptRate = 1.0;  // every saved snapshot rots
  fault::FaultPlan plan(spec);

  CampaignEnv env(mediumPartialProfile());
  Simulation sim;
  OsOptions opt;
  opt.policy = FpgaPolicy::kDynamicLoading;
  opt.fpgaSlice = micros(100);  // force preemptions -> state save/restore
  opt.ft.plan = &plan;
  opt.ft.recovery = fault::RecoveryOptions{true, 3, micros(50)};
  OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
  const auto cfgs = registerThree(kernel, env.compiler, env.dev);
  kernel.addTask(campaignTask(0, cfgs[0]));
  kernel.addTask(campaignTask(1, cfgs[1]));
  kernel.run();

  for (const TaskRuntime& t : kernel.tasks()) {
    EXPECT_EQ(t.state, TaskState::kDone) << t.spec.name;
  }
  // Snapshot rot was caught by the CRC (restarted from initial state
  // rather than resuming with garbage).
  EXPECT_GT(faultCounter(kernel, opt.policy,
                         "vfpga_fault_state_corruptions_total"),
            0u);
}

// ---- fuzz under faults ----------------------------------------------------

struct FaultFuzzRun {
  std::uint64_t finished = 0;
  std::uint64_t parked = 0;
  std::vector<SimTime> finishTimes;
  SimTime makespan = 0;
};

FaultFuzzRun runFaultFuzz(FpgaPolicy policy, std::uint64_t seed) {
  fault::FaultPlanSpec spec;
  spec.seed = seed * 1000 + 17;
  spec.downloadCorruptRate = 0.2;
  spec.downloadAbortRate = 0.1;
  spec.stateCorruptRate = 0.2;
  spec.meanUpsetsPerScrub = 1.0;
  spec.execHangRate = 0.05;
  if (policy == FpgaPolicy::kPartitionedVariable) {
    spec.stripFailures = {{millis(3), 5}};
  }
  fault::FaultPlan plan(spec);

  CampaignEnv env(mediumPartialProfile());
  Simulation sim;
  OsOptions opt;
  opt.policy = policy;
  if (policy == FpgaPolicy::kDynamicLoading) opt.fpgaSlice = millis(1);
  opt.ft.plan = &plan;
  opt.ft.scrubInterval = micros(500);
  opt.ft.recovery = fault::RecoveryOptions{true, 3, micros(50)};
  opt.ft.watchdogFactor = 4.0;
  OsKernel kernel(sim, env.dev, env.port, env.compiler, opt);
  const auto cfgs = registerThree(kernel, env.compiler, env.dev);
  (void)cfgs;

  Rng rng(seed);
  workloads::TaskSetParams params;
  params.numTasks = 4 + rng.below(6);
  params.numConfigs = 3;
  params.execsPerTask = 1 + rng.below(3);
  params.minCycles = 1000;
  params.maxCycles = 100000;
  params.meanArrivalGapMs = 0.2 + rng.uniform();
  params.meanCpuBurstMs = 0.05 + rng.uniform() * 0.3;
  params.configZipf = rng.uniform() * 1.5;
  params.oneConfigPerTask = rng.bernoulli(0.5);
  for (auto& ts : workloads::makeTaskSet(params, rng)) {
    kernel.addTask(ts);
  }
  kernel.run();
  kernel.checkInvariants();

  FaultFuzzRun out;
  for (const TaskRuntime& t : kernel.tasks()) {
    if (t.state == TaskState::kDone) ++out.finished;
    if (t.state == TaskState::kParked) ++out.parked;
    out.finishTimes.push_back(t.finish);
  }
  out.makespan = kernel.metrics().makespan;
  // Every task reached a terminal state; nothing leaked out of the state
  // machine even under nonzero fault rates.
  EXPECT_EQ(out.finished + out.parked, kernel.tasks().size());
  EXPECT_TRUE(env.dev.configOk()) << env.dev.elaboration().faults.front();
  return out;
}

class FaultFuzz
    : public ::testing::TestWithParam<std::tuple<FpgaPolicy, std::uint64_t>> {
};

TEST_P(FaultFuzz, InvariantsHoldAndRunsAreDeterministic) {
  const auto [policy, seed] = GetParam();
  const FaultFuzzRun a = runFaultFuzz(policy, seed);
  const FaultFuzzRun b = runFaultFuzz(policy, seed);
  EXPECT_EQ(a.finished, b.finished);
  EXPECT_EQ(a.parked, b.parked);
  EXPECT_EQ(a.finishTimes, b.finishTimes);
  EXPECT_EQ(a.makespan, b.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    Campaigns, FaultFuzz,
    ::testing::Combine(::testing::Values(FpgaPolicy::kDynamicLoading,
                                         FpgaPolicy::kPartitionedVariable),
                       ::testing::Values(1u, 2u, 3u)));

}  // namespace
}  // namespace vfpga
