// Compiled fast path tests: differential fuzz of the levelized engine and
// the 64-wide batch evaluator against the interpretive Device walk
// (lockstep over the full circuit library, post-relocation, post-scrub-
// repair, post-migration-resume and on seeded-corruption images), the
// mandatory-invalidation contract on every reconfiguration path, the
// probe/tamper fallback matrix, kernel-cache sharing, thread-count
// determinism of the DevicePool parallel replay, and the CP lint rules.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/compiled_lint.hpp"
#include "cluster/device_pool.hpp"
#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "fabric/config_port.hpp"
#include "fabric/device_family.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/coding.hpp"
#include "sim/compiled/batch.hpp"
#include "sim/compiled/compiled_fabric.hpp"
#include "sim/compiled/oracle.hpp"
#include "sim/rng.hpp"
#include "workloads/app_circuits.hpp"
#include "workloads/compile_suite.hpp"

namespace vfpga {
namespace {

using compiled::BatchEvaluator;
using compiled::CompiledFabric;
using compiled::CompiledKernelCache;
using compiled::OracleOptions;
using compiled::OracleReport;
using compiled::runDifferentialOracle;

struct CompiledOnDevice {
  Device dev;
  CompiledCircuit c;
};

CompiledOnDevice compileNamed(const std::string& name,
                              std::uint64_t seed = 1) {
  const workloads::AppCircuit app = workloads::appCircuitByName(name);
  CompiledOnDevice r{mediumPartialProfile().makeDevice(), {}};
  Compiler compiler(r.dev);
  r.c = workloads::compileMinimal(compiler, app.netlist, seed);
  r.dev.applyBitstream(r.c.fullBitstream());
  return r;
}

/// Config bits whose flip changes the configured function (reachable LUT
/// table entries) — the corruption corpus generator.
std::vector<std::uint32_t> meaningfulLutBits(Device& dev) {
  const ConfigMap& cfg = dev.configMap();
  const std::uint32_t lutBits =
      static_cast<std::uint32_t>(dev.geometry().lutBits());
  std::vector<std::uint32_t> bits;
  for (const Elaboration::Cell& cell : dev.elaboration().cells) {
    std::uint32_t undrivenMask = 0;
    for (std::size_t p = 0; p < cell.inputs.size(); ++p) {
      if (cell.inputs[p].kind == SignalSource::Kind::kUndriven) {
        undrivenMask |= 1u << p;
      }
    }
    for (std::uint32_t j = 0; j < lutBits; ++j) {
      if ((j & undrivenMask) != 0) continue;
      bits.push_back(cfg.clbLutBit(cell.x, cell.y, j));
    }
  }
  return bits;
}

std::string problemText(const OracleReport& rep) {
  std::string s;
  for (const std::string& p : rep.problems) s += p + "; ";
  return s;
}

// ---- differential fuzz: full library lockstep ------------------------------

TEST(Oracle, LibraryLockstepScalarAndBatch) {
  for (const workloads::AppCircuit& app : workloads::allSuites()) {
    CompiledOnDevice cod = compileNamed(app.name);
    OracleOptions opt;
    opt.cycles = 80;  // >= 64 per the campaign contract
    const OracleReport rep = runDifferentialOracle(cod.dev, cod.c, opt);
    EXPECT_TRUE(rep.ok()) << app.name << ": " << problemText(rep);
    EXPECT_TRUE(rep.servedCompiled) << app.name;
    EXPECT_TRUE(rep.extractionOk) << app.name;
    EXPECT_GT(rep.programOps, 0u) << app.name;
  }
}

TEST(Oracle, ReportIsDeterministic) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  const OracleReport a = runDifferentialOracle(cod.dev, cod.c);
  const OracleReport b = runDifferentialOracle(cod.dev, cod.c);
  EXPECT_EQ(a.referenceDigest, b.referenceDigest);
  EXPECT_EQ(a.divergences, b.divergences);
  EXPECT_EQ(a.programOps, b.programOps);
}

TEST(Oracle, PostRelocateLockstep) {
  for (const char* name : {"ct_counter", "tc_crc8", "nw_parity"}) {
    CompiledOnDevice cod = compileNamed(name);
    Device dev2 = mediumPartialProfile().makeDevice();
    Compiler compiler2(dev2);
    const std::uint16_t newX0 =
        static_cast<std::uint16_t>(dev2.geometry().cols - cod.c.region.w);
    const CompiledCircuit moved = compiler2.relocate(cod.c, newX0);
    dev2.applyBitstream(moved.fullBitstream());
    OracleOptions opt;
    opt.cycles = 64;
    const OracleReport rep = runDifferentialOracle(dev2, moved, opt);
    EXPECT_TRUE(rep.ok()) << name << ": " << problemText(rep);
    EXPECT_TRUE(rep.servedCompiled) << name;
  }
}

TEST(Oracle, SeededCorruptionCorpusNeverDiverges) {
  // Compiled and interpretive evaluation must agree on what a corrupted
  // image computes, whatever that is — silent disagreement is the one
  // forbidden outcome. Extraction is not required to succeed here.
  for (const char* name : {"ct_counter", "tc_crc8", "ct_gray"}) {
    CompiledOnDevice cod = compileNamed(name);
    const std::vector<std::uint32_t> bits = meaningfulLutBits(cod.dev);
    ASSERT_FALSE(bits.empty());
    Rng rng(0xfeed ^ std::string_view(name).size());
    for (int trial = 0; trial < 6; ++trial) {
      const std::uint32_t bit = bits[rng.next() % bits.size()];
      cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));
      OracleOptions opt;
      opt.cycles = 64;
      opt.checkExtraction = false;
      const OracleReport rep = runDifferentialOracle(cod.dev, cod.c, opt);
      EXPECT_EQ(rep.divergences, 0u)
          << name << " flip @" << bit << ": " << problemText(rep);
      cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));
    }
  }
}

TEST(Oracle, FaultedConfigurationFallsBackAndStillAgrees) {
  // Crossing two output-pad drivers (or otherwise breaking elaboration)
  // must make the engine decline — both phases then run interpretively and
  // the lockstep still holds.
  CompiledOnDevice cod = compileNamed("ct_counter");
  // Flip arbitrary switch bits until the elaboration faults.
  Rng rng(7);
  const std::uint32_t total = cod.dev.configMap().totalBits();
  for (int i = 0; i < 2000 && cod.dev.configOk(); ++i) {
    const std::uint32_t bit = rng.next() % total;
    cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));
  }
  if (!cod.dev.configOk()) {
    OracleOptions opt;
    opt.cycles = 64;
    opt.checkExtraction = false;
    opt.batch = false;
    const OracleReport rep = runDifferentialOracle(cod.dev, cod.c, opt);
    EXPECT_EQ(rep.divergences, 0u) << problemText(rep);
    EXPECT_FALSE(rep.servedCompiled);
  }
}

// ---- invalidation contract -------------------------------------------------

TEST(Engine, InvalidationOnEveryReconfigurationPath) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  CompiledFabric engine(cod.dev);
  cod.dev.evaluate();
  EXPECT_EQ(engine.stats().builds, 1u);
  EXPECT_EQ(engine.stats().invalidations, 0u);

  // Direct config-bit poke (the scrub-repair / upset write primitive).
  const std::uint32_t bit = meaningfulLutBits(cod.dev).front();
  cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));
  cod.dev.evaluate();
  EXPECT_EQ(engine.stats().invalidations, 1u);
  EXPECT_EQ(engine.stats().builds, 2u);

  // Full download (also the relocate / migration-resume path).
  cod.dev.applyBitstream(cod.c.fullBitstream());
  cod.dev.evaluate();
  EXPECT_EQ(engine.stats().invalidations, 2u);

  // Quarantine blanking.
  cod.dev.clearConfig();
  cod.dev.evaluate();
  EXPECT_EQ(engine.stats().invalidations, 3u);
  EXPECT_EQ(engine.programGeneration(), cod.dev.configGeneration());
}

TEST(Engine, ScrubRepairInvalidatesAndRestoresFunction) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  ConfigPort port(cod.dev, mediumPartialProfile().port);
  port.resyncExpected();
  CompiledFabric engine(cod.dev);
  cod.dev.evaluate();  // prime: resolve the program for the clean image
  OracleOptions opt;
  opt.cycles = 64;
  const std::uint64_t cleanDigest =
      runDifferentialOracle(cod.dev, cod.c, opt).referenceDigest;

  // An upset lands; the scrubber repairs it through the port.
  const std::uint32_t bit = meaningfulLutBits(cod.dev).front();
  cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));
  const ScrubResult sr = port.scrub();
  EXPECT_GE(sr.repairedFrames, 1u);

  const OracleReport rep = runDifferentialOracle(cod.dev, cod.c, opt);
  EXPECT_TRUE(rep.ok()) << problemText(rep);
  EXPECT_EQ(rep.referenceDigest, cleanDigest);
  // The upset and the repair each bumped the generation past the program.
  cod.dev.evaluate();
  EXPECT_GE(engine.stats().invalidations, 1u);
  EXPECT_EQ(engine.programGeneration(), cod.dev.configGeneration());
}

TEST(Engine, MigrationResumeLockstep) {
  // Save state -> quarantine blanking -> resume the relocated circuit on
  // the far strip -> restore state: the compiled path must pick up the new
  // image and the restored registers exactly.
  CompiledOnDevice cod = compileNamed("ct_counter");
  Device ref = mediumPartialProfile().makeDevice();
  ref.applyBitstream(cod.c.fullBitstream());

  CompiledFabric engine(cod.dev);
  LoadedCircuit run(cod.dev, cod.c);
  LoadedCircuit refRun(ref, cod.c);
  run.applyInitialState();
  refRun.applyInitialState();
  for (int i = 0; i < 10; ++i) {
    run.setInput("en", true);
    refRun.setInput("en", true);
    run.evaluate();
    refRun.evaluate();
    run.tick();
    refRun.tick();
  }
  const std::vector<bool> saved = run.saveState();

  cod.dev.clearConfig();  // preempted: strip blanked
  Compiler compiler(cod.dev);
  const std::uint16_t newX0 =
      static_cast<std::uint16_t>(cod.dev.geometry().cols - cod.c.region.w);
  const CompiledCircuit moved = compiler.relocate(cod.c, newX0);
  cod.dev.applyBitstream(moved.fullBitstream());
  LoadedCircuit resumed(cod.dev, moved);
  resumed.restoreState(saved);

  for (int i = 0; i < 64; ++i) {
    resumed.setInput("en", true);
    refRun.setInput("en", true);
    resumed.evaluate();
    refRun.evaluate();
    EXPECT_EQ(resumed.outputBus("q", 8), refRun.outputBus("q", 8)) << i;
    resumed.tick();
    refRun.tick();
  }
  EXPECT_GE(engine.stats().invalidations, 1u);
  EXPECT_GT(engine.stats().compiledEvaluates, 0u);
}

// ---- fallback matrix -------------------------------------------------------

TEST(Engine, ProbeAttachForcesInterpretiveAndCountersAgree) {
  // Two identically configured devices, both probed; one also carries a
  // compiled engine. Probe counters and outputs must be identical — the
  // engine must not serve (and must count fallbacks) while the probe needs
  // per-site activity.
  CompiledOnDevice a = compileNamed("ct_counter");
  CompiledOnDevice b = compileNamed("ct_counter");
  CompiledFabric engine(a.dev);
  ActivityProbe pa, pb;
  a.dev.attachActivityProbe(&pa);
  b.dev.attachActivityProbe(&pb);

  LoadedCircuit la(a.dev, a.c), lb(b.dev, b.c);
  for (int i = 0; i < 32; ++i) {
    la.setInput("en", true);
    lb.setInput("en", true);
    la.evaluate();
    lb.evaluate();
    EXPECT_EQ(la.outputBus("q", 8), lb.outputBus("q", 8)) << i;
    la.tick();
    lb.tick();
  }
  EXPECT_EQ(engine.stats().compiledEvaluates, 0u);
  EXPECT_GT(engine.stats().fallbacks, 0u);
  EXPECT_FALSE(engine.lastServedCompiled());

  const std::vector<ActivitySite> sa = pa.sites();
  const std::vector<ActivitySite> sb = pb.sites();
  ASSERT_EQ(sa.size(), sb.size());
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].evals, sb[i].evals) << "site " << i;
    EXPECT_EQ(sa[i].toggles, sb[i].toggles) << "site " << i;
  }

  // Probe detached: the engine resumes service.
  a.dev.attachActivityProbe(nullptr);
  a.dev.evaluate();
  EXPECT_GT(engine.stats().compiledEvaluates, 0u);
  EXPECT_TRUE(engine.lastServedCompiled());
}

TEST(Engine, TamperHookInhibitsFastPath) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  ConfigPort port(cod.dev, mediumPartialProfile().port);
  CompiledFabric engine(cod.dev);
  cod.dev.evaluate();
  EXPECT_TRUE(engine.lastServedCompiled());

  port.setTamperHook([](Bitstream&) { return DownloadTamper{}; });
  EXPECT_TRUE(cod.dev.fastPathInhibited());
  cod.dev.evaluate();
  EXPECT_FALSE(engine.lastServedCompiled());
  EXPECT_GT(engine.stats().fallbacks, 0u);

  port.setTamperHook(nullptr);
  EXPECT_FALSE(cod.dev.fastPathInhibited());
  cod.dev.evaluate();
  EXPECT_TRUE(engine.lastServedCompiled());
}

// ---- kernel cache ----------------------------------------------------------

TEST(Engine, CacheSharesProgramsAcrossDevices) {
  CompiledOnDevice a = compileNamed("ct_counter");
  CompiledOnDevice b = compileNamed("ct_counter");
  CompiledKernelCache cache(8);
  CompiledFabric ea(a.dev, &cache);
  CompiledFabric eb(b.dev, &cache);
  a.dev.evaluate();
  b.dev.evaluate();
  EXPECT_EQ(ea.stats().builds, 1u);
  EXPECT_EQ(eb.stats().builds, 0u);
  EXPECT_EQ(eb.stats().hits, 1u);
  EXPECT_EQ(ea.program().get(), eb.program().get());
  EXPECT_EQ(cache.stats().insertions, 1u);

  // A different image is a different key.
  Device blank = mediumPartialProfile().makeDevice();
  CompiledFabric eBlank(blank, &cache);
  blank.evaluate();
  EXPECT_EQ(eBlank.stats().hits, 0u);
  EXPECT_EQ(cache.size(), 2u);
}

// ---- levelizer -------------------------------------------------------------

TEST(Levelize, ScheduleIsDeterministicAndTopological) {
  CompiledOnDevice cod = compileNamed("tc_crc8");
  const auto p1 = compiled::levelizeDevice(cod.dev);
  const auto p2 = compiled::levelizeDevice(cod.dev);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p1->digest, p2->digest);
  ASSERT_EQ(p1->comb.size(), p2->comb.size());
  for (std::size_t i = 0; i < p1->comb.size(); ++i) {
    EXPECT_EQ(p1->comb[i].out, p2->comb[i].out);
    EXPECT_EQ(p1->comb[i].table, p2->comb[i].table);
  }
  EXPECT_GT(p1->levels(), 0u);

  // Every comb op reads only slots produced at lower levels (or FF/pad
  // slots, which are written before level 0 runs).
  std::vector<std::uint32_t> producedAtLevel(p1->tapeSize, 0);
  for (std::size_t lvl = 0; lvl < p1->levels(); ++lvl) {
    for (std::uint32_t i = p1->levelStart[lvl]; i < p1->levelStart[lvl + 1];
         ++i) {
      producedAtLevel[p1->comb[i].out] = static_cast<std::uint32_t>(lvl + 1);
    }
  }
  std::vector<bool> seen(p1->tapeSize, false);
  for (std::size_t lvl = 0; lvl < p1->levels(); ++lvl) {
    for (std::uint32_t i = p1->levelStart[lvl]; i < p1->levelStart[lvl + 1];
         ++i) {
      for (unsigned k = 0; k < p1->lutInputs; ++k) {
        const std::uint32_t src = p1->comb[i].in[k];
        if (producedAtLevel[src] != 0) {
          EXPECT_LE(producedAtLevel[src], lvl) << "op " << i << " input " << k;
        }
      }
      seen[p1->comb[i].out] = true;
    }
  }
}

TEST(Levelize, DeclinesFaultedElaboration) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  Rng rng(11);
  const std::uint32_t total = cod.dev.configMap().totalBits();
  for (int i = 0; i < 2000 && cod.dev.configOk(); ++i) {
    const std::uint32_t bit = rng.next() % total;
    cod.dev.setConfigBit(bit, !cod.dev.image().get(bit));
  }
  if (!cod.dev.configOk()) {
    EXPECT_EQ(compiled::levelizeDevice(cod.dev), nullptr);
  }
}

// ---- batch evaluator -------------------------------------------------------

TEST(Batch, AllLanesIndependent) {
  // Lane i counts iff its enable bit is set: after N cycles lane i's
  // counter must equal N for enabled lanes and 0 for the rest.
  CompiledOnDevice cod = compileNamed("ct_counter");
  const auto program = compiled::levelizeDevice(cod.dev);
  ASSERT_NE(program, nullptr);
  BatchEvaluator be(program);
  const std::uint32_t en = cod.c.padSlotOf("en");
  const std::uint64_t enabled = 0xa5a5a5a5f00f0ff0ull;
  std::vector<std::uint32_t> qSlots;
  for (int b = 0; b < 8; ++b) {
    qSlots.push_back(cod.c.padSlotOf("q" + std::to_string(b)));
  }
  be.resetFfs();
  const int cycles = 13;
  for (int i = 0; i < cycles; ++i) {
    be.setPadInput(en, enabled);
    be.evaluate();
    be.tick();
  }
  be.setPadInput(en, enabled);
  be.evaluate();
  for (unsigned lane = 0; lane < BatchEvaluator::kLanes; ++lane) {
    std::uint64_t q = 0;
    for (int b = 0; b < 8; ++b) {
      q |= ((be.padOutput(qSlots[b]) >> lane) & 1) << b;
    }
    const std::uint64_t want = (enabled >> lane) & 1 ? cycles : 0;
    EXPECT_EQ(q, want) << "lane " << lane;
  }
}

// ---- pool parallel replay --------------------------------------------------

TEST(Pool, ReplayIsByteIdenticalAcrossThreadCountsAndEngines) {
  Simulation sim;
  cluster::BitstreamCache cache(8);
  std::vector<cluster::DeviceNodeSpec> specs(3);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "dev" + std::to_string(i);
    specs[i].profile = mediumPartialProfile();
  }
  cluster::DevicePool pool(sim, specs, cache);
  Netlist nl = lib::makeSerialCrc(8, 0x07);
  nl.setName("crc8");
  const cluster::WorkloadId w = pool.registerWorkload("crc8", nl, 4);

  cluster::FabricReplaySpec spec;
  spec.workload = w;
  spec.cycles = 3000;
  spec.syncEvery = 512;
  spec.threads = 1;
  const cluster::FabricReplayResult seq = pool.replayFabrics(spec);
  spec.threads = 4;
  const cluster::FabricReplayResult par = pool.replayFabrics(spec);

  ASSERT_EQ(seq.devices.size(), par.devices.size());
  EXPECT_EQ(seq.mergedDigest, par.mergedDigest);
  for (std::size_t d = 0; d < seq.devices.size(); ++d) {
    EXPECT_EQ(seq.devices[d].digest, par.devices[d].digest) << d;
    EXPECT_EQ(seq.devices[d].syncPoints, par.devices[d].syncPoints) << d;
    EXPECT_GT(seq.devices[d].stats.compiledEvaluates, 0u) << d;
  }

  // The compiled replay must equal the interpretive replay bit for bit.
  spec.compiledFastPath = false;
  spec.threads = 2;
  const cluster::FabricReplayResult interp = pool.replayFabrics(spec);
  EXPECT_EQ(interp.mergedDigest, seq.mergedDigest);
  for (std::size_t d = 0; d < interp.devices.size(); ++d) {
    EXPECT_EQ(interp.devices[d].stats.compiledEvaluates, 0u) << d;
  }

  // Kernel-cache reuse: identical images across the pool levelize once.
  EXPECT_GE(pool.kernelCache().stats().hits, 2u);
}

// ---- CP lint rules ---------------------------------------------------------

analysis::CompiledPathProfile healthyProfile() {
  analysis::CompiledPathProfile p;
  p.kernelAttached = true;
  p.programReady = true;
  p.programGeneration = 7;
  p.deviceGeneration = 7;
  p.cacheCapacity = 64;
  return p;
}

TEST(CompiledLint, CleanProfilePasses) {
  analysis::Report rep;
  analysis::lintCompiledPath(healthyProfile(), rep);
  EXPECT_TRUE(rep.ok());
  EXPECT_TRUE(rep.diagnostics().empty());
}

TEST(CompiledLint, StaleGenerationIsCp001) {
  analysis::CompiledPathProfile p = healthyProfile();
  p.deviceGeneration = 9;
  analysis::Report rep;
  analysis::lintCompiledPath(p, rep);
  ASSERT_EQ(rep.diagnostics().size(), 1u);
  EXPECT_EQ(rep.diagnostics()[0].rule, "CP001");
  EXPECT_FALSE(rep.ok());
}

TEST(CompiledLint, ProbeWithCompiledServiceIsCp002) {
  analysis::CompiledPathProfile p = healthyProfile();
  p.probeAttached = true;
  p.lastServedCompiled = true;
  analysis::Report rep;
  analysis::lintCompiledPath(p, rep);
  ASSERT_EQ(rep.diagnostics().size(), 1u);
  EXPECT_EQ(rep.diagnostics()[0].rule, "CP002");
}

TEST(CompiledLint, UnboundedCacheIsCp003Warning) {
  analysis::CompiledPathProfile p = healthyProfile();
  p.cacheCapacity = 0;
  analysis::Report rep;
  analysis::lintCompiledPath(p, rep);
  ASSERT_EQ(rep.diagnostics().size(), 1u);
  EXPECT_EQ(rep.diagnostics()[0].rule, "CP003");
  EXPECT_TRUE(rep.ok());
  // Engines running cache-less are exempt.
  p.noCache = true;
  analysis::Report rep2;
  analysis::lintCompiledPath(p, rep2);
  EXPECT_TRUE(rep2.diagnostics().empty());
}

TEST(CompiledLint, FaultedBuildIsCp004Warning) {
  analysis::CompiledPathProfile p = healthyProfile();
  p.programFaulted = true;
  analysis::Report rep;
  analysis::lintCompiledPath(p, rep);
  ASSERT_EQ(rep.diagnostics().size(), 1u);
  EXPECT_EQ(rep.diagnostics()[0].rule, "CP004");
  EXPECT_TRUE(rep.ok());
}

TEST(CompiledLint, LiveEngineProfileIsClean) {
  CompiledOnDevice cod = compileNamed("ct_counter");
  CompiledKernelCache cache(8);
  CompiledFabric engine(cod.dev, &cache);
  cod.dev.evaluate();
  analysis::CompiledPathProfile p;
  p.kernelAttached = cod.dev.fastPath() != nullptr;
  p.programReady = engine.program() != nullptr;
  p.programGeneration = engine.programGeneration();
  p.deviceGeneration = cod.dev.configGeneration();
  p.probeAttached = cod.dev.activityProbe() != nullptr;
  p.inhibited = cod.dev.fastPathInhibited();
  p.programFaulted = engine.lastBuildFaulted();
  p.lastServedCompiled = engine.lastServedCompiled();
  p.cacheCapacity = cache.capacity();
  analysis::Report rep;
  analysis::lintCompiledPath(p, rep);
  EXPECT_TRUE(rep.diagnostics().empty());

  // ... and a reconfiguration without re-resolution trips CP001.
  cod.dev.clearConfig();
  p.deviceGeneration = cod.dev.configGeneration();
  analysis::Report rep2;
  analysis::lintCompiledPath(p, rep2);
  EXPECT_FALSE(rep2.ok());
}

}  // namespace
}  // namespace vfpga
