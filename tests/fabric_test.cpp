#include <gtest/gtest.h>

#include <set>

#include "fabric/bitstream.hpp"
#include "fabric/config_map.hpp"
#include "fabric/config_port.hpp"
#include "fabric/device.hpp"
#include "fabric/device_family.hpp"
#include "fabric/routing_graph.hpp"

namespace vfpga {
namespace {

FabricGeometry tinyGeom() { return FabricGeometry{4, 4, 4, 4, 2}; }

TEST(Geometry, Counts) {
  FabricGeometry g = tinyGeom();
  EXPECT_EQ(g.clbCount(), 16u);
  EXPECT_EQ(g.lutBits(), 16u);
  EXPECT_EQ(g.padCount(), 16u);       // 4 per side
  EXPECT_EQ(g.padSlotCount(), 32u);
}

TEST(Geometry, PadLocationsCoverAllSides) {
  FabricGeometry g = tinyGeom();
  std::set<std::pair<int, int>> seen;
  int north = 0, south = 0, west = 0, east = 0;
  for (std::size_t p = 0; p < g.padCount(); ++p) {
    PadLocation loc = padLocation(g, p);
    seen.insert({static_cast<int>(loc.side), loc.offset});
    switch (loc.side) {
      case PadSide::kNorth: ++north; break;
      case PadSide::kSouth: ++south; break;
      case PadSide::kWest: ++west; break;
      case PadSide::kEast: ++east; break;
    }
  }
  EXPECT_EQ(seen.size(), g.padCount());  // no duplicates
  EXPECT_EQ(north, 4);
  EXPECT_EQ(south, 4);
  EXPECT_EQ(west, 4);
  EXPECT_EQ(east, 4);
}

TEST(Geometry, PadColumnOwnership) {
  FabricGeometry g = tinyGeom();
  EXPECT_EQ(padColumn(g, 2), 2);                 // north pad of column 2
  EXPECT_EQ(padColumn(g, g.cols + 1u), 1);       // south pad of column 1
  EXPECT_EQ(padColumn(g, 2u * g.cols), 0);       // west pads -> column 0
  EXPECT_EQ(padColumn(g, 2u * g.cols + g.rows), g.cols - 1);  // east pads
}

TEST(RoutingGraph, NodeLookupsRoundTrip) {
  RoutingGraph rrg(tinyGeom());
  const FabricGeometry& g = rrg.geometry();
  for (int y = 0; y < g.rows; ++y) {
    for (int x = 0; x < g.cols; ++x) {
      const RRNode& out = rrg.node(rrg.clbOut(x, y));
      EXPECT_EQ(out.kind, RRKind::kClbOut);
      EXPECT_EQ(out.x, x);
      EXPECT_EQ(out.y, y);
      for (int p = 0; p < g.lutInputs; ++p) {
        const RRNode& in = rrg.node(rrg.clbIn(x, y, p));
        EXPECT_EQ(in.kind, RRKind::kClbIn);
        EXPECT_EQ(in.index, p);
      }
    }
  }
  const RRNode& w = rrg.node(rrg.wireH(1, 2, 3));
  EXPECT_EQ(w.kind, RRKind::kWireH);
  EXPECT_EQ(w.x, 1);
  EXPECT_EQ(w.y, 2);
  EXPECT_EQ(w.index, 3);
}

TEST(RoutingGraph, ClbOutHasNoIncomingAndClbInNoOutgoing) {
  RoutingGraph rrg(tinyGeom());
  EXPECT_TRUE(rrg.edgesInto(rrg.clbOut(1, 1)).empty());
  EXPECT_TRUE(rrg.edgesFrom(rrg.clbIn(1, 1, 0)).empty());
  EXPECT_FALSE(rrg.edgesFrom(rrg.clbOut(1, 1)).empty());
  EXPECT_FALSE(rrg.edgesInto(rrg.clbIn(1, 1, 0)).empty());
}

TEST(RoutingGraph, EdgeEndpointsConsistentWithCsr) {
  RoutingGraph rrg(tinyGeom());
  std::size_t total = 0;
  for (RRNodeId n = 0; n < rrg.nodeCount(); ++n) {
    for (RREdgeId e : rrg.edgesFrom(n)) {
      EXPECT_EQ(rrg.edge(e).from, n);
      ++total;
    }
  }
  EXPECT_EQ(total, rrg.edgeCount());
  total = 0;
  for (RRNodeId n = 0; n < rrg.nodeCount(); ++n) {
    for (RREdgeId e : rrg.edgesInto(n)) {
      EXPECT_EQ(rrg.edge(e).to, n);
      ++total;
    }
  }
  EXPECT_EQ(total, rrg.edgeCount());
}

TEST(RoutingGraph, SwitchboxConnectsSameIndexWires) {
  RoutingGraph rrg(tinyGeom());
  // Interior junction (1,1): H(0,1,w) <-> H(1,1,w) must be connected.
  const RRNodeId a = rrg.wireH(0, 1, 2);
  const RRNodeId b = rrg.wireH(1, 1, 2);
  bool found = false;
  for (RREdgeId e : rrg.edgesFrom(a)) {
    if (rrg.edge(e).to == b) found = true;
    // never to a different wire index
    const RRNode& to = rrg.node(rrg.edge(e).to);
    if (to.kind == RRKind::kWireH || to.kind == RRKind::kWireV) {
      EXPECT_EQ(to.index, 2);
    }
  }
  EXPECT_TRUE(found);
}

TEST(RoutingGraph, OwnerColumnPartitionsNodes) {
  RoutingGraph rrg(tinyGeom());
  const FabricGeometry& g = rrg.geometry();
  for (RRNodeId n = 0; n < rrg.nodeCount(); ++n) {
    EXPECT_LT(rrg.ownerColumn(n), g.cols);
  }
  // Rightmost vertical channel belongs to the last column.
  EXPECT_EQ(rrg.ownerColumn(rrg.wireV(g.cols, 0, 0)), g.cols - 1);
  EXPECT_EQ(rrg.ownerColumn(rrg.wireV(0, 0, 0)), 0);
}

TEST(ConfigMap, BitsAreUniqueAndInRange) {
  RoutingGraph rrg(tinyGeom());
  ConfigMap map(rrg, 64);
  std::set<std::uint32_t> seen;
  const FabricGeometry& g = rrg.geometry();
  for (int y = 0; y < g.rows; ++y) {
    for (int x = 0; x < g.cols; ++x) {
      for (std::uint32_t i = 0; i < g.lutBits(); ++i) {
        EXPECT_TRUE(seen.insert(map.clbLutBit(x, y, i)).second);
      }
      EXPECT_TRUE(seen.insert(map.clbFfEnableBit(x, y)).second);
      EXPECT_TRUE(seen.insert(map.clbEnableBit(x, y)).second);
    }
  }
  for (std::size_t s = 0; s < g.padSlotCount(); ++s) {
    EXPECT_TRUE(seen.insert(map.padSlotEnableBit(s)).second);
    EXPECT_TRUE(seen.insert(map.padSlotOutputBit(s)).second);
  }
  for (RREdgeId e = 0; e < rrg.edgeCount(); ++e) {
    EXPECT_TRUE(seen.insert(map.edgeBit(e)).second);
  }
  EXPECT_EQ(seen.size(), map.usedBits());
  EXPECT_LE(map.usedBits(), map.totalBits());
  for (std::uint32_t b : seen) EXPECT_LT(b, map.totalBits());
}

TEST(ConfigMap, ColumnsAlignToFrames) {
  RoutingGraph rrg(tinyGeom());
  ConfigMap map(rrg, 64);
  const FabricGeometry& g = rrg.geometry();
  std::uint32_t prevEnd = 0;
  for (std::uint16_t c = 0; c < g.cols; ++c) {
    auto [first, last] = map.framesOfColumn(c);
    EXPECT_EQ(first, prevEnd);
    EXPECT_GT(last, first);
    prevEnd = last;
    for (std::uint32_t f = first; f < last; ++f) {
      EXPECT_EQ(map.columnOfFrame(f), c);
    }
  }
  EXPECT_EQ(prevEnd, map.frameCount());
  auto [f0, f1] = map.framesOfColumns(1, 2);
  EXPECT_EQ(f0, map.framesOfColumn(1).first);
  EXPECT_EQ(f1, map.framesOfColumn(2).second);
}

TEST(ConfigMap, ColumnBitsStayInColumnFrames) {
  RoutingGraph rrg(tinyGeom());
  ConfigMap map(rrg, 64);
  const FabricGeometry& g = rrg.geometry();
  for (int y = 0; y < g.rows; ++y) {
    for (int x = 0; x < g.cols; ++x) {
      auto [first, last] = map.framesOfColumn(static_cast<std::uint16_t>(x));
      const std::uint32_t f = map.frameOfBit(map.clbEnableBit(x, y));
      EXPECT_GE(f, first);
      EXPECT_LT(f, last);
    }
  }
}

TEST(Bitstream, FullRoundTrip) {
  ConfigImage img(256);
  img.set(3, true);
  img.set(200, true);
  Bitstream bs = makeFullBitstream(img, 64);
  EXPECT_TRUE(bs.full);
  EXPECT_EQ(bs.frameCount(), 4u);
  EXPECT_TRUE(bs.crcOk());
  ConfigImage img2(256);
  applyBitstream(img2, bs);
  EXPECT_EQ(img, img2);
}

TEST(Bitstream, PartialCoversOnlyRequestedFrames) {
  ConfigImage img(256);
  img.set(65, true);   // frame 1
  img.set(130, true);  // frame 2
  std::vector<std::uint32_t> want{1};
  Bitstream bs = makePartialBitstream(img, 64, want);
  EXPECT_FALSE(bs.full);
  EXPECT_EQ(bs.frameCount(), 1u);
  ConfigImage img2(256);
  applyBitstream(img2, bs);
  EXPECT_TRUE(img2.get(65));
  EXPECT_FALSE(img2.get(130));
}

TEST(Bitstream, DiffFramesFindsChangedFramesOnly) {
  ConfigImage a(256), b(256);
  b.set(0, true);    // frame 0
  b.set(255, true);  // frame 3
  auto diff = diffFrames(a, b, 64);
  EXPECT_EQ(diff, (std::vector<std::uint32_t>{0, 3}));
}

TEST(Bitstream, CrcDetectsCorruption) {
  ConfigImage img(128);
  img.set(5, true);
  Bitstream bs = makeFullBitstream(img, 64);
  EXPECT_TRUE(bs.crcOk());
  bs.frames[0].payload[5] = 0;  // corrupt in transit
  EXPECT_FALSE(bs.crcOk());
  Device dev(tinyGeom());
  EXPECT_THROW(dev.applyBitstream(bs), std::runtime_error);
}

// Hand-wires an inverter through the fabric without the CAD flow:
//   west pad slot -> V(0, y) wire -> CLB(0, y) pin 2 -> LUT(NOT) ->
//   CLB out -> V(1, y) wire -> ... there is no pad on V(1), so route back
//   via the south channel H(0, 0) to the south pad of column 0.
class HandWiredInverter : public ::testing::Test {
 protected:
  void SetUp() override {
    dev_ = std::make_unique<Device>(tinyGeom(), DeviceTiming{}, 64u);
    const RoutingGraph& rrg = dev_->rrg();
    const ConfigMap& map = dev_->configMap();
    const FabricGeometry& g = dev_->geometry();

    // Pads: west pad of row 0 is pad index 2*cols + 0; south pad of
    // column 0 is pad index cols + 0.
    inSlotIdx_ = (2u * g.cols) * g.slotsPerPad;      // west row0, slot 0
    outSlotIdx_ = (g.cols + 0u) * g.slotsPerPad;     // south col0, slot 0
    const RRNodeId inSlot = rrg.padSlot(2u * g.cols, 0);
    const RRNodeId outSlot = rrg.padSlot(g.cols, 0);

    // Enable pads: input (direction 0) and output (direction 1).
    dev_->setConfigBit(map.padSlotEnableBit(inSlotIdx_), true);
    dev_->setConfigBit(map.padSlotEnableBit(outSlotIdx_), true);
    dev_->setConfigBit(map.padSlotOutputBit(outSlotIdx_), true);

    // CLB(0,0): enabled, LUT = NOT of pin 2 (pin 2 listens to the west
    // channel V(0, 0)). Truth table bit i = !(bit 2 of i).
    std::uint32_t lut = 0;
    for (std::uint32_t i = 0; i < 16; ++i) {
      if (((i >> 2) & 1) == 0) lut |= 1u << i;
    }
    for (std::uint32_t i = 0; i < 16; ++i) {
      dev_->setConfigBit(map.clbLutBit(0, 0, i), (lut >> i) & 1);
    }
    dev_->setConfigBit(map.clbEnableBit(0, 0), true);

    // Route: inSlot -> V(0,0,w0); V(0,0,w0) -> CLB(0,0) pin 2.
    enableEdge(inSlot, rrg.wireV(0, 0, 0));
    enableEdge(rrg.wireV(0, 0, 0), rrg.clbIn(0, 0, 2));
    // Route: CLB out -> H(0,0,w1) (south channel) -> outSlot.
    enableEdge(rrg.clbOut(0, 0), rrg.wireH(0, 0, 1));
    enableEdge(rrg.wireH(0, 0, 1), outSlot);
  }

  void enableEdge(RRNodeId from, RRNodeId to) {
    const RoutingGraph& rrg = dev_->rrg();
    for (RREdgeId e : rrg.edgesFrom(from)) {
      if (rrg.edge(e).to == to) {
        dev_->setConfigBit(dev_->configMap().edgeBit(e), true);
        return;
      }
    }
    FAIL() << "no such edge " << rrg.describe(from) << " -> "
           << rrg.describe(to);
  }

  std::unique_ptr<Device> dev_;
  std::size_t inSlotIdx_ = 0;
  std::size_t outSlotIdx_ = 0;
};

TEST_F(HandWiredInverter, ElaboratesCleanly) {
  const Elaboration& e = dev_->elaboration();
  ASSERT_TRUE(e.ok()) << e.faults.front();
  EXPECT_EQ(e.cells.size(), 1u);
  EXPECT_EQ(e.padOuts.size(), 1u);
  EXPECT_EQ(e.inputSlots.size(), 1u);
  EXPECT_EQ(e.ffCount, 0u);
}

TEST_F(HandWiredInverter, ComputesNot) {
  ASSERT_TRUE(dev_->configOk());
  dev_->setPadSlotInput(inSlotIdx_, false);
  dev_->evaluate();
  EXPECT_TRUE(dev_->padSlotOutput(outSlotIdx_));
  dev_->setPadSlotInput(inSlotIdx_, true);
  dev_->evaluate();
  EXPECT_FALSE(dev_->padSlotOutput(outSlotIdx_));
}

TEST_F(HandWiredInverter, CriticalPathIncludesHops) {
  ASSERT_TRUE(dev_->configOk());
  const DeviceTiming& t = dev_->timing();
  // Input: pad -> wire -> pin = 2 hops + padDelay, then LUT, then
  // out -> wire -> pad = 2 hops + padDelay.
  const SimDuration expect =
      t.padDelay + 2 * t.switchDelay + t.lutDelay + 2 * t.switchDelay +
      t.padDelay;
  EXPECT_EQ(dev_->criticalPathDelay(), expect);
  EXPECT_EQ(dev_->minClockPeriod(), expect + t.clockMargin);
}

TEST_F(HandWiredInverter, ContentionIsAFault) {
  const RoutingGraph& rrg = dev_->rrg();
  // Second driver onto the same wire the CLB output already drives, via the
  // switchbox at junction (1, 0). The second source wire is undriven, but
  // two enabled switches into one wire is contention regardless.
  enableEdge(rrg.wireV(1, 0, 1), rrg.wireH(0, 0, 1));
  EXPECT_FALSE(dev_->configOk());
}

TEST_F(HandWiredInverter, ClearConfigRemovesEverything) {
  dev_->clearConfig();
  const Elaboration& e = dev_->elaboration();
  EXPECT_TRUE(e.ok());
  EXPECT_TRUE(e.cells.empty());
  EXPECT_TRUE(e.padOuts.empty());
}

TEST_F(HandWiredInverter, UndrivenOutputPadIsAFault) {
  const ConfigMap& map = dev_->configMap();
  const std::size_t orphan = outSlotIdx_ + 1;  // next slot of the same pad
  dev_->setConfigBit(map.padSlotEnableBit(orphan), true);
  dev_->setConfigBit(map.padSlotOutputBit(orphan), true);
  EXPECT_FALSE(dev_->configOk());
}

TEST(Device, FfStateRoundTripThroughRegisteredCell) {
  // CLB(0,0) as a DFF: LUT = identity of pin 2, FF enabled, fed from a
  // west pad, observed at a south pad.
  Device dev(tinyGeom(), DeviceTiming{}, 64);
  const RoutingGraph& rrg = dev.rrg();
  const ConfigMap& map = dev.configMap();
  const FabricGeometry& g = dev.geometry();
  const std::size_t inSlot = (2u * g.cols) * g.slotsPerPad;
  const std::size_t outSlot = (g.cols + 0u) * g.slotsPerPad;
  dev.setConfigBit(map.padSlotEnableBit(inSlot), true);
  dev.setConfigBit(map.padSlotEnableBit(outSlot), true);
  dev.setConfigBit(map.padSlotOutputBit(outSlot), true);
  std::uint32_t lut = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    if ((i >> 2) & 1) lut |= 1u << i;
  }
  for (std::uint32_t i = 0; i < 16; ++i) {
    dev.setConfigBit(map.clbLutBit(0, 0, i), (lut >> i) & 1);
  }
  dev.setConfigBit(map.clbEnableBit(0, 0), true);
  dev.setConfigBit(map.clbFfEnableBit(0, 0), true);
  auto enable = [&](RRNodeId from, RRNodeId to) {
    for (RREdgeId e : rrg.edgesFrom(from)) {
      if (rrg.edge(e).to == to) {
        dev.setConfigBit(map.edgeBit(e), true);
        return;
      }
    }
    FAIL() << "edge missing";
  };
  enable(rrg.padSlot(2u * g.cols, 0), rrg.wireV(0, 0, 0));
  enable(rrg.wireV(0, 0, 0), rrg.clbIn(0, 0, 2));
  enable(rrg.clbOut(0, 0), rrg.wireH(0, 0, 1));
  enable(rrg.wireH(0, 0, 1), rrg.padSlot(g.cols, 0));
  ASSERT_TRUE(dev.configOk());
  ASSERT_EQ(dev.ffCount(), 1u);

  dev.setPadSlotInput(inSlot, true);
  dev.evaluate();
  EXPECT_FALSE(dev.padSlotOutput(outSlot));  // not clocked yet
  dev.tick();
  dev.evaluate();
  EXPECT_TRUE(dev.padSlotOutput(outSlot));
  EXPECT_EQ(dev.cyclesTicked(), 1u);

  // Save, perturb, restore.
  auto saved = dev.ffState();
  EXPECT_EQ(saved, std::vector<bool>{true});
  dev.setPadSlotInput(inSlot, false);
  dev.evaluate();
  dev.tick();
  dev.evaluate();
  EXPECT_FALSE(dev.padSlotOutput(outSlot));
  dev.setFfState(saved);
  dev.evaluate();
  EXPECT_TRUE(dev.padSlotOutput(outSlot));
  dev.resetFfs();
  dev.evaluate();
  EXPECT_FALSE(dev.padSlotOutput(outSlot));
}

TEST(ConfigPort, CostsMatchSpecArithmetic) {
  Device dev(tinyGeom(), DeviceTiming{}, 64);
  ConfigPortSpec spec;
  spec.bitPeriod = nanos(10);
  spec.frameOverhead = nanos(100);
  spec.fullOverhead = nanos(1000);
  ConfigPort port(dev, spec);
  Bitstream full = makeFullBitstream(dev.image(), 64);
  EXPECT_EQ(port.downloadCost(full),
            nanos(1000) + full.bitCount() * nanos(10));
  EXPECT_EQ(port.fullDownloadCost(), port.downloadCost(full));
  std::vector<std::uint32_t> one{0};
  Bitstream part = makePartialBitstream(dev.image(), 64, one);
  EXPECT_EQ(port.downloadCost(part), nanos(100) + 64 * nanos(10));
  EXPECT_EQ(port.stateReadCost(10),
            spec.stateOverhead + 10 * spec.stateBitPeriod);
}

TEST(ConfigPort, SerialFullPortRejectsPartial) {
  Device dev(tinyGeom(), DeviceTiming{}, 64);
  ConfigPortSpec spec;
  spec.partialReconfig = false;
  ConfigPort port(dev, spec);
  std::vector<std::uint32_t> one{0};
  Bitstream part = makePartialBitstream(dev.image(), 64, one);
  EXPECT_THROW(port.download(part), std::logic_error);
  Bitstream full = makeFullBitstream(dev.image(), 64);
  EXPECT_GT(port.download(full), 0u);
  EXPECT_EQ(port.stats().fullDownloads, 1u);
}

TEST(ConfigPort, StatsAccumulate) {
  Device dev(tinyGeom(), DeviceTiming{}, 64);
  ConfigPort port(dev, ConfigPortSpec{});
  Bitstream full = makeFullBitstream(dev.image(), 64);
  port.download(full);
  std::vector<std::uint32_t> one{1};
  port.download(makePartialBitstream(dev.image(), 64, one));
  std::vector<bool> state;
  port.readState(state);
  EXPECT_EQ(port.stats().fullDownloads, 1u);
  EXPECT_EQ(port.stats().partialDownloads, 1u);
  EXPECT_EQ(port.stats().bitsWritten, full.bitCount() + 64u);
  EXPECT_EQ(port.stats().stateReads, 1u);
  EXPECT_GT(port.stats().busyTime, 0u);
}

TEST(ConfigPort, NoStateAccessThrows) {
  Device dev(tinyGeom(), DeviceTiming{}, 64);
  ConfigPortSpec spec;
  spec.stateAccess = false;
  ConfigPort port(dev, spec);
  std::vector<bool> state;
  EXPECT_THROW(port.readState(state), std::logic_error);
  EXPECT_THROW(port.writeState(state), std::logic_error);
}

TEST(DeviceFamily, ProfilesAreWellFormed) {
  for (const DeviceProfile& p : allProfiles()) {
    EXPECT_FALSE(p.name.empty());
    Device dev = p.makeDevice();
    EXPECT_GT(dev.configMap().totalBits(), 0u);
    EXPECT_TRUE(dev.configOk());  // blank config is valid (empty design)
  }
  EXPECT_EQ(profileByName("tiny").name, "tiny");
  EXPECT_THROW(profileByName("nope"), std::out_of_range);
}

TEST(DeviceFamily, Xc4000FullConfigNear200ms) {
  DeviceProfile p = xc4000SerialProfile();
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  const double ms = toMilliseconds(port.fullDownloadCost());
  // Paper, §2: "no more than 200 ms" for a full serial download.
  EXPECT_GT(ms, 100.0);
  EXPECT_LE(ms, 220.0);
}

TEST(DeviceFamily, PartialPortMakesSmallUpdatesCheap) {
  DeviceProfile p = xc4000PartialProfile();
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  std::vector<std::uint32_t> one{0};
  Bitstream part = makePartialBitstream(dev.image(), p.frameBits, one);
  EXPECT_LT(port.downloadCost(part), port.fullDownloadCost() / 100);
}

}  // namespace
}  // namespace vfpga
