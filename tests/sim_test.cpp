#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/parallel.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace vfpga {
namespace {

TEST(SimTime, UnitHelpers) {
  EXPECT_EQ(micros(1), 1000u);
  EXPECT_EQ(millis(1), 1000u * 1000u);
  EXPECT_EQ(seconds(1), 1000u * 1000u * 1000u);
  EXPECT_DOUBLE_EQ(toMilliseconds(millis(200)), 200.0);
  EXPECT_DOUBLE_EQ(toMicroseconds(micros(7)), 7.0);
  EXPECT_DOUBLE_EQ(toSeconds(seconds(3)), 3.0);
}

TEST(Simulation, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> fired;
  sim.scheduleAt(30, [&] { fired.push_back(3); });
  sim.scheduleAt(10, [&] { fired.push_back(1); });
  sim.scheduleAt(20, [&] { fired.push_back(2); });
  sim.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30u);
}

TEST(Simulation, SameTimestampFiresInScheduleOrder) {
  Simulation sim;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    sim.scheduleAt(5, [&fired, i] { fired.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool ran = false;
  EventId id = sim.scheduleAt(10, [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_TRUE(sim.empty());
}

TEST(Simulation, CancelIsIdempotent) {
  Simulation sim;
  EventId id = sim.scheduleAt(10, [] {});
  sim.cancel(id);
  sim.cancel(id);  // no-op
  EXPECT_EQ(sim.run(), 0u);
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int count = 0;
  sim.scheduleAt(10, [&] { ++count; });
  sim.scheduleAt(20, [&] { ++count; });
  sim.scheduleAt(21, [&] { ++count; });
  EXPECT_EQ(sim.run(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20u);
  EXPECT_FALSE(sim.empty());
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) sim.scheduleAfter(1, chain);
  };
  sim.scheduleAt(0, chain);
  sim.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(sim.now(), 99u);
  EXPECT_EQ(sim.executedEvents(), 100u);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  SimTime seen = 0;
  sim.scheduleAt(50, [&] {
    sim.scheduleAfter(7, [&] { seen = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(seen, 57u);
}

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.0, 1e-12);
  EXPECT_NEAR(s.stddev(), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats a, bl, all;
  Rng rng(42);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform() * 10;
    (i % 2 ? a : bl).add(x);
    all.add(x);
  }
  a.merge(bl);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-1.0);   // clamps to first bucket
  h.add(100.0);  // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(9), 2u);
}

TEST(Histogram, QuantileApproximatesMedian) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
}

TEST(OnlineStats, MergeWithEmptyKeepsMinMax) {
  OnlineStats a, empty;
  a.add(3.0);
  a.add(7.0);
  a.merge(empty);  // no-op: the empty side must not poison min/max
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 7.0);
  empty.merge(a);  // into-empty copies the populated side exactly
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.min(), 3.0);
  EXPECT_DOUBLE_EQ(empty.max(), 7.0);
}

TEST(OnlineStats, MergeExtendsMinMaxAcrossSides) {
  OnlineStats a, b;
  a.add(0.0);
  a.add(10.0);
  b.add(-5.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.min(), -5.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
}

TEST(Histogram, PercentileMatchesQuantile) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(h.percentile(50.0), h.quantile(0.5));
  EXPECT_NEAR(h.percentile(90.0), 90.0, 2.0);
  EXPECT_NEAR(h.percentile(99.0), 99.0, 2.0);
}

TEST(Histogram, PercentileOfClampedSamplesStaysInRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-100.0);  // clamps into the first bucket
  h.add(1e9);     // clamps into the last bucket
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(9), 1u);
  // Even wildly out-of-range samples cannot push a percentile outside
  // [lo, hi] — the exporters rely on this when rendering p50/p90/p99.
  EXPECT_GE(h.percentile(0.0), 0.0);
  EXPECT_LE(h.percentile(100.0), 10.0);
  EXPECT_GE(h.percentile(50.0), 0.0);
  EXPECT_LE(h.percentile(50.0), 10.0);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng(11);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 10000; ++i) {
    auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    sawLo |= (v == -3);
    sawHi |= (v == 3);
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(5.0));
  EXPECT_NEAR(s.mean(), 5.0, 0.15);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.0)];
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[9]);
}

TEST(Rng, ZipfZeroExponentIsRoughlyUniform) {
  Rng rng(19);
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.zipf(4, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng child = a.fork();
  EXPECT_NE(a.next(), child.next());
}

TEST(Trace, RecordsAndCounts) {
  Trace t;
  t.record(10, TraceKind::kPageFault, "page 3");
  t.record(20, TraceKind::kPageFault, "page 5");
  t.record(30, TraceKind::kConfigDownload, "cfg a");
  EXPECT_EQ(t.count(TraceKind::kPageFault), 2u);
  EXPECT_EQ(t.count(TraceKind::kConfigDownload), 1u);
  EXPECT_EQ(t.ofKind(TraceKind::kPageFault).size(), 2u);
  EXPECT_NE(t.render().find("page_fault page 3"), std::string::npos);
}

TEST(Trace, CapacityBoundsRetainedRecordsButNotCounts) {
  Trace t(4);
  for (int i = 0; i < 10; ++i) t.record(i, TraceKind::kInfo, "x");
  EXPECT_EQ(t.records().size(), 4u);
  EXPECT_EQ(t.count(TraceKind::kInfo), 10u);
  EXPECT_EQ(t.records().front().at, 6u);  // oldest retained
}

TEST(Trace, ZeroCapacityOnlyCounts) {
  Trace t(0);
  t.record(1, TraceKind::kInfo, "x");
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.count(TraceKind::kInfo), 1u);
}

TEST(Trace, ClearResetsEverything) {
  Trace t;
  t.record(1, TraceKind::kInfo, "x");
  t.clear();
  EXPECT_TRUE(t.records().empty());
  EXPECT_EQ(t.count(TraceKind::kInfo), 0u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  parallelFor(1000, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, ZeroAndSingleElements) {
  parallelFor(0, [](std::size_t) { FAIL() << "must not run"; });
  int count = 0;
  parallelFor(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(
      parallelFor(100,
                  [](std::size_t i) {
                    if (i == 37) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(ParallelFor, RespectsThreadCap) {
  std::atomic<int> active{0}, peak{0};
  parallelFor(
      64,
      [&](std::size_t) {
        const int now = ++active;
        int expect = peak.load();
        while (now > expect && !peak.compare_exchange_weak(expect, now)) {
        }
        --active;
      },
      2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ParallelMap, CollectsInOrder) {
  auto squares = parallelMap<std::size_t>(
      50, [](std::size_t i) { return i * i; });
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(squares[i], i * i);
}

}  // namespace
}  // namespace vfpga
