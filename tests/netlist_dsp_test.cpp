// Tests for the DSP / reliability / control extensions of the circuit
// library, against plain-integer reference models.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "netlist/builder.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/dsp.hpp"
#include "sim/rng.hpp"
#include "techmap/lut_mapper.hpp"

namespace vfpga {
namespace {

std::uint64_t mask(std::size_t bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

TEST(SortingNetwork4, SortsAllRandomQuadruples) {
  const std::size_t w = 5;
  Netlist nl = lib::makeSortingNetwork4(w);
  Evaluator ev(nl);
  std::array<Bus, 4> in, out;
  for (int i = 0; i < 4; ++i) {
    in[static_cast<std::size_t>(i)] =
        findInputBus(nl, "e" + std::to_string(i), w);
    out[static_cast<std::size_t>(i)] =
        findOutputBus(nl, "s" + std::to_string(i), w);
  }
  Rng rng(12);
  for (int trial = 0; trial < 400; ++trial) {
    std::array<std::uint64_t, 4> vals;
    for (auto& v : vals) v = rng.next() & mask(w);
    if (rng.bernoulli(0.3)) vals[1] = vals[2];  // exercise equal keys
    for (int i = 0; i < 4; ++i) {
      ev.writeBus(in[static_cast<std::size_t>(i)],
                  vals[static_cast<std::size_t>(i)]);
    }
    ev.eval();
    std::array<std::uint64_t, 4> expect = vals;
    std::sort(expect.begin(), expect.end());
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(ev.readBus(out[static_cast<std::size_t>(i)]),
                expect[static_cast<std::size_t>(i)])
          << "lane " << i;
    }
  }
}

TEST(FirFilter, MatchesShiftAddModel) {
  const std::size_t w = 8;
  const std::vector<std::size_t> shifts{0, 1, 3};  // taps 1, 1/2, 1/8
  Netlist nl = lib::makeFirFilter(w, shifts);
  Evaluator ev(nl);
  const Bus x = findInputBus(nl, "x", w);
  const Bus y = findOutputBus(nl, "y", w);
  Rng rng(9);
  std::vector<std::uint64_t> history;  // history[0] = current input
  for (int cycle = 0; cycle < 200; ++cycle) {
    const std::uint64_t v = rng.next() & mask(w);
    history.insert(history.begin(), v);
    ev.writeBus(x, v);
    ev.eval();
    std::uint64_t expect = 0;
    for (std::size_t k = 0; k < shifts.size(); ++k) {
      const std::uint64_t xk = k < history.size() ? history[k] : 0;
      expect = (expect + (xk >> shifts[k])) & mask(w);
    }
    ASSERT_EQ(ev.readBus(y), expect) << "cycle " << cycle;
    ev.tick();
  }
}

TEST(FirFilter, RejectsEmptyTapList) {
  EXPECT_THROW(lib::makeFirFilter(8, {}), std::invalid_argument);
}

TEST(MajorityVoter, OutvotesSingleFaults) {
  const std::size_t w = 6;
  Netlist nl = lib::makeMajorityVoter(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  const Bus c = findInputBus(nl, "c", w);
  const Bus v = findOutputBus(nl, "v", w);
  Rng rng(33);
  for (int trial = 0; trial < 300; ++trial) {
    const std::uint64_t good = rng.next() & mask(w);
    std::uint64_t lanes[3] = {good, good, good};
    const bool faulty = rng.bernoulli(0.7);
    if (faulty) {
      lanes[rng.below(3)] ^= 1ULL << rng.below(w);  // single-lane bit flip
    }
    ev.writeBus(a, lanes[0]);
    ev.writeBus(b, lanes[1]);
    ev.writeBus(c, lanes[2]);
    ev.eval();
    ASSERT_EQ(ev.readBus(v), good);
    ASSERT_EQ(ev.output("disagree"), faulty);
  }
}

TEST(MajorityVoter, DoubleFaultWins) {
  // TMR only masks single faults: two agreeing wrong lanes outvote truth.
  Netlist nl = lib::makeMajorityVoter(4);
  Evaluator ev(nl);
  ev.writeBus(findInputBus(nl, "a", 4), 0x3);
  ev.writeBus(findInputBus(nl, "b", 4), 0xC);
  ev.writeBus(findInputBus(nl, "c", 4), 0xC);
  ev.eval();
  EXPECT_EQ(ev.readBus(findOutputBus(nl, "v", 4)), 0xCu);
  EXPECT_TRUE(ev.output("disagree"));
}

TEST(SaturatingAdder, ClampsInsteadOfWrapping) {
  const std::size_t w = 6;
  Netlist nl = lib::makeSaturatingAdder(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  const Bus s = findOutputBus(nl, "s", w);
  Rng rng(44);
  for (int trial = 0; trial < 400; ++trial) {
    const std::uint64_t av = rng.next() & mask(w);
    const std::uint64_t bv = rng.next() & mask(w);
    ev.writeBus(a, av);
    ev.writeBus(b, bv);
    ev.eval();
    const std::uint64_t expect = std::min(av + bv, mask(w));
    ASSERT_EQ(ev.readBus(s), expect);
    ASSERT_EQ(ev.output("sat"), av + bv > mask(w));
  }
}

TEST(GrayCounter, OneBitFlipsPerStep) {
  const std::size_t bits = 5;
  Netlist nl = lib::makeGrayCounter(bits);
  Evaluator ev(nl);
  const Bus g = findOutputBus(nl, "g", bits);
  ev.setInput("en", true);
  std::uint64_t prev = 0;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < (1 << bits); ++i) {
    ev.eval();
    const std::uint64_t cur = ev.readBus(g);
    if (i > 0) {
      EXPECT_EQ(__builtin_popcountll(cur ^ prev), 1) << "step " << i;
    }
    EXPECT_TRUE(seen.insert(cur).second) << "repeat at step " << i;
    prev = cur;
    ev.tick();
  }
  ev.eval();
  EXPECT_EQ(ev.readBus(g), 0u);  // full period
}

TEST(GrayCounter, HoldsWhenDisabled) {
  Netlist nl = lib::makeGrayCounter(4);
  Evaluator ev(nl);
  const Bus g = findOutputBus(nl, "g", 4);
  ev.setInput("en", true);
  for (int i = 0; i < 5; ++i) {
    ev.eval();
    ev.tick();
  }
  ev.setInput("en", false);
  ev.eval();
  const std::uint64_t held = ev.readBus(g);
  for (int i = 0; i < 5; ++i) {
    ev.eval();
    ev.tick();
  }
  ev.eval();
  EXPECT_EQ(ev.readBus(g), held);
}

TEST(Debouncer, IgnoresGlitchesFollowsStableInput) {
  const std::size_t cb = 3;  // needs 8 stable cycles
  Netlist nl = lib::makeDebouncer(cb);
  Evaluator ev(nl);
  auto step = [&](bool d) {
    ev.setInput("d", d);
    ev.eval();
    const bool q = ev.output("q");
    ev.tick();
    return q;
  };
  // Short glitches never propagate.
  for (int burst = 0; burst < 5; ++burst) {
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(step(true));
    for (int i = 0; i < 4; ++i) EXPECT_FALSE(step(false));
  }
  // A long-stable high eventually flips the output exactly once.
  int flips = 0;
  bool last = false;
  for (int i = 0; i < 20; ++i) {
    const bool q = step(true);
    if (q != last) ++flips;
    last = q;
  }
  EXPECT_TRUE(last);
  EXPECT_EQ(flips, 1);
}

TEST(Serializer, ShiftsWordLsbFirst) {
  const std::size_t w = 6;
  Netlist nl = lib::makeSerializer(w);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", w);
  Rng rng(21);
  for (int word = 0; word < 20; ++word) {
    const std::uint64_t v = rng.next() & mask(w);
    ev.writeBus(d, v);
    ev.setInput("load", true);
    ev.eval();
    ev.tick();
    ev.setInput("load", false);
    std::uint64_t received = 0;
    int bits = 0;
    for (int i = 0; i < 20; ++i) {
      ev.eval();
      if (!ev.output("busy")) break;
      received |= static_cast<std::uint64_t>(ev.output("tx")) << bits;
      ++bits;
      ev.tick();
    }
    EXPECT_EQ(bits, static_cast<int>(w));
    EXPECT_EQ(received, v) << "word " << word;
  }
}

TEST(Serializer, IdleLineIsLow) {
  Netlist nl = lib::makeSerializer(4);
  Evaluator ev(nl);
  ev.setInput("load", false);
  ev.writeBus(findInputBus(nl, "d", 4), 0xF);
  for (int i = 0; i < 8; ++i) {
    ev.eval();
    EXPECT_FALSE(ev.output("busy"));
    EXPECT_FALSE(ev.output("tx"));
    ev.tick();
  }
}

// New circuits also pass the mapper (the property suite covers random
// DAGs; this covers the specific new structures).
TEST(DspLibrary, AllNewCircuitsMapEquivalently) {
  std::vector<Netlist> all;
  all.push_back(lib::makeSortingNetwork4(4));
  all.push_back(lib::makeFirFilter(6, {0, 2}));
  all.push_back(lib::makeMajorityVoter(5));
  all.push_back(lib::makeSaturatingAdder(5));
  all.push_back(lib::makeGrayCounter(4));
  all.push_back(lib::makeDebouncer(2));
  all.push_back(lib::makeSerializer(4));
  Rng rng(77);
  for (Netlist& nl : all) {
    MappedNetlist m = mapToLuts(nl);
    Evaluator ref(nl);
    MappedEvaluator dut(m);
    for (int cycle = 0; cycle < 48; ++cycle) {
      std::vector<bool> in(nl.inputs().size());
      for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.bernoulli(0.5);
      ref.setInputs(in);
      for (std::size_t i = 0; i < in.size(); ++i) dut.setInput(i, in[i]);
      ref.eval();
      dut.eval();
      for (std::size_t o = 0; o < m.outputs.size(); ++o) {
        ASSERT_EQ(dut.output(o), ref.value(nl.outputs()[o]))
            << nl.name() << " output " << m.outputs[o].name;
      }
      ref.tick();
      dut.tick();
    }
  }
}

}  // namespace
}  // namespace vfpga
