// Library circuits are validated against plain-integer software reference
// models, exhaustively for small widths and with random vectors for larger
// ones. These same circuits later serve as the application workloads, so
// their correctness underpins every end-to-end experiment.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "netlist/builder.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/library/arith.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "sim/rng.hpp"

namespace vfpga {
namespace {

using lib::FsmSpec;

std::uint64_t mask(std::size_t bits) {
  return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
}

// ---------------------------------------------------------------- arithmetic

class AdderWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AdderWidth, MatchesIntegerAddition) {
  const std::size_t w = GetParam();
  Netlist nl = lib::makeRippleAdder(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  const Bus sum = findOutputBus(nl, "sum", w);
  Rng rng(100 + w);
  const int iters = w <= 4 ? -1 : 300;  // -1 => exhaustive
  auto checkOne = [&](std::uint64_t av, std::uint64_t bv, bool cin) {
    ev.writeBus(a, av);
    ev.writeBus(b, bv);
    ev.setInput("cin", cin);
    ev.eval();
    const std::uint64_t expect = av + bv + (cin ? 1 : 0);
    ASSERT_EQ(ev.readBus(sum), expect & mask(w));
    ASSERT_EQ(ev.output("cout"), (expect >> w) != 0);
  };
  if (iters < 0) {
    for (std::uint64_t av = 0; av <= mask(w); ++av) {
      for (std::uint64_t bv = 0; bv <= mask(w); ++bv) {
        checkOne(av, bv, false);
        checkOne(av, bv, true);
      }
    }
  } else {
    for (int i = 0; i < iters; ++i) {
      checkOne(rng.next() & mask(w), rng.next() & mask(w), rng.bernoulli(0.5));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 32));

class SubWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SubWidth, MatchesIntegerSubtraction) {
  const std::size_t w = GetParam();
  Netlist nl = lib::makeSubtractor(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  const Bus diff = findOutputBus(nl, "diff", w);
  Rng rng(200 + w);
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t av = rng.next() & mask(w);
    const std::uint64_t bv = rng.next() & mask(w);
    ev.writeBus(a, av);
    ev.writeBus(b, bv);
    ev.eval();
    ASSERT_EQ(ev.readBus(diff), (av - bv) & mask(w));
    ASSERT_EQ(ev.output("borrow"), av < bv);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, SubWidth, ::testing::Values(2, 4, 8, 16));

class CmpWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmpWidth, MatchesIntegerComparison) {
  const std::size_t w = GetParam();
  Netlist nl = lib::makeComparator(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  Rng rng(300 + w);
  for (int i = 0; i < 500; ++i) {
    // Mix random pairs with near-equal pairs to exercise the equality path.
    std::uint64_t av = rng.next() & mask(w);
    std::uint64_t bv = rng.bernoulli(0.3) ? av : (rng.next() & mask(w));
    ev.writeBus(a, av);
    ev.writeBus(b, bv);
    ev.eval();
    ASSERT_EQ(ev.output("eq"), av == bv);
    ASSERT_EQ(ev.output("lt"), av < bv);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, CmpWidth, ::testing::Values(1, 4, 8, 12));

class MulWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MulWidth, MatchesIntegerMultiplication) {
  const std::size_t w = GetParam();
  Netlist nl = lib::makeArrayMultiplier(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  const Bus p = findOutputBus(nl, "p", 2 * w);
  Rng rng(400 + w);
  const bool exhaustive = w <= 4;
  if (exhaustive) {
    for (std::uint64_t av = 0; av <= mask(w); ++av) {
      for (std::uint64_t bv = 0; bv <= mask(w); ++bv) {
        ev.writeBus(a, av);
        ev.writeBus(b, bv);
        ev.eval();
        ASSERT_EQ(ev.readBus(p), av * bv);
      }
    }
  } else {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t av = rng.next() & mask(w);
      const std::uint64_t bv = rng.next() & mask(w);
      ev.writeBus(a, av);
      ev.writeBus(b, bv);
      ev.eval();
      ASSERT_EQ(ev.readBus(p), av * bv);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, MulWidth, ::testing::Values(2, 3, 4, 8));

TEST(Mac, AccumulatesProductsAndClears) {
  const std::size_t w = 4;
  Netlist nl = lib::makeMac(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  const Bus acc = findOutputBus(nl, "acc", 2 * w);
  Rng rng(77);
  std::uint64_t model = 0;
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t av = rng.next() & mask(w);
    const std::uint64_t bv = rng.next() & mask(w);
    const bool clr = rng.bernoulli(0.1);
    ev.writeBus(a, av);
    ev.writeBus(b, bv);
    ev.setInput("clr", clr);
    ev.eval();
    ASSERT_EQ(ev.readBus(acc), model);  // Moore: output is pre-tick state
    ev.tick();
    model = clr ? 0 : (model + av * bv) & mask(2 * w);
  }
}

TEST(Alu, AllFourOps) {
  const std::size_t w = 8;
  Netlist nl = lib::makeAlu(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  const Bus op = findInputBus(nl, "op", 2);
  const Bus r = findOutputBus(nl, "r", w);
  Rng rng(55);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t av = rng.next() & mask(w);
    const std::uint64_t bv = rng.next() & mask(w);
    const std::uint64_t opv = rng.below(4);
    ev.writeBus(a, av);
    ev.writeBus(b, bv);
    ev.writeBus(op, opv);
    ev.eval();
    std::uint64_t expect = 0;
    switch (opv) {
      case 0: expect = av + bv; break;
      case 1: expect = av - bv; break;
      case 2: expect = av & bv; break;
      case 3: expect = av ^ bv; break;
    }
    ASSERT_EQ(ev.readBus(r), expect & mask(w)) << "op " << opv;
  }
}

// -------------------------------------------------------------------- coding

std::uint64_t softCrcStep(std::uint64_t crc, int d, std::size_t n,
                          std::uint64_t poly) {
  const int fb = static_cast<int>((crc >> (n - 1)) & 1) ^ d;
  std::uint64_t next = (crc << 1) & mask(n);
  if (fb) next ^= (poly | 1) & mask(n);
  return next;
}

TEST(SerialCrc, MatchesSoftwareModel) {
  const std::size_t n = 8;
  const std::uint64_t poly = 0x07;  // CRC-8-CCITT
  Netlist nl = lib::makeSerialCrc(n, poly);
  Evaluator ev(nl);
  const Bus crc = findOutputBus(nl, "crc", n);
  Rng rng(11);
  std::uint64_t model = 0;
  for (int i = 0; i < 200; ++i) {
    const int bit = rng.bernoulli(0.5) ? 1 : 0;
    ev.setInput("d", bit != 0);
    ev.eval();
    ASSERT_EQ(ev.readBus(crc), model);
    ev.tick();
    model = softCrcStep(model, bit, n, poly);
  }
}

class ParallelCrcWidth : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParallelCrcWidth, MatchesUnrolledSerialModel) {
  const std::size_t n = 16;
  const std::uint64_t poly = 0x1021;  // CRC-16-CCITT
  const std::size_t dw = GetParam();
  Netlist nl = lib::makeParallelCrc(n, poly, dw);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", dw);
  const Bus crc = findOutputBus(nl, "crc", n);
  Rng rng(n + dw);
  std::uint64_t model = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t word = rng.next() & mask(dw);
    ev.writeBus(d, word);
    ev.eval();
    ASSERT_EQ(ev.readBus(crc), model);
    ev.tick();
    for (std::size_t k = dw; k-- > 0;) {
      model = softCrcStep(model, static_cast<int>((word >> k) & 1), n, poly);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DataWidths, ParallelCrcWidth,
                         ::testing::Values(1, 4, 8, 16));

TEST(Lfsr, MaximalLengthPeriod) {
  // x^4 + x^3 + 1 taps (bits 3 and 2 in Fibonacci stage numbering below)
  // give a maximal 15-step period for a 4-bit register.
  Netlist nl = lib::makeLfsr(4, 0b1100);
  Evaluator ev(nl);
  const Bus q = findOutputBus(nl, "q", 4);
  ev.eval();
  const std::uint64_t start = ev.readBus(q);
  EXPECT_EQ(start, 1u);
  std::vector<std::uint64_t> seen;
  for (int i = 0; i < 15; ++i) {
    seen.push_back(ev.readBus(q));
    EXPECT_NE(ev.readBus(q), 0u);  // never reaches the absorbing state
    ev.tick();
    ev.eval();
  }
  EXPECT_EQ(ev.readBus(q), start);  // period exactly 15
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

TEST(ParityTree, MatchesPopcountParity) {
  const std::size_t w = 9;
  Netlist nl = lib::makeParityTree(w);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", w);
  for (std::uint64_t v = 0; v <= mask(w); ++v) {
    ev.writeBus(d, v);
    ev.eval();
    ASSERT_EQ(ev.output("p"), (__builtin_popcountll(v) & 1) != 0);
  }
}

TEST(Hamming74, CodewordsHaveDistanceThree) {
  Netlist nl = lib::makeHamming74Encoder();
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", 4);
  const Bus c = findOutputBus(nl, "c", 7);
  std::vector<std::uint64_t> codewords;
  for (std::uint64_t v = 0; v < 16; ++v) {
    ev.writeBus(d, v);
    ev.eval();
    codewords.push_back(ev.readBus(c));
    EXPECT_EQ(codewords.back() & 0xF, v);  // systematic
  }
  for (std::size_t i = 0; i < 16; ++i) {
    for (std::size_t j = i + 1; j < 16; ++j) {
      EXPECT_GE(__builtin_popcountll(codewords[i] ^ codewords[j]), 3);
    }
  }
}

TEST(ConvolutionalEncoder, MatchesShiftRegisterModel) {
  // Industry-standard K=7 rate-1/2 code (Voyager), generators 171/133 octal.
  const std::size_t K = 7;
  const std::vector<std::uint64_t> polys{0171, 0133};
  Netlist nl = lib::makeConvolutionalEncoder(K, polys);
  Evaluator ev(nl);
  const Bus y = findOutputBus(nl, "y", 2);
  Rng rng(3);
  std::uint64_t sr = 0;  // bit j = input from j+1 cycles ago
  for (int i = 0; i < 300; ++i) {
    const int bit = rng.bernoulli(0.5) ? 1 : 0;
    ev.setInput("d", bit != 0);
    ev.eval();
    for (std::size_t p = 0; p < polys.size(); ++p) {
      int expect = (polys[p] & 1) ? bit : 0;
      for (std::size_t s = 1; s < K; ++s) {
        if ((polys[p] >> s) & 1) expect ^= static_cast<int>((sr >> (s - 1)) & 1);
      }
      ASSERT_EQ((ev.readBus(y) >> p) & 1, static_cast<std::uint64_t>(expect));
    }
    ev.tick();
    sr = ((sr << 1) | static_cast<std::uint64_t>(bit)) & mask(K - 1);
  }
}

// ------------------------------------------------------------------- control

TEST(Counter, CountsEnablesClearsAndWraps) {
  const std::size_t w = 4;
  Netlist nl = lib::makeCounter(w);
  Evaluator ev(nl);
  const Bus q = findOutputBus(nl, "q", w);
  Rng rng(8);
  std::uint64_t model = 0;
  for (int i = 0; i < 200; ++i) {
    const bool en = rng.bernoulli(0.7);
    const bool clr = rng.bernoulli(0.1);
    ev.setInput("en", en);
    ev.setInput("clr", clr);
    ev.eval();
    ASSERT_EQ(ev.readBus(q), model);
    ASSERT_EQ(ev.output("wrap"), en && model == mask(w));
    ev.tick();
    model = clr ? 0 : (en ? (model + 1) & mask(w) : model);
  }
}

TEST(ShiftRegister, TracksRecentBits) {
  Netlist nl = lib::makeShiftRegister(5);
  Evaluator ev(nl);
  const Bus q = findOutputBus(nl, "q", 5);
  std::uint64_t model = 0;
  Rng rng(21);
  for (int i = 0; i < 100; ++i) {
    const int bit = rng.bernoulli(0.5) ? 1 : 0;
    ev.setInput("d", bit != 0);
    ev.eval();
    ASSERT_EQ(ev.readBus(q), model);
    ev.tick();
    model = ((model << 1) | static_cast<std::uint64_t>(bit)) & mask(5);
  }
}

FsmSpec trafficLightSpec() {
  // 3 states (green/yellow/red), 1 input (car sensor), Moore output = state
  // color one-hot.
  FsmSpec s;
  s.numStates = 3;
  s.inputBits = 1;
  s.outputBits = 3;
  s.next = {{0, 1}, {2, 2}, {0, 0}};  // green stays green until a car comes
  s.moore = {0b001, 0b010, 0b100};
  s.resetState = 0;
  return s;
}

TEST(Fsm, FollowsTransitionTable) {
  FsmSpec spec = trafficLightSpec();
  Netlist nl = lib::makeFsm(spec);
  Evaluator ev(nl);
  const Bus out = findOutputBus(nl, "out", 3);
  const Bus state = findOutputBus(nl, "state", spec.stateBits());
  Rng rng(4);
  std::size_t model = 0;
  for (int i = 0; i < 100; ++i) {
    const bool car = rng.bernoulli(0.4);
    ev.setInput("in", car);
    ev.eval();
    ASSERT_EQ(ev.readBus(state), model);
    ASSERT_EQ(ev.readBus(out), spec.moore[model]);
    ev.tick();
    model = spec.next[model][car ? 1 : 0];
  }
}

TEST(Fsm, ValidateRejectsMalformedSpecs) {
  FsmSpec s = trafficLightSpec();
  s.next[0][0] = 7;  // out-of-range state
  EXPECT_THROW(lib::makeFsm(s), std::invalid_argument);
  s = trafficLightSpec();
  s.moore.pop_back();
  EXPECT_THROW(lib::makeFsm(s), std::invalid_argument);
  s = trafficLightSpec();
  s.resetState = 5;
  EXPECT_THROW(lib::makeFsm(s), std::invalid_argument);
}

TEST(PiController, MatchesFixedPointModel) {
  const std::size_t w = 8, kp = 1, ki = 3;
  Netlist nl = lib::makePiController(w, kp, ki);
  Evaluator ev(nl);
  const Bus sp = findInputBus(nl, "sp", w);
  const Bus y = findInputBus(nl, "y", w);
  const Bus u = findOutputBus(nl, "u", w);
  Rng rng(31);
  std::uint64_t acc = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t spv = rng.next() & mask(w);
    const std::uint64_t yv = rng.next() & mask(w);
    ev.writeBus(sp, spv);
    ev.writeBus(y, yv);
    ev.eval();
    const std::uint64_t e = (spv - yv) & mask(w);
    ASSERT_EQ(ev.readBus(u), ((e >> kp) + acc) & mask(w));
    ev.tick();
    acc = (acc + (e >> ki)) & mask(w);
  }
}

TEST(Misr, MatchesSignatureModel) {
  const std::size_t w = 8;
  const std::uint64_t poly = 0x1D;
  Netlist nl = lib::makeMisr(w, poly);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", w);
  const Bus sig = findOutputBus(nl, "sig", w);
  Rng rng(62);
  std::uint64_t model = 0;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t word = rng.next() & mask(w);
    ev.writeBus(d, word);
    ev.eval();
    ASSERT_EQ(ev.readBus(sig), model);
    ev.tick();
    const std::uint64_t fb = (model >> (w - 1)) & 1;
    std::uint64_t next = 0;
    for (std::size_t k = 0; k < w; ++k) {
      std::uint64_t bit = (k == 0) ? fb : (model >> (k - 1)) & 1;
      if (k != 0 && ((poly >> k) & 1)) bit ^= fb;
      next |= (bit ^ ((word >> k) & 1)) << k;
    }
    model = next;
  }
}

TEST(Misr, DistinguishesCorruptedStreams) {
  const std::size_t w = 16;
  Netlist nl = lib::makeMisr(w, 0x1021);
  const Bus d = findInputBus(nl, "d", w);
  const Bus sig = findOutputBus(nl, "sig", w);
  auto signatureOf = [&](std::uint64_t corruptAt) {
    Evaluator ev(nl);
    Rng rng(99);
    for (std::uint64_t i = 0; i < 64; ++i) {
      std::uint64_t word = rng.next() & mask(w);
      if (i == corruptAt) word ^= 1;  // single bit flip
      ev.writeBus(d, word);
      ev.eval();
      ev.tick();
    }
    ev.eval();
    return ev.readBus(sig);
  };
  const std::uint64_t good = signatureOf(UINT64_MAX);
  for (std::uint64_t at : {0u, 13u, 63u}) {
    EXPECT_NE(signatureOf(at), good) << "flip at " << at;
  }
}

// ------------------------------------------------------------------ datapath

TEST(BarrelShifter, AllShiftAmounts) {
  const std::size_t w = 8;
  Netlist nl = lib::makeBarrelShifter(w);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", w);
  const Bus sh = findInputBus(nl, "sh", 3);
  const Bus q = findOutputBus(nl, "q", w);
  Rng rng(41);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = rng.next() & mask(w);
    const std::uint64_t s = rng.below(8);
    ev.writeBus(d, v);
    ev.writeBus(sh, s);
    ev.eval();
    ASSERT_EQ(ev.readBus(q), (v << s) & mask(w));
  }
}

TEST(Popcount, Exhaustive8Bit) {
  Netlist nl = lib::makePopcount(8);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", 8);
  const Bus n = findOutputBus(nl, "n", 4);
  for (std::uint64_t v = 0; v < 256; ++v) {
    ev.writeBus(d, v);
    ev.eval();
    ASSERT_EQ(ev.readBus(n),
              static_cast<std::uint64_t>(__builtin_popcountll(v)));
  }
}

TEST(PriorityEncoder, LowestSetBitWins) {
  const std::size_t w = 8;
  Netlist nl = lib::makePriorityEncoder(w);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", w);
  const Bus idx = findOutputBus(nl, "idx", 3);
  for (std::uint64_t v = 0; v < 256; ++v) {
    ev.writeBus(d, v);
    ev.eval();
    ASSERT_EQ(ev.output("valid"), v != 0);
    if (v != 0) {
      ASSERT_EQ(ev.readBus(idx),
                static_cast<std::uint64_t>(__builtin_ctzll(v)));
    }
  }
}

TEST(Checksum, AccumulatesModuloWidth) {
  const std::size_t w = 8;
  Netlist nl = lib::makeChecksum(w);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", w);
  const Bus acc = findOutputBus(nl, "acc", w);
  Rng rng(51);
  std::uint64_t model = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t v = rng.next() & mask(w);
    ev.writeBus(d, v);
    ev.eval();
    ASSERT_EQ(ev.readBus(acc), model);
    ev.tick();
    model = (model + v) & mask(w);
  }
}

TEST(RunLengthDetector, CountsRuns) {
  const std::size_t w = 4, cw = 4;
  Netlist nl = lib::makeRunLengthDetector(w, cw);
  Evaluator ev(nl);
  const Bus d = findInputBus(nl, "d", w);
  const Bus run = findOutputBus(nl, "run", cw);
  const std::vector<std::uint64_t> stream{5, 5, 5, 2, 2, 9, 9, 9, 9, 1};
  std::uint64_t prev = 0, modelRun = 0;
  for (std::uint64_t v : stream) {
    ev.writeBus(d, v);
    ev.eval();
    ASSERT_EQ(ev.readBus(run), modelRun);
    ASSERT_EQ(ev.output("match"), v == prev);
    ev.tick();
    modelRun = (v == prev) ? (modelRun + 1) & mask(cw) : 1;
    prev = v;
  }
}

TEST(MinMax, OrdersPairs) {
  const std::size_t w = 6;
  Netlist nl = lib::makeMinMax(w);
  Evaluator ev(nl);
  const Bus a = findInputBus(nl, "a", w);
  const Bus b = findInputBus(nl, "b", w);
  const Bus mn = findOutputBus(nl, "mn", w);
  const Bus mx = findOutputBus(nl, "mx", w);
  Rng rng(71);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t av = rng.next() & mask(w);
    const std::uint64_t bv = rng.bernoulli(0.2) ? av : rng.next() & mask(w);
    ev.writeBus(a, av);
    ev.writeBus(b, bv);
    ev.eval();
    ASSERT_EQ(ev.readBus(mn), std::min(av, bv));
    ASSERT_EQ(ev.readBus(mx), std::max(av, bv));
  }
}

// Every library circuit passes Netlist::check() and has no comb cycle; this
// guards the stateBus/bindState pattern used throughout.
TEST(Library, AllGeneratorsProduceCheckedNetlists) {
  std::vector<Netlist> all;
  all.push_back(lib::makeRippleAdder(8));
  all.push_back(lib::makeSubtractor(8));
  all.push_back(lib::makeComparator(8));
  all.push_back(lib::makeArrayMultiplier(4));
  all.push_back(lib::makeMac(4));
  all.push_back(lib::makeAlu(8));
  all.push_back(lib::makeSerialCrc(8, 0x07));
  all.push_back(lib::makeParallelCrc(16, 0x1021, 8));
  all.push_back(lib::makeLfsr(8, 0b10111000));
  all.push_back(lib::makeParityTree(8));
  all.push_back(lib::makeHamming74Encoder());
  all.push_back(lib::makeConvolutionalEncoder(3, {0b111, 0b101}));
  all.push_back(lib::makeCounter(8));
  all.push_back(lib::makeShiftRegister(8));
  all.push_back(lib::makeFsm(trafficLightSpec()));
  all.push_back(lib::makePiController(8, 1, 2));
  all.push_back(lib::makeMisr(8, 0x1D));
  all.push_back(lib::makeBarrelShifter(8));
  all.push_back(lib::makePopcount(8));
  all.push_back(lib::makePriorityEncoder(8));
  all.push_back(lib::makeChecksum(8));
  all.push_back(lib::makeRunLengthDetector(4, 4));
  all.push_back(lib::makeMinMax(8));
  for (const Netlist& nl : all) {
    EXPECT_NO_THROW(nl.check()) << nl.name();
    EXPECT_FALSE(nl.hasCombinationalCycle()) << nl.name();
    EXPECT_GT(nl.size(), 0u) << nl.name();
  }
}

}  // namespace
}  // namespace vfpga
