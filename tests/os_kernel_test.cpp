// OS-kernel policy tests: the discrete-event multitasking model, all five
// FPGA policies, preemption vs roll-back, and garbage collection under
// churn. Each test asserts the qualitative relationships the paper argues
// for (E2-E5 quantify them in bench/).
#include <gtest/gtest.h>

#include "core/os_kernel.hpp"
#include "fabric/device_family.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "workloads/taskset.hpp"

namespace vfpga {
namespace {

/// Builds a kernel with its own device/port/sim, registers `n` small
/// circuits (width 4 strips on the 12-column medium device) and returns
/// everything bundled.
struct Bench {
  DeviceProfile profile;
  Device dev;
  ConfigPort port;
  Compiler compiler;
  Simulation sim;
  OsKernel kernel;
  std::vector<ConfigId> configs;

  Bench(OsOptions options, std::size_t numConfigs,
        DeviceProfile prof = mediumPartialProfile())
      : profile(prof), dev(profile.makeDevice()), port(dev, profile.port),
        compiler(dev), kernel(sim, dev, port, compiler, options) {
    for (std::size_t i = 0; i < numConfigs; ++i) {
      Netlist nl = (i % 2 == 0)
                       ? lib::makeCounter(6)
                       : lib::makeChecksum(6);
      nl.setName("cfg" + std::to_string(i));
      CompileOptions opt;
      opt.seed = 11 + i;
      configs.push_back(kernel.registerConfig(compiler.compile(
          nl, Region::columns(dev.geometry(), 0, 4), opt)));
    }
  }
};

TaskSpec simpleTask(const std::string& name, SimTime arrival, ConfigId cfg,
                    std::uint64_t cycles,
                    SimDuration cpu = micros(50)) {
  TaskSpec t;
  t.name = name;
  t.arrival = arrival;
  t.ops = {CpuBurst{cpu}, FpgaExec{cfg, cycles}, CpuBurst{cpu}};
  return t;
}

TEST(OsKernel, SingleTaskRunsToCompletion) {
  Bench b(OsOptions{}, 1);
  b.kernel.addTask(simpleTask("t0", 0, b.configs[0], 10000));
  b.kernel.run();
  const auto& m = b.kernel.metrics();
  EXPECT_EQ(m.tasksFinished, 1u);
  EXPECT_EQ(m.fpgaGrants, 1u);
  EXPECT_EQ(m.downloads, 1u);
  EXPECT_GT(m.configTime, 0u);
  EXPECT_EQ(b.kernel.tasks()[0].state, TaskState::kDone);
  // Turnaround >= cpu + exec + config time.
  const SimDuration exec = 10000 * b.kernel.clockPeriod(b.configs[0]);
  EXPECT_GE(b.kernel.tasks()[0].finish, 2 * micros(50) + exec);
}

TEST(OsKernel, CpuRoundRobinInterleavesTasks) {
  OsOptions opt;
  opt.cpuTimeSlice = micros(10);
  Bench b(opt, 1);
  TaskSpec t0;
  t0.name = "cpu0";
  t0.ops = {CpuBurst{micros(100)}};
  TaskSpec t1 = t0;
  t1.name = "cpu1";
  b.kernel.addTask(t0);
  b.kernel.addTask(t1);
  b.kernel.run();
  // With a 10 us slice both 100 us tasks finish within ~200 us of each
  // other (interleaved), not sequentially.
  const auto& tasks = b.kernel.tasks();
  EXPECT_EQ(tasks[0].finish, micros(190));
  EXPECT_EQ(tasks[1].finish, micros(200));
}

TEST(OsKernel, ResidentConfigIsNotRedownloaded) {
  Bench b(OsOptions{}, 1);
  // Two tasks using the same configuration back to back: one download.
  b.kernel.addTask(simpleTask("a", 0, b.configs[0], 5000));
  b.kernel.addTask(simpleTask("b", 0, b.configs[0], 5000));
  b.kernel.run();
  EXPECT_EQ(b.kernel.metrics().downloads, 1u);
}

TEST(OsKernel, AlternatingConfigsThrashTheDevice) {
  Bench b(OsOptions{}, 2);
  for (int i = 0; i < 3; ++i) {
    b.kernel.addTask(simpleTask("a" + std::to_string(i), 0, b.configs[0], 2000));
    b.kernel.addTask(simpleTask("b" + std::to_string(i), 0, b.configs[1], 2000));
  }
  b.kernel.run();
  // FIFO order alternates configs -> every grant needs a download.
  EXPECT_EQ(b.kernel.metrics().downloads, 6u);
}

TEST(OsKernel, ExclusivePolicyNeverPreempts) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kExclusive;
  opt.fpgaSlice = micros(10);  // ignored by exclusive
  Bench b(opt, 2);
  b.kernel.addTask(simpleTask("a", 0, b.configs[0], 200000));
  b.kernel.addTask(simpleTask("b", 0, b.configs[1], 200000));
  b.kernel.run();
  EXPECT_EQ(b.kernel.metrics().fpgaPreemptions, 0u);
  EXPECT_EQ(b.kernel.metrics().tasksFinished, 2u);
}

TEST(OsKernel, DynamicSlicingPreemptsAndFinishesFairly) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kDynamicLoading;
  opt.fpgaSlice = millis(1);
  Bench b(opt, 2);
  // Two long executions (~8 ms each at the measured clock).
  const std::uint64_t cycles =
      millis(8) / 30;  // rough; exact period measured at registration
  b.kernel.addTask(simpleTask("a", 0, b.configs[0], cycles));
  b.kernel.addTask(simpleTask("b", 0, b.configs[1], cycles));
  b.kernel.run();
  const auto& m = b.kernel.metrics();
  EXPECT_GT(m.fpgaPreemptions, 0u);
  EXPECT_EQ(m.rollbacks, 0u);  // state save/restore regime
  EXPECT_GT(m.stateMoveTime, 0u);
  // Preemption interleaves: the second task finishes well before twice the
  // first task's span (they share the device).
  const auto& tasks = b.kernel.tasks();
  EXPECT_LT(tasks[0].finish,
            tasks[1].finish);  // FIFO grant order preserved per slice
}

TEST(OsKernel, RollbackRegimeRestartsExecutions) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kDynamicLoading;
  opt.fpgaSlice = millis(1);
  opt.saveStateOnPreempt = false;
  Bench b(opt, 2);
  const std::uint64_t cycles = millis(3) / 30;
  b.kernel.addTask(simpleTask("a", 0, b.configs[0], cycles));
  b.kernel.addTask(simpleTask("b", 0, b.configs[1], cycles));
  b.kernel.run();
  const auto& m = b.kernel.metrics();
  EXPECT_GT(m.rollbacks, 0u);
  EXPECT_EQ(m.stateMoveTime, 0u);
  // Roll-back wastes compute: total FPGA compute exceeds the useful work.
  const SimDuration useful =
      cycles * (b.kernel.clockPeriod(b.configs[0]) +
                b.kernel.clockPeriod(b.configs[1]));
  EXPECT_GT(m.fpgaComputeTime, useful);
  EXPECT_EQ(m.tasksFinished, 2u);
}

TEST(OsKernel, PartitionsRunTasksConcurrently) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  Bench b(opt, 2);
  // Compute-dominated executions: downloads serialize on the single
  // configuration port, so only long execs expose the concurrency win.
  const std::uint64_t cycles = millis(40) / 30;
  b.kernel.addTask(simpleTask("a", 0, b.configs[0], cycles, micros(1)));
  b.kernel.addTask(simpleTask("b", 0, b.configs[1], cycles, micros(1)));
  b.kernel.run();

  // Same workload, exclusive FIFO.
  OsOptions ex;
  ex.policy = FpgaPolicy::kExclusive;
  Bench b2(ex, 2);
  b2.kernel.addTask(simpleTask("a", 0, b2.configs[0], cycles, micros(1)));
  b2.kernel.addTask(simpleTask("b", 0, b2.configs[1], cycles, micros(1)));
  b2.kernel.run();

  // Two 4-wide circuits fit the 12-column device side by side: the
  // partitioned makespan must be well below the serialized one.
  EXPECT_LT(b.kernel.metrics().makespan,
            b2.kernel.metrics().makespan * 3 / 4);
}

TEST(OsKernel, FixedPartitionsRequireWidths) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedFixed;
  Simulation sim;
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  ConfigPort port(dev, prof.port);
  Compiler compiler(dev);
  EXPECT_THROW(OsKernel(sim, dev, port, compiler, opt),
               std::invalid_argument);
}

TEST(OsKernel, FixedPartitionsServeMatchingWidths) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedFixed;
  opt.fixedWidths = {4, 4, 4};
  Bench b(opt, 3);
  for (int i = 0; i < 3; ++i) {
    b.kernel.addTask(simpleTask("t" + std::to_string(i), 0,
                                b.configs[static_cast<std::size_t>(i)],
                                20000, micros(1)));
  }
  b.kernel.run();
  EXPECT_EQ(b.kernel.metrics().tasksFinished, 3u);
  EXPECT_EQ(b.kernel.metrics().garbageCollections, 0u);  // fixed: never
}

TEST(OsKernel, OversizedConfigRejectedUpFront) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedFixed;
  // Cover all 12 columns so no wider remainder partition appears.
  opt.fixedWidths = {2, 2, 2, 2, 2, 2};
  Bench b(opt, 0);
  Netlist nl = lib::makeCounter(6);
  nl.setName("wide");
  ConfigId cfg = b.kernel.registerConfig(b.compiler.compile(
      nl, Region::columns(b.dev.geometry(), 0, 5)));
  EXPECT_THROW(b.kernel.addTask(simpleTask("t", 0, cfg, 100)),
               std::logic_error);
}

TEST(OsKernel, SoftwareOnlyUsesNoFpga) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kSoftwareOnly;
  opt.softwareSlowdown = 25.0;
  Bench b(opt, 1);
  b.kernel.addTask(simpleTask("t", 0, b.configs[0], 10000));
  b.kernel.run();
  const auto& m = b.kernel.metrics();
  EXPECT_EQ(m.downloads, 0u);
  EXPECT_EQ(m.fpgaGrants, 0u);
  EXPECT_EQ(m.fpgaComputeTime, 0u);
  // Turnaround reflects the slowdown factor.
  const SimDuration hw = 10000 * b.kernel.clockPeriod(b.configs[0]);
  EXPECT_GE(b.kernel.tasks()[0].finish, 25 * hw);
}

TEST(OsKernel, GarbageCollectionTriggersUnderChurn) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  Bench b(opt, 0);
  // Configs of widths 4, 4, 6 on a 12-column device.
  auto makeCfg = [&](const std::string& name, std::uint16_t w) {
    Netlist nl = lib::makeChecksum(4);
    nl.setName(name);
    return b.kernel.registerConfig(b.compiler.compile(
        nl, Region::columns(b.dev.geometry(), 0, w)));
  };
  ConfigId c4a = makeCfg("w4a", 4);
  ConfigId c4b = makeCfg("w4b", 4);
  ConfigId c6 = makeCfg("w6", 6);
  // t0 holds [0,4) briefly, t1 holds [4,8) for long; t2 (width 6) arrives
  // after t0 finished: free = [0,4)+[8,12) fragmented -> GC must move t1.
  TaskSpec t0;
  t0.name = "short";
  t0.ops = {FpgaExec{c4a, 1000}};
  TaskSpec t1;
  t1.name = "long";
  t1.ops = {FpgaExec{c4b, 2000000}};
  TaskSpec t2;
  t2.name = "wide";
  t2.arrival = millis(2);
  t2.ops = {FpgaExec{c6, 1000}};
  b.kernel.addTask(t0);
  b.kernel.addTask(t1);
  b.kernel.addTask(t2);
  b.kernel.run();
  const auto& m = b.kernel.metrics();
  EXPECT_EQ(m.tasksFinished, 3u);
  EXPECT_GE(m.garbageCollections, 1u);
  EXPECT_GE(m.relocations, 1u);
}

TEST(OsKernel, GcDisabledStarvesWideTask) {
  // Same scenario but garbage collection off: the wide task can only run
  // after the long task releases its strip (no starvation forever, but a
  // much longer wait).
  auto makespanWith = [&](bool gc) {
    OsOptions opt;
    opt.policy = FpgaPolicy::kPartitionedVariable;
    opt.garbageCollect = gc;
    Bench b(opt, 0);
    auto makeCfg = [&](const std::string& name, std::uint16_t w) {
      Netlist nl = lib::makeChecksum(4);
      nl.setName(name);
      return b.kernel.registerConfig(b.compiler.compile(
          nl, Region::columns(b.dev.geometry(), 0, w)));
    };
    ConfigId c4a = makeCfg("w4a", 4);
    ConfigId c4b = makeCfg("w4b", 4);
    ConfigId c6 = makeCfg("w6", 6);
    TaskSpec t0{"short", 0, 0, {FpgaExec{c4a, 1000}}};
    TaskSpec t1{"long", 0, 0, {FpgaExec{c4b, 2000000}}};
    TaskSpec t2{"wide", millis(2), 0, {FpgaExec{c6, 1000}}};
    b.kernel.addTask(t0);
    b.kernel.addTask(t1);
    b.kernel.addTask(t2);
    b.kernel.run();
    // Wide task's wait is the discriminator.
    return b.kernel.tasks()[2].fpgaWaitTotal;
  };
  EXPECT_LT(makespanWith(true), makespanWith(false));
}

TEST(OsKernel, TaskSetGeneratorIsDeterministicAndRunnable) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kDynamicLoading;
  opt.fpgaSlice = millis(1);
  Bench b(opt, 3);
  workloads::TaskSetParams params;
  params.numTasks = 6;
  params.numConfigs = 3;
  params.execsPerTask = 2;
  Rng rngA(42), rngB(42);
  auto setA = workloads::makeTaskSet(params, rngA);
  auto setB = workloads::makeTaskSet(params, rngB);
  ASSERT_EQ(setA.size(), setB.size());
  for (std::size_t i = 0; i < setA.size(); ++i) {
    EXPECT_EQ(setA[i].arrival, setB[i].arrival);
    EXPECT_EQ(setA[i].ops.size(), setB[i].ops.size());
  }
  for (auto& t : setA) b.kernel.addTask(t);
  b.kernel.run();
  EXPECT_EQ(b.kernel.metrics().tasksFinished, 6u);
  EXPECT_GT(b.kernel.metrics().fpgaUtilization(), 0.0);
  EXPECT_LE(b.kernel.metrics().fpgaUtilization(), 1.0);
}

TEST(OsKernel, WaitTimeAccountingIsConsistent) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kExclusive;
  Bench b(opt, 1);
  // Three identical tasks contending for one device: later tasks wait
  // longer, and waits are monotone in queue position.
  for (int i = 0; i < 3; ++i) {
    b.kernel.addTask(
        simpleTask("t" + std::to_string(i), 0, b.configs[0], 100000,
                   micros(1)));
  }
  b.kernel.run();
  const auto& tasks = b.kernel.tasks();
  EXPECT_LE(tasks[0].fpgaWaitTotal, tasks[1].fpgaWaitTotal);
  EXPECT_LE(tasks[1].fpgaWaitTotal, tasks[2].fpgaWaitTotal);
  EXPECT_EQ(b.kernel.metrics().waitTime.count(), 3u);
}

TEST(OsKernel, ServiceConfigRunsWithoutDownloads) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  Bench b(opt, 1);
  // Install a shared "device driver" circuit (the paper's §3 case of one
  // algorithm serving every task).
  Netlist nl = lib::makeChecksum(6);
  nl.setName("driver");
  ConfigId svc = b.kernel.registerConfig(b.compiler.compile(
      nl, Region::columns(b.dev.geometry(), 0, 4)));
  const SimDuration install = b.kernel.installService(svc);
  EXPECT_GT(install, 0u);
  const auto downloadsAfterInstall = b.kernel.metrics().downloads;

  for (int i = 0; i < 4; ++i) {
    TaskSpec spec;
    spec.name = "drv" + std::to_string(i);
    spec.ops = {FpgaExec{svc, 10000}};
    b.kernel.addTask(spec);
  }
  b.kernel.run();
  const auto& m = b.kernel.metrics();
  EXPECT_EQ(m.tasksFinished, 4u);
  // Not one extra download: the driver stayed resident.
  EXPECT_EQ(m.downloads, downloadsAfterInstall);
  EXPECT_EQ(m.fpgaGrants, 4u);
}

TEST(OsKernel, ServiceRequestsSerializeFifo) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  Bench b(opt, 0);
  Netlist nl = lib::makeChecksum(6);
  nl.setName("driver");
  ConfigId svc = b.kernel.registerConfig(b.compiler.compile(
      nl, Region::columns(b.dev.geometry(), 0, 4)));
  b.kernel.installService(svc);
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.name = "t" + std::to_string(i);
    spec.ops = {FpgaExec{svc, 100000}};
    b.kernel.addTask(spec);
  }
  b.kernel.run();
  const auto& tasks = b.kernel.tasks();
  EXPECT_LT(tasks[0].finish, tasks[1].finish);
  EXPECT_LT(tasks[1].finish, tasks[2].finish);
  // Later requests wait roughly one/two execution times.
  EXPECT_GT(tasks[2].fpgaWaitTotal, tasks[0].fpgaWaitTotal);
}

TEST(OsKernel, ServiceCoexistsWithRegularPartitions) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  Bench b(opt, 1);  // one regular config (width 4)
  Netlist nl = lib::makeChecksum(6);
  nl.setName("driver");
  ConfigId svc = b.kernel.registerConfig(b.compiler.compile(
      nl, Region::columns(b.dev.geometry(), 0, 4)));
  b.kernel.installService(svc);
  TaskSpec ts;
  ts.name = "svc_user";
  ts.ops = {FpgaExec{svc, 50000}};
  TaskSpec tr;
  tr.name = "regular";
  tr.ops = {FpgaExec{b.configs[0], 50000}};
  b.kernel.addTask(ts);
  b.kernel.addTask(tr);
  b.kernel.run();
  EXPECT_EQ(b.kernel.metrics().tasksFinished, 2u);
  EXPECT_TRUE(b.dev.configOk());
}

TEST(OsKernel, ServiceRequiresPartitionedPolicy) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kDynamicLoading;
  Bench b(opt, 1);
  EXPECT_THROW(b.kernel.installService(b.configs[0]), std::logic_error);
}

TEST(OsKernel, DuplicateServiceInstallRejected) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kPartitionedVariable;
  Bench b(opt, 1);
  b.kernel.installService(b.configs[0]);
  EXPECT_THROW(b.kernel.installService(b.configs[0]), std::logic_error);
}

TEST(OsKernel, PriorityJumpsBothQueues) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kExclusive;
  opt.priorityScheduling = true;
  Bench b(opt, 1);
  // Three low-priority tasks queue up; a high-priority one arrives later
  // and must be granted the device before the remaining low ones.
  for (int i = 0; i < 3; ++i) {
    TaskSpec spec;
    spec.name = "low" + std::to_string(i);
    spec.priority = 0;
    spec.ops = {FpgaExec{b.configs[0], 300000}};
    b.kernel.addTask(spec);
  }
  TaskSpec hi;
  hi.name = "hi";
  hi.priority = 10;
  hi.arrival = micros(100);  // after all three queued
  hi.ops = {FpgaExec{b.configs[0], 300000}};
  b.kernel.addTask(hi);
  b.kernel.run();
  const auto& tasks = b.kernel.tasks();
  // hi (index 3) finishes before low1 and low2 (only low0, already
  // running non-preemptably, precedes it).
  EXPECT_LT(tasks[3].finish, tasks[1].finish);
  EXPECT_LT(tasks[3].finish, tasks[2].finish);
}

TEST(OsKernel, PriorityIgnoredWhenDisabled) {
  OsOptions opt;
  opt.policy = FpgaPolicy::kExclusive;
  Bench b(opt, 1);
  for (int i = 0; i < 2; ++i) {
    TaskSpec spec;
    spec.name = "low" + std::to_string(i);
    spec.ops = {FpgaExec{b.configs[0], 300000}};
    b.kernel.addTask(spec);
  }
  TaskSpec hi;
  hi.name = "hi";
  hi.priority = 10;
  hi.arrival = micros(100);
  hi.ops = {FpgaExec{b.configs[0], 300000}};
  b.kernel.addTask(hi);
  b.kernel.run();
  const auto& tasks = b.kernel.tasks();
  // Plain FIFO: hi finishes last despite its priority.
  EXPECT_GT(tasks[2].finish, tasks[0].finish);
  EXPECT_GT(tasks[2].finish, tasks[1].finish);
}

}  // namespace
}  // namespace vfpga
