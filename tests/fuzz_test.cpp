// Property-based tests over randomly generated circuits: the whole flow
// (gate netlist -> K-LUT mapping -> place & route -> bitstream -> device)
// must be an exact functional identity for *any* circuit, and malformed
// configuration data must be detected, never crash.
#include <gtest/gtest.h>

#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "fabric/device_family.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/library/coding.hpp"
#include "sim/rng.hpp"
#include "techmap/lut_mapper.hpp"
#include "techmap/mapped_netlist.hpp"
#include "workloads/random_netlist.hpp"

namespace vfpga {
namespace {

using workloads::RandomNetlistParams;
using workloads::randomNetlist;

/// Drives reference and mapped evaluators in lockstep.
void expectMappedEquivalent(const Netlist& nl, const MappedNetlist& m,
                            std::uint64_t seed, int cycles) {
  Evaluator ref(nl);
  MappedEvaluator dut(m);
  Rng rng(seed);
  for (int c = 0; c < cycles; ++c) {
    std::vector<bool> in(nl.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.bernoulli(0.5);
    ref.setInputs(in);
    for (std::size_t i = 0; i < in.size(); ++i) dut.setInput(i, in[i]);
    ref.eval();
    dut.eval();
    for (std::size_t o = 0; o < m.outputs.size(); ++o) {
      ASSERT_EQ(dut.output(o), ref.value(nl.outputs()[o]))
          << "seed " << seed << " output " << o << " cycle " << c;
    }
    ref.tick();
    dut.tick();
  }
}

class FuzzMapping : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzMapping, RandomDagMapsEquivalently) {
  Rng rng(GetParam());
  RandomNetlistParams p;
  p.gates = 20 + rng.below(60);
  p.flops = rng.below(6);
  p.feedbackRegs = rng.below(3);
  Netlist nl = randomNetlist(p, rng);
  for (std::uint8_t k : {std::uint8_t{4}, std::uint8_t{6}}) {
    MappedNetlist m = mapToLuts(nl, MapOptions{k});
    for (const MappedCell& c : m.cells) ASSERT_LE(c.inputs.size(), k);
    expectMappedEquivalent(nl, m, GetParam() * 31 + k, 24);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzMapping,
                         ::testing::Range<std::uint64_t>(1, 41));

class FuzzFullFlow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzFullFlow, RandomCircuitSurvivesTheWholeFlow) {
  Rng rng(GetParam() * 977);
  RandomNetlistParams p;
  p.inputs = 4 + rng.below(4);
  p.outputs = 4 + rng.below(4);
  p.gates = 15 + rng.below(35);
  p.flops = rng.below(5);
  p.feedbackRegs = rng.below(3);
  Netlist nl = randomNetlist(p, rng);

  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  CompiledCircuit c = [&] {
    // Widen until it routes (random DAGs vary a lot in congestion).
    for (std::uint16_t w = 4; w <= dev.geometry().cols; ++w) {
      try {
        CompileOptions opt;
        opt.seed = GetParam();
        return compiler.compile(nl, Region::columns(dev.geometry(), 0, w),
                                opt);
      } catch (const CompileError&) {
        continue;
      }
    }
    throw CompileError("random circuit unroutable even at full width");
  }();

  dev.applyBitstream(c.fullBitstream());
  ASSERT_TRUE(dev.configOk()) << dev.elaboration().faults.front();
  LoadedCircuit lc(dev, c);
  lc.applyInitialState();

  Evaluator ref(nl);
  Rng drive(GetParam() * 13 + 5);
  for (int cycle = 0; cycle < 16; ++cycle) {
    std::vector<bool> in(nl.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = drive.bernoulli(0.5);
    ref.setInputs(in);
    for (std::size_t i = 0; i < in.size(); ++i) {
      lc.setInput(nl.gate(nl.inputs()[i]).name, in[i]);
    }
    ref.eval();
    lc.evaluate();
    for (GateId out : nl.outputs()) {
      ASSERT_EQ(lc.output(nl.gate(out).name), ref.value(out))
          << "seed " << GetParam() << " cycle " << cycle;
    }
    ref.tick();
    lc.tick();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFullFlow,
                         ::testing::Range<std::uint64_t>(1, 13));

class FuzzRelocation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzRelocation, RelocatedRandomCircuitStaysEquivalent) {
  Rng rng(GetParam() * 31337);
  RandomNetlistParams p;
  p.inputs = 4;
  p.outputs = 4;
  p.gates = 12 + rng.below(20);
  p.flops = rng.below(4);
  Netlist nl = randomNetlist(p, rng);

  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  std::optional<CompiledCircuit> compiled;
  for (std::uint16_t w = 4; w <= 6 && !compiled; ++w) {
    try {
      CompileOptions opt;
      opt.seed = GetParam();
      compiled =
          compiler.compile(nl, Region::columns(dev.geometry(), 0, w), opt);
    } catch (const CompileError&) {
    }
  }
  if (!compiled) {
    GTEST_SKIP() << "random circuit needs more than half the device";
  }
  CompiledCircuit& c = *compiled;
  const std::uint16_t newX0 =
      static_cast<std::uint16_t>(dev.geometry().cols - c.region.w);
  CompiledCircuit moved = compiler.relocate(c, newX0);

  dev.applyBitstream(moved.fullBitstream());
  ASSERT_TRUE(dev.configOk()) << dev.elaboration().faults.front();
  LoadedCircuit lc(dev, moved);
  lc.applyInitialState();
  Evaluator ref(nl);
  Rng drive(GetParam() + 99);
  for (int cycle = 0; cycle < 12; ++cycle) {
    std::vector<bool> in(nl.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = drive.bernoulli(0.5);
    ref.setInputs(in);
    for (std::size_t i = 0; i < in.size(); ++i) {
      lc.setInput(nl.gate(nl.inputs()[i]).name, in[i]);
    }
    ref.eval();
    lc.evaluate();
    for (GateId out : nl.outputs()) {
      ASSERT_EQ(lc.output(nl.gate(out).name), ref.value(out));
    }
    ref.tick();
    lc.tick();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzRelocation,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------------------------------------------------------- fault injection

TEST(FaultInjection, RandomConfigBitsNeverCrashTheDevice) {
  // Arbitrary configuration RAM contents must either decode cleanly or be
  // reported as faults; elaboration and evaluation must never crash.
  Device dev(FabricGeometry{4, 4, 4, 4, 2}, DeviceTiming{}, 64);
  Rng rng(4096);
  for (int trial = 0; trial < 50; ++trial) {
    dev.clearConfig();
    const std::uint32_t flips = 1 + static_cast<std::uint32_t>(rng.below(200));
    for (std::uint32_t i = 0; i < flips; ++i) {
      dev.setConfigBit(
          static_cast<std::uint32_t>(rng.below(dev.configMap().totalBits())),
          true);
    }
    (void)dev.configOk();  // may be faulty; must not crash
    dev.evaluate();
    dev.tick();
    (void)dev.criticalPathDelay();
  }
}

TEST(FaultInjection, CorruptedBitstreamAlwaysCaughtByCrc) {
  DeviceProfile prof = tinyProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  Rng netRng(5);
  Netlist nl = randomNetlist(RandomNetlistParams{4, 4, 20, 2, 1}, netRng);
  CompiledCircuit c = compiler.compile(
      nl, Region::columns(dev.geometry(), 0, dev.geometry().cols),
      [] {
        CompileOptions o;
        o.relocatable = false;
        return o;
      }());
  Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    Bitstream bs = c.fullBitstream();
    Frame& f = bs.frames[rng.below(bs.frames.size())];
    const std::size_t bit = rng.below(f.payload.size());
    f.payload[bit] ^= 1;
    ASSERT_FALSE(bs.crcOk());
    ASSERT_THROW(dev.applyBitstream(bs), std::runtime_error);
  }
}

TEST(FaultInjection, FlippedFrameDetectedAfterResealOnlyByElaboration) {
  // If an attacker (or a soft error inside the RAM) flips a bit *after*
  // the CRC check, elaboration-level validation is the remaining net:
  // flipped switch bits surface as faults or decode to a different — but
  // never crashing — design.
  DeviceProfile prof = tinyProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeParityTree(4);
  CompileOptions opt;
  opt.relocatable = false;
  CompiledCircuit c =
      compiler.compile(nl, Region::full(dev.geometry()), opt);
  Rng rng(7);
  int faultsSeen = 0;
  for (int trial = 0; trial < 60; ++trial) {
    dev.clearConfig();
    dev.applyBitstream(c.fullBitstream());
    dev.setConfigBit(
        static_cast<std::uint32_t>(rng.below(dev.configMap().totalBits())),
        rng.bernoulli(0.5));
    if (!dev.configOk()) ++faultsSeen;
    dev.evaluate();
  }
  EXPECT_GT(faultsSeen, 0);  // at least some flips must be detectable
}

}  // namespace
}  // namespace vfpga
