// Netlist text format round trips and the static timing analyzer.
#include <gtest/gtest.h>

#include "compile/compiler.hpp"
#include "fabric/device_family.hpp"
#include "fabric/sta.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/library/arith.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/text_io.hpp"
#include "sim/rng.hpp"
#include "workloads/random_netlist.hpp"

namespace vfpga {
namespace {

void expectEquivalent(const Netlist& a, const Netlist& b, std::uint64_t seed,
                      int cycles) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  Evaluator ea(a), eb(b);
  Rng rng(seed);
  for (int c = 0; c < cycles; ++c) {
    std::vector<bool> in(a.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.bernoulli(0.5);
    ea.setInputs(in);
    eb.setInputs(in);
    ea.eval();
    eb.eval();
    for (std::size_t o = 0; o < a.outputs().size(); ++o) {
      ASSERT_EQ(eb.value(b.outputs()[o]), ea.value(a.outputs()[o]));
    }
    ea.tick();
    eb.tick();
  }
}

TEST(NetlistText, RoundTripsLibraryCircuits) {
  std::uint64_t seed = 1000;
  for (Netlist nl : {lib::makeRippleAdder(6), lib::makeSerialCrc(8, 0x07),
                     lib::makeCounter(5), lib::makeMac(3),
                     lib::makeFsm([] {
                       lib::FsmSpec s;
                       s.numStates = 3;
                       s.inputBits = 1;
                       s.outputBits = 2;
                       s.next = {{0, 1}, {2, 2}, {0, 0}};
                       s.moore = {1, 2, 3};
                       return s;
                     }())}) {
    const std::string text = writeNetlistText(nl);
    Netlist back = parseNetlistText(text);
    EXPECT_EQ(back.name(), nl.name());
    expectEquivalent(nl, back, seed++, 48);
  }
}

TEST(NetlistText, RoundTripsRandomDags) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng rng(seed * 10007);
    workloads::RandomNetlistParams p;
    p.gates = 20 + rng.below(50);
    p.flops = rng.below(5);
    p.feedbackRegs = rng.below(3);
    Netlist nl = workloads::randomNetlist(p, rng);
    Netlist back = parseNetlistText(writeNetlistText(nl));
    expectEquivalent(nl, back, seed, 24);
  }
}

TEST(NetlistText, ParsesHandWrittenFullAdder) {
  const char* text = R"(
# one-bit full adder with a result register
name fa1
input a
input b
input cin
xor t1 a b
xor sum t1 cin
and c1 a b
and c2 t1 cin
or carry c1 c2
dff q sum init=1
output s sum
output cout carry
output sreg q
)";
  Netlist nl = parseNetlistText(text);
  EXPECT_EQ(nl.name(), "fa1");
  Evaluator ev(nl);
  ev.setInput("a", true);
  ev.setInput("b", true);
  ev.setInput("cin", true);
  ev.eval();
  EXPECT_TRUE(ev.output("s"));     // 1+1+1 = 1 carry 1
  EXPECT_TRUE(ev.output("cout"));
  EXPECT_TRUE(ev.output("sreg"));  // init=1 before the first clock
}

TEST(NetlistText, FeedbackLoopsParse) {
  const char* text = R"(
name toggle
not n q
dff q n
output o q
)";
  Netlist nl = parseNetlistText(text);
  Evaluator ev(nl);
  bool expect = false;
  for (int i = 0; i < 6; ++i) {
    ev.eval();
    EXPECT_EQ(ev.output("o"), expect);
    ev.tick();
    expect = !expect;
  }
}

TEST(NetlistText, DiagnosesErrorsWithLineNumbers) {
  auto expectError = [](const char* text, const char* fragment) {
    try {
      parseNetlistText(text);
      FAIL() << "expected parse error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
          << e.what();
    }
  };
  expectError("bogus x\n", "unknown kind");
  expectError("input a\ninput a\n", "duplicate signal");
  expectError("and x a b\n", "unknown");
  expectError("input a\nnot x a extra\n", "operand");
  expectError("input a\nnot x a init=1\n", "init=");
  expectError("input a\noutput o missing\n", "unknown signal");
  // Line numbers are reported.
  expectError("input a\n\nbogus x\n", "line 3");
}

TEST(NetlistText, CommentsAndBlankLinesIgnored) {
  Netlist nl = parseNetlistText(
      "# header\n\ninput a  # trailing comment\noutput o a\n");
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

// --------------------------------------------------------------------- STA

TEST(Sta, ReportsPathsOnConfiguredDevice) {
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeRippleAdder(6);
  CompiledCircuit c =
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 5));
  dev.applyBitstream(c.fullBitstream());
  ASSERT_TRUE(dev.configOk());
  auto paths = criticalPaths(dev, 5);
  ASSERT_FALSE(paths.empty());
  // Slowest-first ordering and consistency with the device's own number.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].arrival, paths[i].arrival);
  }
  EXPECT_EQ(paths[0].arrival, dev.criticalPathDelay());
  // A pure combinational adder: every path starts and ends at pads.
  EXPECT_NE(paths[0].startpoint.find("pad_slot"), std::string::npos);
  EXPECT_NE(paths[0].endpoint.find("pad_slot"), std::string::npos);
  EXPECT_FALSE(paths[0].cells.empty());
}

TEST(Sta, SequentialCircuitPathsEndAtRegisters) {
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeSerialCrc(8, 0x07);
  CompiledCircuit c =
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 4));
  dev.applyBitstream(c.fullBitstream());
  ASSERT_TRUE(dev.configOk());
  auto paths = criticalPaths(dev, 20);
  ASSERT_FALSE(paths.empty());
  bool sawFfEndpoint = false;
  for (const TimingPath& p : paths) {
    if (p.endpoint.rfind("ff(", 0) == 0) sawFfEndpoint = true;
  }
  EXPECT_TRUE(sawFfEndpoint);
}

TEST(Sta, EmptyOrFaultyConfigYieldsNoPaths) {
  Device dev = mediumPartialProfile().makeDevice();
  EXPECT_TRUE(criticalPaths(dev, 5).empty());
  const std::string report = renderTimingReport(dev, 5);
  EXPECT_NE(report.find("critical paths"), std::string::npos);
}

TEST(Sta, ReportRendersReadably) {
  DeviceProfile prof = tinyProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeParityTree(6);
  CompileOptions opt;
  opt.relocatable = false;
  CompiledCircuit c =
      compiler.compile(nl, Region::full(dev.geometry()), opt);
  dev.applyBitstream(c.fullBitstream());
  const std::string report = renderTimingReport(dev, 3);
  EXPECT_NE(report.find("#1"), std::string::npos);
  EXPECT_NE(report.find("->"), std::string::npos);
  EXPECT_NE(report.find("lut("), std::string::npos);
}

}  // namespace
}  // namespace vfpga
