// Continuous-monitor tests: the deterministic time-series store (ring
// retention, rollups, CSV/JSON), the alert engine (threshold hysteresis
// including the cancelled edge, multi-window burn-rate math, EWMA warm-up),
// the per-device health model (windowed decay, capacity grades), the MO
// lint rules, and the ClusterScheduler integration — placement steering
// away from a degraded device and the health-triggered early drain that
// fires before the hard usable-columns quarantine threshold.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "analysis/monitor_lint.hpp"
#include "cluster/scheduler.hpp"
#include "core/obs_bridge.hpp"
#include "netlist/library/control.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/monitor/alerts.hpp"
#include "obs/monitor/dashboard.hpp"
#include "obs/monitor/health.hpp"
#include "obs/monitor/timeseries.hpp"
#include "sim/rng.hpp"

namespace vfpga {
namespace {

using obs::monitor::AlertEngine;
using obs::monitor::AlertRule;
using obs::monitor::AlertSeverity;
using obs::monitor::AlertState;
using obs::monitor::AlertTransition;
using obs::monitor::HealthCounters;
using obs::monitor::HealthGrade;
using obs::monitor::HealthModel;
using obs::monitor::HealthOptions;
using obs::monitor::RuleKind;
using obs::monitor::TimeSeriesStore;

Netlist named(Netlist nl, const char* name) {
  nl.setName(name);
  return nl;
}

// ---- TimeSeriesStore -------------------------------------------------------

TEST(TimeSeries, RingDropsOldestButAllTimeStatsSurvive) {
  TimeSeriesStore store(4);
  double v = 0.0;
  store.addSeries("sig", [&v] { return v; });
  for (int t = 1; t <= 6; ++t) {
    v = static_cast<double>(t * 10);
    store.sampleAll(static_cast<std::uint64_t>(t));
  }
  EXPECT_EQ(store.retainedTicks(), 4u);
  EXPECT_EQ(store.totalTicks(), 6u);
  EXPECT_EQ(store.droppedTicks(), 2u);
  ASSERT_EQ(store.tickTimes().size(), 4u);
  EXPECT_EQ(store.tickTimes().front(), 3u);  // ticks 1 and 2 dropped
  EXPECT_EQ(store.tickTimes().back(), 6u);
  EXPECT_DOUBLE_EQ(store.values("sig").front(), 30.0);
  EXPECT_DOUBLE_EQ(store.latest("sig"), 60.0);
  // All-time stats still cover the dropped samples.
  EXPECT_EQ(store.allTime("sig").count(), 6u);
  EXPECT_DOUBLE_EQ(store.allTime("sig").min(), 10.0);
  EXPECT_DOUBLE_EQ(store.allTime("sig").max(), 60.0);
}

TEST(TimeSeries, AggregateIsInclusiveAndRollupAlignsToOldestTick) {
  TimeSeriesStore store(16);
  double v = 0.0;
  store.addSeries("sig", [&v] { return v; });
  const double vals[4] = {1.0, 3.0, 5.0, 7.0};
  const std::uint64_t times[4] = {10, 20, 30, 40};
  for (int i = 0; i < 4; ++i) {
    v = vals[i];
    store.sampleAll(times[i]);
  }
  const auto agg = store.aggregate("sig", 20, 30);  // both ends inclusive
  EXPECT_EQ(agg.count, 2u);
  EXPECT_DOUBLE_EQ(agg.min, 3.0);
  EXPECT_DOUBLE_EQ(agg.max, 5.0);
  EXPECT_DOUBLE_EQ(agg.mean, 4.0);
  EXPECT_DOUBLE_EQ(agg.last, 5.0);

  const auto buckets = store.rollup("sig", 20);
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].startNs, 10u);  // [10, 30): samples 10 and 20
  EXPECT_EQ(buckets[0].agg.count, 2u);
  EXPECT_DOUBLE_EQ(buckets[0].agg.mean, 2.0);
  EXPECT_EQ(buckets[1].startNs, 30u);  // [30, 50): samples 30 and 40
  EXPECT_EQ(buckets[1].agg.count, 2u);
  EXPECT_DOUBLE_EQ(buckets[1].agg.last, 7.0);
}

TEST(TimeSeries, RegistrationAndSamplingContracts) {
  TimeSeriesStore store(8);
  store.addSeries("a", [] { return 1.0; });
  EXPECT_THROW(store.addSeries("a", [] { return 2.0; }), std::logic_error);
  store.sampleAll(100);
  // No new series once sampling started, and time must move forward.
  EXPECT_THROW(store.addSeries("late", [] { return 0.0; }),
               std::logic_error);
  EXPECT_THROW(store.sampleAll(100), std::logic_error);
  EXPECT_THROW(store.sampleAll(50), std::logic_error);
  EXPECT_THROW(store.values("missing"), std::logic_error);
}

TEST(TimeSeries, BindMetricResolvesLazilyAndReadsHistogramFields) {
  obs::MetricsRegistry reg;
  TimeSeriesStore store(8);
  store.bindMetric("jobs", reg, "vfpga_test_jobs_total");
  store.bindMetric("wait_p50", reg, "vfpga_test_wait_ns", {},
                   obs::monitor::SeriesField::kP50);
  store.sampleAll(10);  // neither metric exists yet: reads 0
  EXPECT_DOUBLE_EQ(store.latest("jobs"), 0.0);
  EXPECT_DOUBLE_EQ(store.latest("wait_p50"), 0.0);

  reg.counter("vfpga_test_jobs_total").inc(5);
  auto& h = reg.histogram("vfpga_test_wait_ns", 0.0, 100.0, 10);
  h.observe(25.0);
  h.observe(25.0);
  h.observe(75.0);
  store.sampleAll(20);
  EXPECT_DOUBLE_EQ(store.latest("jobs"), 5.0);
  // The p50 is bucket-resolved; pin it to the bucket holding the median.
  EXPECT_GE(store.latest("wait_p50"), 20.0);
  EXPECT_LE(store.latest("wait_p50"), 30.0);
}

TEST(TimeSeries, CsvAndJsonAreByteDeterministic) {
  auto build = [] {
    TimeSeriesStore store(8);
    double v = 0.0;
    store.addSeries("sig", [&v] { return v; }, "ns");
    store.setSampleIntervalNs(100);
    for (int t = 1; t <= 5; ++t) {
      v = t * 2.5;
      store.sampleAll(static_cast<std::uint64_t>(t) * 100);
    }
    return std::make_pair(store.renderCsv(), store.renderJson());
  };
  const auto a = build();
  const auto b = build();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.first.substr(0, a.first.find('\n')), "t_ns,sig");
  EXPECT_NE(a.second.find("\"sample_interval_ns\": 100"), std::string::npos);
}

// ---- AlertEngine -----------------------------------------------------------

/// Drives one probe-backed series through the engine at a fixed cadence.
struct Harness {
  TimeSeriesStore store{64};
  AlertEngine engine;
  double v = 0.0;
  std::uint64_t t = 0;

  explicit Harness(AlertRule rule) {
    store.addSeries(rule.series, [this] { return v; });
    engine.addRule(std::move(rule));
  }
  void tick(double value, std::uint64_t dt = 100) {
    v = value;
    t += dt;
    store.sampleAll(t);
    engine.evaluate(t, store);
  }
  const obs::monitor::RuleStatus& status() const {
    return engine.rules().front();
  }
};

TEST(Alerts, ThresholdHysteresisPendingFiringResolved) {
  AlertRule r;
  r.name = "hot";
  r.series = "sig";
  r.kind = RuleKind::kThreshold;
  r.threshold = 5.0;
  r.forNs = 200;
  r.resolveNs = 200;
  Harness h(r);

  h.tick(1.0);  // t=100 idle
  EXPECT_EQ(h.status().state, AlertState::kIdle);
  h.tick(10.0);  // t=200 -> pending
  EXPECT_EQ(h.status().state, AlertState::kPending);
  h.tick(10.0);  // t=300, held 100 < forNs
  EXPECT_EQ(h.status().state, AlertState::kPending);
  h.tick(10.0);  // t=400, held 200 >= forNs -> firing
  EXPECT_EQ(h.status().state, AlertState::kFiring);
  EXPECT_EQ(h.engine.worstFiringGrade(), 1);
  h.tick(1.0);  // t=500: condition clear, resolution clock starts
  EXPECT_EQ(h.status().state, AlertState::kFiring);
  EXPECT_TRUE(h.engine.resolutionPending());
  h.tick(1.0);  // t=600
  h.tick(1.0);  // t=700, clear 200 >= resolveNs -> resolved
  EXPECT_EQ(h.status().state, AlertState::kIdle);
  EXPECT_EQ(h.engine.worstFiringGrade(), 0);
  EXPECT_EQ(h.status().incidents, 1u);

  std::vector<std::string> edges;
  for (const AlertTransition& tr : h.engine.transitions()) {
    edges.push_back(tr.to);
  }
  EXPECT_EQ(edges,
            (std::vector<std::string>{"pending", "firing", "resolved"}));
}

TEST(Alerts, PendingCancelsWhenConditionClearsBeforeFor) {
  AlertRule r;
  r.name = "flappy";
  r.series = "sig";
  r.kind = RuleKind::kThreshold;
  r.threshold = 5.0;
  r.forNs = 500;
  Harness h(r);

  h.tick(10.0);  // pending
  EXPECT_EQ(h.status().state, AlertState::kPending);
  h.tick(1.0);  // cleared before forNs elapsed -> cancelled
  EXPECT_EQ(h.status().state, AlertState::kIdle);
  EXPECT_EQ(h.status().incidents, 0u);
  ASSERT_EQ(h.engine.transitions().size(), 2u);
  EXPECT_EQ(h.engine.transitions()[1].to, "cancelled");
}

TEST(Alerts, ImmediateFireRecordsBothEdgesInOneTick) {
  AlertRule r;
  r.name = "instant";
  r.series = "sig";
  r.kind = RuleKind::kThreshold;
  r.threshold = 5.0;  // forNs = resolveNs = 0
  Harness h(r);
  h.tick(10.0);
  EXPECT_EQ(h.status().state, AlertState::kFiring);
  ASSERT_EQ(h.engine.transitions().size(), 2u);
  EXPECT_EQ(h.engine.transitions()[0].to, "pending");
  EXPECT_EQ(h.engine.transitions()[1].to, "firing");
  h.tick(1.0);
  EXPECT_EQ(h.status().state, AlertState::kIdle);
  EXPECT_EQ(h.engine.transitions().back().to, "resolved");
}

TEST(Alerts, BurnRateNeedsBothWindowsAndFullLongWindowRetention) {
  AlertRule r;
  r.name = "burn";
  r.series = "bad";
  r.kind = RuleKind::kBurnRate;
  r.windowNs = 200;
  r.longWindowNs = 400;
  r.objective = 0.5;
  r.burnFactor = 1.0;
  Harness h(r);

  // All-bad from the start, but the rule stays silent until the store has
  // retained a full long window (first tick at 100 => armed at t >= 500).
  h.tick(1.0);  // 100
  h.tick(1.0);  // 200
  h.tick(1.0);  // 300
  h.tick(1.0);  // 400
  EXPECT_TRUE(h.engine.transitions().empty());
  h.tick(1.0);  // 500: short mean 1.0 / 0.5 = 2.0, long mean 1.0 / 0.5 = 2.0
  EXPECT_EQ(h.status().state, AlertState::kFiring);
  EXPECT_DOUBLE_EQ(h.status().lastValue, 2.0);  // min(short, long) burn

  // Badness stops: the short window drains first, the rule resolves once
  // its burn drops below the factor even though the long window is still
  // elevated (both-windows conjunction).
  h.tick(0.0);  // 600: short {1,1,0} -> burn 1.33, still firing
  EXPECT_EQ(h.status().state, AlertState::kFiring);
  h.tick(0.0);  // 700: short {1,0,0} -> burn 0.67 < 1 -> resolved
  EXPECT_EQ(h.status().state, AlertState::kIdle);
  EXPECT_EQ(h.engine.transitions().back().to, "resolved");
}

TEST(Alerts, EwmaZScoreSuppressedDuringWarmup) {
  AlertRule r;
  r.name = "anomaly";
  r.series = "sig";
  r.kind = RuleKind::kEwmaZScore;
  r.ewmaAlpha = 0.5;
  r.zThreshold = 3.0;
  r.warmupSamples = 4;
  Harness h(r);

  h.tick(10.0);   // seeds the mean
  h.tick(90.0);   // wild swing during warm-up: suppressed
  h.tick(10.0);
  h.tick(10.0);
  EXPECT_TRUE(h.engine.transitions().empty());
  // Settle, then spike after warm-up: fires.
  h.tick(10.0);
  h.tick(10.0);
  h.tick(10.0);
  const std::size_t before = h.engine.transitions().size();
  h.tick(1000.0);
  EXPECT_EQ(h.status().state, AlertState::kFiring);
  EXPECT_GT(h.engine.transitions().size(), before);
}

TEST(Alerts, UnknownSeriesThrowsAndDuplicateRuleNameThrows) {
  TimeSeriesStore store(8);
  store.addSeries("known", [] { return 0.0; });
  AlertEngine engine;
  AlertRule r;
  r.name = "r1";
  r.series = "unknown";
  engine.addRule(r);
  EXPECT_THROW(engine.addRule(r), std::logic_error);  // duplicate name
  store.sampleAll(10);
  EXPECT_THROW(engine.evaluate(10, store), std::logic_error);
}

// ---- HealthModel -----------------------------------------------------------

TEST(Health, ActivityScoreDecaysOnceTheWindowPasses) {
  HealthOptions opt;
  opt.windowNs = 1000;
  HealthModel hm(opt);
  HealthCounters c;
  c.usableColumns = 12;
  c.totalColumns = 12;
  hm.update("dev", 0, c);
  EXPECT_EQ(hm.grade("dev"), HealthGrade::kHealthy);

  c.quarantinedStrips = 1;  // +3
  c.watchdogPreempts = 2;   // +4 -> score 7 >= criticalAt
  hm.update("dev", 100, c);
  EXPECT_EQ(hm.grade("dev"), HealthGrade::kCritical);
  EXPECT_DOUBLE_EQ(hm.score("dev"), 7.0);

  // Same counters much later: the deltas age out of the window.
  hm.update("dev", 2000, c);
  EXPECT_EQ(hm.grade("dev"), HealthGrade::kHealthy);
  EXPECT_DOUBLE_EQ(hm.score("dev"), 0.0);

  // healthy -> critical -> healthy recorded as events.
  ASSERT_EQ(hm.events().size(), 2u);
  EXPECT_EQ(hm.events()[0].to, HealthGrade::kCritical);
  EXPECT_EQ(hm.events()[1].to, HealthGrade::kHealthy);
}

TEST(Health, CapacityRatioGradesWithoutAnyFaultActivity) {
  HealthModel hm;
  HealthCounters c;
  c.totalColumns = 12;
  c.usableColumns = 7;  // 0.58 < 0.60
  hm.update("dev", 10, c);
  EXPECT_EQ(hm.grade("dev"), HealthGrade::kDegraded);
  c.usableColumns = 4;  // 0.33 < 0.35
  hm.update("dev", 20, c);
  EXPECT_EQ(hm.grade("dev"), HealthGrade::kCritical);
  c.usableColumns = 12;
  hm.update("dev", 30, c);
  EXPECT_EQ(hm.grade("dev"), HealthGrade::kHealthy);
  // Unknown devices read healthy; firing alerts weigh into the score.
  EXPECT_EQ(hm.grade("ghost"), HealthGrade::kHealthy);
  hm.update("dev", 40, c, /*firingWarnings=*/1, /*firingCriticals=*/1);
  EXPECT_DOUBLE_EQ(hm.score("dev"), 1.0 + 3.0);
}

TEST(Health, ZeroWeightsReportNoFaultInputs) {
  HealthOptions opt;
  opt.wQuarantine = opt.wRelocation = opt.wScrubRepair = 0.0;
  opt.wWatchdog = opt.wParked = opt.wRetry = opt.wCrc = 0.0;
  EXPECT_FALSE(HealthModel(opt).hasFaultInputs());
  EXPECT_TRUE(HealthModel().hasFaultInputs());
}

// ---- MO lint ---------------------------------------------------------------

TEST(MonitorLint, FlagsEveryMisconfiguration) {
  analysis::MonitorProfile p;
  p.seriesNames = {"good"};
  analysis::MonitorRuleProfile unknown;
  unknown.name = "r_unknown";
  unknown.series = "nope";
  p.rules.push_back(unknown);
  analysis::MonitorRuleProfile zero;
  zero.name = "r_zero";
  zero.series = "good";
  zero.isBurnRate = true;
  zero.windowNs = 0;
  p.rules.push_back(zero);
  analysis::MonitorRuleProfile flat;
  flat.name = "r_flat";
  flat.series = "good";
  flat.isBurnRate = true;
  flat.windowNs = 100;
  flat.longWindowNs = 100;  // not strictly nested
  p.rules.push_back(flat);
  p.healthAttached = true;
  p.healthHasFaultInputs = false;

  analysis::Report rep;
  analysis::lintMonitor(p, rep);
  std::vector<std::string> rules;
  for (const auto& d : rep.diagnostics()) rules.push_back(d.rule);
  EXPECT_EQ(rules, (std::vector<std::string>{"MO001", "MO002", "MO003",
                                             "MO004"}));
  EXPECT_FALSE(rep.ok());  // MO001-MO003 are errors

  analysis::MonitorProfile clean;
  clean.seriesNames = {"good"};
  analysis::MonitorRuleProfile okRule;
  okRule.name = "r_ok";
  okRule.series = "good";
  okRule.isBurnRate = true;
  okRule.windowNs = 100;
  okRule.longWindowNs = 400;
  clean.rules.push_back(okRule);
  clean.healthAttached = true;
  clean.healthHasFaultInputs = true;
  analysis::Report cleanRep;
  analysis::lintMonitor(clean, cleanRep);
  EXPECT_TRUE(cleanRep.diagnostics().empty());
}

// ---- ClusterScheduler integration ------------------------------------------

struct MonitoredRun {
  Simulation sim;
  cluster::BitstreamCache cache{16};
  std::unique_ptr<cluster::DevicePool> pool;
  std::unique_ptr<cluster::ClusterScheduler> sched;
  TimeSeriesStore store{512};
  AlertEngine engine;
  HealthModel health;
  cluster::WorkloadId workload = 0;
};

std::unique_ptr<MonitoredRun> makeRun(std::size_t devices,
                                      std::size_t jobs) {
  auto run = std::make_unique<MonitoredRun>();
  std::vector<cluster::DeviceNodeSpec> specs(devices);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].name = "dev" + std::to_string(i);
    specs[i].profile = mediumPartialProfile();
  }
  run->pool = std::make_unique<cluster::DevicePool>(run->sim, specs,
                                                    run->cache);
  run->workload = run->pool->registerWorkload(
      "count", named(lib::makeCounter(6), "count"), 4);
  cluster::ClusterOptions copt;
  copt.minUsableColumns = 8;
  run->sched = std::make_unique<cluster::ClusterScheduler>(run->sim,
                                                           *run->pool, copt);
  for (std::size_t j = 0; j < jobs; ++j) {
    cluster::ClusterJobSpec job;
    job.name = "t" + std::to_string(j);
    job.submitAt = static_cast<SimTime>(j) * micros(30);
    job.ops = {CpuBurst{micros(10)}, FpgaExec{run->workload, 40000},
               CpuBurst{micros(5)}};
    run->sched->submit(std::move(job));
  }
  return run;
}

TEST(MonitorScheduler, PlacementAvoidsDegradedDeviceWhileHealthyOnesFit) {
  // Control: without a health model, least-loaded spreads across devices.
  auto control = makeRun(2, 4);
  control->sched->run();
  bool controlUsedDev1 = false;
  for (const auto& o : control->sched->outcomes()) {
    if (o.device == "dev1") controlUsedDev1 = true;
  }
  ASSERT_TRUE(controlUsedDev1);

  // Same campaign, but dev1 is pre-graded degraded (capacity ratio) in a
  // consult-only attachment (sampleInterval = 0): every job must land on
  // the healthy dev0 even though dev1 has free capacity and equal load.
  auto run = makeRun(2, 4);
  HealthCounters c;
  c.totalColumns = 12;
  c.usableColumns = 7;  // 0.58 < 0.60 -> degraded
  run->health.update("dev1", 0, c);
  cluster::ClusterScheduler::MonitorAttachment mon;
  mon.health = &run->health;
  run->sched->attachMonitor(mon);
  EXPECT_EQ(run->sched->deviceHealth(1), HealthGrade::kDegraded);
  run->sched->run();
  const auto& s = run->sched->summary();
  EXPECT_EQ(s.completed, s.admitted);
  for (const auto& o : run->sched->outcomes()) {
    EXPECT_EQ(o.device, "dev0") << o.name;
    EXPECT_EQ(o.migrations, 0u);
  }
}

TEST(MonitorScheduler, CriticalHealthDrainsEarlyBeforeHardQuarantine) {
  auto run = makeRun(2, 4);
  cluster::ClusterScheduler::MonitorAttachment mon;
  mon.health = &run->health;
  run->sched->attachMonitor(mon);

  // Let jobs spread, then mark dev1 critical mid-run. No fault plan is
  // installed anywhere: dev1's usable span never shrinks, so the classic
  // quarantine drain (usableColumns < minUsableColumns) can never trigger.
  HealthCounters ok;
  ok.totalColumns = 12;
  ok.usableColumns = 12;
  run->health.update("dev1", 0, ok);
  run->sim.scheduleAt(micros(200), [&run] {
    HealthCounters bad;
    bad.totalColumns = 12;
    bad.usableColumns = 4;  // 0.33 < 0.35 -> critical
    run->health.update("dev1", micros(200), bad);
  });
  run->sched->run();

  const auto& s = run->sched->summary();
  EXPECT_EQ(s.completed, s.admitted);
  EXPECT_EQ(s.parked, 0u);
  // The early drain moved work off dev1 while its fabric was still fully
  // usable — the whole point of acting on health before quarantine.
  EXPECT_GE(s.migrationsDrain, 1u);
  EXPECT_EQ(run->pool->node(1).usableColumns(), 12);
  const obs::Metric* drains = run->sched->metricsRegistry().find(
      "vfpga_cluster_health_drains_total");
  ASSERT_NE(drains, nullptr);
  EXPECT_GE(std::get<obs::Counter>(drains->value).value(), 1u);
  // Every job finished on the healthy device.
  for (const auto& o : run->sched->outcomes()) {
    EXPECT_EQ(o.device, "dev0") << o.name;
  }
}

// Counts the rows of the health table in a rendered text dashboard.
std::size_t healthDeviceRows(const std::string& text) {
  if (text.find("\nhealth\n") == std::string::npos) return 0;
  std::size_t n = 0;
  for (const char* dev : {"  dev0", "  dev1"}) {
    if (text.find(dev) != std::string::npos) ++n;
  }
  return n;
}

TEST(MonitorScheduler, SampledCampaignRendersAreByteIdentical) {
  auto campaign = [](std::string* text, std::string* json, std::string* html,
                     std::vector<std::string>* edges) {
    auto run = makeRun(2, 6);
    bindKernelSeries(run->store, run->pool->node(0).kernel(), "dev0.");
    bindKernelSeries(run->store, run->pool->node(1).kernel(), "dev1.");
    auto* sched = run->sched.get();
    run->store.addSeries("cluster.queue_depth", [sched] {
      return static_cast<double>(sched->queueDepth());
    });
    AlertRule r;
    r.name = "busy";
    r.series = "dev0.running";
    r.kind = RuleKind::kThreshold;
    r.threshold = 0.5;
    r.forNs = micros(100);
    r.resolveNs = micros(100);
    run->engine.addRule(r);
    run->engine.setTransitionObserver(
        [edges](const AlertTransition& tr) { edges->push_back(tr.to); });

    cluster::ClusterScheduler::MonitorAttachment mon;
    mon.store = &run->store;
    mon.engine = &run->engine;
    mon.health = &run->health;
    mon.sampleInterval = micros(50);
    run->sched->attachMonitor(mon);
    run->sched->run();

    obs::monitor::DashboardInput in;
    in.store = &run->store;
    in.engine = &run->engine;
    in.health = &run->health;
    in.atNs = run->store.lastTickNs();
    *text = renderMonitorText(in);
    *json = renderMonitorJson(in);
    *html = renderMonitorHtml(in);
  };

  std::string textA, jsonA, htmlA, textB, jsonB, htmlB;
  std::vector<std::string> edgesA, edgesB;
  campaign(&textA, &jsonA, &htmlA, &edgesA);
  campaign(&textB, &jsonB, &htmlB, &edgesB);
  EXPECT_EQ(textA, textB);
  EXPECT_EQ(jsonA, jsonB);
  EXPECT_EQ(htmlA, htmlB);
  EXPECT_EQ(edgesA, edgesB);
  // The kernels were genuinely busy, so the rule fired at least once and
  // was resolved by the post-settle grace ticks before the campaign ended.
  EXPECT_GE(std::count(edgesA.begin(), edgesA.end(), "firing"), 1);
  ASSERT_FALSE(edgesA.empty());
  EXPECT_EQ(edgesA.back(), "resolved");
  // Health collection ran on the scheduler cadence for both devices.
  EXPECT_EQ(healthDeviceRows(textA), 2u);
}

TEST(MonitorScheduler, AttachmentContracts) {
  auto run = makeRun(2, 1);
  cluster::ClusterScheduler::MonitorAttachment mon;
  mon.sampleInterval = micros(50);  // sampling without a store
  EXPECT_THROW(run->sched->attachMonitor(mon), std::invalid_argument);
  run->sched->run();
  cluster::ClusterScheduler::MonitorAttachment late;
  late.health = &run->health;
  EXPECT_THROW(run->sched->attachMonitor(late), std::logic_error);
}

// ---- FlightRecorder notes --------------------------------------------------

TEST(FlightRecorder, NotesRideIntoTheBundleBounded) {
  obs::FlightRecorder::Options opt;
  opt.noteCapacity = 2;
  obs::FlightRecorder fr(opt);
  fr.note(100, "alert a -> firing");
  fr.note(200, "alert a -> resolved");
  fr.note(300, "alert b -> firing");
  ASSERT_EQ(fr.notes().size(), 2u);  // oldest dropped
  EXPECT_EQ(fr.notes().front().atNs, 200u);
  const std::string bundle = fr.renderBundle("MO000", "test");
  EXPECT_NE(bundle.find("\"notes\""), std::string::npos);
  EXPECT_NE(bundle.find("alert b -> firing"), std::string::npos);
  EXPECT_EQ(bundle.find("alert a -> firing"), std::string::npos);
}

}  // namespace
}  // namespace vfpga
