// Bitstream byte-format round trips and the VCD waveform writer.
#include <gtest/gtest.h>

#include <sstream>

#include "compile/compiler.hpp"
#include "compile/loaded_circuit.hpp"
#include "fabric/bitstream.hpp"
#include "fabric/device_family.hpp"
#include "fabric/vcd.hpp"
#include "netlist/library/control.hpp"
#include "sim/rng.hpp"

namespace vfpga {
namespace {

Bitstream sampleBitstream(std::uint32_t frameBits, std::uint32_t frames,
                          std::uint64_t seed) {
  ConfigImage img(frameBits * frames);
  Rng rng(seed);
  for (std::uint32_t b = 0; b < img.size(); ++b) {
    img.set(b, rng.bernoulli(0.3));
  }
  return makeFullBitstream(img, frameBits);
}

TEST(BitstreamSerialization, RoundTripFull) {
  Bitstream bs = sampleBitstream(128, 7, 11);
  const auto bytes = serializeBitstream(bs);
  Bitstream back = deserializeBitstream(bytes);
  EXPECT_EQ(back.frameBits, bs.frameBits);
  EXPECT_EQ(back.full, bs.full);
  ASSERT_EQ(back.frames.size(), bs.frames.size());
  for (std::size_t f = 0; f < bs.frames.size(); ++f) {
    EXPECT_EQ(back.frames[f].id, bs.frames[f].id);
    EXPECT_EQ(back.frames[f].payload, bs.frames[f].payload);
  }
  EXPECT_EQ(back.crc, bs.crc);
  EXPECT_TRUE(back.crcOk());
}

TEST(BitstreamSerialization, RoundTripPartialOddFrameBits) {
  // frameBits not a byte multiple exercises the packing tail.
  ConfigImage img(3 * 37);
  img.set(5, true);
  img.set(100, true);
  std::vector<std::uint32_t> ids{0, 2};
  Bitstream bs = makePartialBitstream(img, 37, ids);
  Bitstream back = deserializeBitstream(serializeBitstream(bs));
  EXPECT_FALSE(back.full);
  ASSERT_EQ(back.frames.size(), 2u);
  EXPECT_EQ(back.frames[0].payload, bs.frames[0].payload);
  EXPECT_EQ(back.frames[1].payload, bs.frames[1].payload);
}

TEST(BitstreamSerialization, DetectsEveryKindOfDamage) {
  Bitstream bs = sampleBitstream(64, 4, 23);
  auto bytes = serializeBitstream(bs);

  auto expectReject = [](std::vector<std::uint8_t> b) {
    EXPECT_THROW(deserializeBitstream(b), std::runtime_error);
  };
  // Bad magic.
  {
    auto b = bytes;
    b[0] = 'X';
    expectReject(b);
  }
  // Unsupported version.
  {
    auto b = bytes;
    b[4] = 0xFF;
    expectReject(b);
  }
  // Truncation at every prefix length must throw, never crash.
  for (std::size_t cut : {std::size_t{3}, std::size_t{9}, bytes.size() / 2,
                          bytes.size() - 1}) {
    expectReject({bytes.begin(), bytes.begin() + static_cast<long>(cut)});
  }
  // Payload corruption -> CRC mismatch.
  {
    auto b = bytes;
    b[20] ^= 0x10;
    expectReject(b);
  }
  // Trailing garbage.
  {
    auto b = bytes;
    b.push_back(0);
    expectReject(b);
  }
  // Pristine bytes still parse.
  EXPECT_NO_THROW(deserializeBitstream(bytes));
}

TEST(BitstreamSerialization, CompiledCircuitRoundTripsThroughBytes) {
  // The realistic path: compile, serialize the partial bitstream "to
  // disk", load it back and configure a device with it.
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeCounter(6);
  CompiledCircuit c =
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 4));
  const auto bytes = serializeBitstream(c.partialBitstream());
  dev.applyBitstream(deserializeBitstream(bytes));
  ASSERT_TRUE(dev.configOk()) << dev.elaboration().faults.front();
  LoadedCircuit lc(dev, c);
  lc.setInput("en", true);
  lc.setInput("clr", false);
  for (int i = 0; i < 9; ++i) {
    lc.evaluate();
    lc.tick();
  }
  lc.evaluate();
  EXPECT_EQ(lc.outputBus("q", 6), 9u);
}

// ------------------------------------------------------------------- VCD

TEST(Vcd, EmitsHeaderInitialDumpAndChangesOnly) {
  std::ostringstream os;
  VcdWriter vcd(os);
  bool a = false, b = true;
  vcd.addSignal("a", [&] { return a; });
  vcd.addSignal("top.b", [&] { return b; });
  vcd.sample(0);
  a = true;  // only a changes
  vcd.sample(5);
  vcd.sample(7);  // nothing changed: no timestamp emitted
  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! a $end"), std::string::npos);
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_NE(out.find("#5"), std::string::npos);
  EXPECT_EQ(out.find("#7"), std::string::npos);
  // Initial dump has both, second stamp only 'a'.
  const auto at5 = out.find("#5");
  EXPECT_NE(out.find("1!", at5), std::string::npos);
  EXPECT_EQ(out.find("\"", at5), std::string::npos);  // b's id is '"'
}

TEST(Vcd, RejectsLateSignalsAndTimeTravel) {
  std::ostringstream os;
  VcdWriter vcd(os);
  vcd.addSignal("x", [] { return false; });
  vcd.sample(10);
  EXPECT_THROW(vcd.addSignal("y", [] { return false; }), std::logic_error);
  EXPECT_THROW(vcd.sample(5), std::logic_error);
  EXPECT_NO_THROW(vcd.sample(10));  // equal time is fine
}

TEST(Vcd, IdentifiersStayUniqueBeyondOneChar) {
  std::ostringstream os;
  VcdWriter vcd(os);
  std::vector<bool> vals(200, false);
  for (int i = 0; i < 200; ++i) {
    vcd.addSignal("s" + std::to_string(i),
                  [&vals, i] { return vals[static_cast<std::size_t>(i)]; });
  }
  vcd.sample(0);
  // 200 > 94 printable ids, so two-char identifiers appear; count the
  // distinct declarations.
  std::string out = os.str();
  std::size_t vars = 0, pos = 0;
  while ((pos = out.find("$var", pos)) != std::string::npos) {
    ++vars;
    pos += 4;
  }
  EXPECT_EQ(vars, 200u);
}

TEST(Vcd, TracesARealDeviceCounter) {
  DeviceProfile prof = tinyProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeCounter(4);
  CompileOptions opt;
  opt.relocatable = false;
  CompiledCircuit c =
      compiler.compile(nl, Region::full(dev.geometry()), opt);
  dev.applyBitstream(c.fullBitstream());
  ASSERT_TRUE(dev.configOk());
  LoadedCircuit lc(dev, c);
  lc.setInput("en", true);
  lc.setInput("clr", false);

  std::ostringstream os;
  VcdWriter vcd(os);
  for (int bit = 0; bit < 4; ++bit) {
    vcd.addSignal("q" + std::to_string(bit), [&lc, bit] {
      return lc.output("q" + std::to_string(bit));
    });
  }
  for (std::uint64_t t = 0; t < 8; ++t) {
    dev.evaluate();
    vcd.sample(t * 10);
    dev.tick();
  }
  const std::string out = os.str();
  // q0 toggles every cycle: its id '!' must appear at every timestamp.
  for (int t = 1; t < 8; ++t) {
    const auto stamp = out.find("#" + std::to_string(t * 10));
    ASSERT_NE(stamp, std::string::npos) << "missing timestamp " << t * 10;
  }
}

}  // namespace
}  // namespace vfpga
