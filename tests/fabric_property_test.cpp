// Parameterized structural invariants of the fabric across geometries:
// the routing graph, configuration map and relocation congruence must hold
// for every device shape, not just the presets.
#include <gtest/gtest.h>

#include <set>

#include "compile/compiler.hpp"
#include "fabric/config_map.hpp"
#include "fabric/device_family.hpp"
#include "fabric/routing_graph.hpp"
#include "netlist/library/coding.hpp"

namespace vfpga {
namespace {

struct GeomParam {
  std::uint16_t rows, cols, wires;
  std::uint8_t k, slots;
};

class FabricGeometrySweep : public ::testing::TestWithParam<GeomParam> {};

TEST_P(FabricGeometrySweep, RoutingGraphInvariants) {
  const GeomParam p = GetParam();
  FabricGeometry g{p.rows, p.cols, p.k, p.wires, p.slots};
  RoutingGraph rrg(g);

  // Node count matches the closed-form census.
  const std::size_t expectNodes =
      g.clbCount() * (1 + g.lutInputs) +
      std::size_t(g.rows + 1) * g.cols * g.wiresPerChannel +
      std::size_t(g.cols + 1) * g.rows * g.wiresPerChannel +
      g.padSlotCount();
  EXPECT_EQ(rrg.nodeCount(), expectNodes);

  std::size_t outTotal = 0;
  for (RRNodeId n = 0; n < rrg.nodeCount(); ++n) {
    const RRNode& node = rrg.node(n);
    // No self loops; endpoints valid; pin direction rules.
    for (RREdgeId e : rrg.edgesFrom(n)) {
      ASSERT_EQ(rrg.edge(e).from, n);
      ASSERT_NE(rrg.edge(e).to, n);
      ASSERT_LT(rrg.edge(e).to, rrg.nodeCount());
    }
    outTotal += rrg.edgesFrom(n).size();
    if (node.kind == RRKind::kClbIn) {
      EXPECT_TRUE(rrg.edgesFrom(n).empty());
      EXPECT_EQ(rrg.edgesInto(n).size(), g.wiresPerChannel);
    }
    if (node.kind == RRKind::kClbOut) {
      EXPECT_TRUE(rrg.edgesInto(n).empty());
      EXPECT_EQ(rrg.edgesFrom(n).size(), 4u * g.wiresPerChannel);
    }
    if (node.kind == RRKind::kPadSlot) {
      // Bidirectional pad connectivity: same fan-in and fan-out.
      EXPECT_EQ(rrg.edgesFrom(n).size(), rrg.edgesInto(n).size());
      EXPECT_EQ(rrg.edgesFrom(n).size(), g.wiresPerChannel);
    }
  }
  EXPECT_EQ(outTotal, rrg.edgeCount());

  // Ownership is a partition of nodes onto [0, cols).
  std::vector<std::size_t> perCol(g.cols, 0);
  for (RRNodeId n = 0; n < rrg.nodeCount(); ++n) {
    ++perCol[rrg.ownerColumn(n)];
  }
  for (std::size_t c = 0; c < g.cols; ++c) EXPECT_GT(perCol[c], 0u);
}

TEST_P(FabricGeometrySweep, ConfigMapFramesTileColumns) {
  const GeomParam p = GetParam();
  FabricGeometry g{p.rows, p.cols, p.k, p.wires, p.slots};
  RoutingGraph rrg(g);
  ConfigMap map(rrg, 96);
  std::uint32_t prev = 0;
  for (std::uint16_t c = 0; c < g.cols; ++c) {
    auto [f0, f1] = map.framesOfColumn(c);
    EXPECT_EQ(f0, prev);
    EXPECT_GT(f1, f0);
    prev = f1;
  }
  EXPECT_EQ(prev, map.frameCount());
  EXPECT_LE(map.usedBits(), map.totalBits());
  // Every edge bit lands in its sink's owner column frames.
  for (RREdgeId e = 0; e < rrg.edgeCount(); e += 7) {  // sampled
    const std::uint16_t col = rrg.ownerColumn(rrg.edge(e).to);
    auto [f0, f1] = map.framesOfColumn(col);
    const std::uint32_t f = map.frameOfBit(map.edgeBit(e));
    EXPECT_GE(f, f0);
    EXPECT_LT(f, f1);
  }
}

TEST_P(FabricGeometrySweep, InteriorColumnsAreCongruent) {
  // The per-column used-bit count must be identical for interior columns —
  // the property that makes strip relocation meaningful.
  const GeomParam p = GetParam();
  if (p.cols < 4) GTEST_SKIP();
  FabricGeometry g{p.rows, p.cols, p.k, p.wires, p.slots};
  RoutingGraph rrg(g);
  ConfigMap map(rrg, 96);
  std::set<std::uint32_t> interiorFrameCounts;
  for (std::uint16_t c = 1; c + 2 < g.cols; ++c) {
    auto [f0, f1] = map.framesOfColumn(c);
    interiorFrameCounts.insert(f1 - f0);
  }
  EXPECT_EQ(interiorFrameCounts.size(), 1u)
      << "interior columns differ in frame count";
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FabricGeometrySweep,
    ::testing::Values(GeomParam{4, 4, 4, 4, 2}, GeomParam{6, 6, 6, 4, 4},
                      GeomParam{8, 12, 8, 4, 4}, GeomParam{12, 8, 8, 5, 3},
                      GeomParam{3, 16, 6, 4, 2}),
    [](const auto& info) {
      return std::to_string(info.param.rows) + "x" +
             std::to_string(info.param.cols) + "w" +
             std::to_string(info.param.wires) + "k" +
             std::to_string(info.param.k);
    });

TEST(RelocationProperty, EveryInteriorTargetWorks) {
  // One compiled circuit, relocated to every legal strip start: all must
  // decode and keep the same structure.
  DeviceProfile prof = mediumPartialProfile();
  Device dev = prof.makeDevice();
  Compiler compiler(dev);
  Netlist nl = lib::makeSerialCrc(8, 0x07);
  CompiledCircuit c =
      compiler.compile(nl, Region::columns(dev.geometry(), 0, 4));
  for (std::uint16_t x0 = 0; x0 + 4 <= dev.geometry().cols; ++x0) {
    CompiledCircuit moved = compiler.relocate(c, x0);
    dev.clearConfig();
    dev.applyBitstream(moved.fullBitstream());
    ASSERT_TRUE(dev.configOk())
        << "x0=" << x0 << ": " << dev.elaboration().faults.front();
    EXPECT_EQ(dev.elaboration().cells.size(), c.cellCount());
    EXPECT_EQ(dev.elaboration().ffCount, c.ffCount());
  }
}

}  // namespace
}  // namespace vfpga
