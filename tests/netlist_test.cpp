#include <gtest/gtest.h>

#include <stdexcept>

#include "netlist/builder.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/netlist.hpp"

namespace vfpga {
namespace {

TEST(Netlist, ArityIsEnforced) {
  Netlist nl;
  GateId a = nl.addInput("a");
  EXPECT_THROW(nl.addGate(GateKind::kAnd, {a}), std::logic_error);
  EXPECT_THROW(nl.addGate(GateKind::kNot, {a, a}), std::logic_error);
  EXPECT_THROW(nl.addGate(GateKind::kMux, {a, a}), std::logic_error);
}

TEST(Netlist, DuplicatePortNamesRejected) {
  Netlist nl;
  nl.addInput("a");
  EXPECT_THROW(nl.addInput("a"), std::logic_error);
  GateId g = nl.addInput("b");
  nl.addOutput("o", g);
  EXPECT_THROW(nl.addOutput("o", g), std::logic_error);
}

TEST(Netlist, FaninRangeChecked) {
  Netlist nl;
  EXPECT_THROW(nl.addGate(GateKind::kNot, {42}), std::logic_error);
  EXPECT_THROW(nl.addOutput("o", 42), std::logic_error);
}

TEST(Netlist, ConstantsAreMemoized) {
  Netlist nl;
  EXPECT_EQ(nl.constant(true), nl.constant(true));
  EXPECT_EQ(nl.constant(false), nl.constant(false));
  EXPECT_NE(nl.constant(true), nl.constant(false));
}

TEST(Netlist, CombinationalCycleDetected) {
  Netlist nl;
  Builder b(nl);
  GateId a = nl.addInput("a");
  // g = and(a, g) is a combinational cycle, built via rebind trick: we
  // can't construct it directly (fanins must exist), so use two gates and
  // a DFF-free loop through rebindDff is not possible either. Instead
  // construct x = and(a, y), y = buf(x) by building y after x via a
  // placeholder DFF... The representable cycle needs rebind, so verify the
  // DFF-broken loop is NOT flagged and a hand-made cyclic graph IS.
  GateId d = b.stateBus(1)[0];
  GateId x = b.and_(a, d);
  b.bindState(std::vector<GateId>{d}, std::vector<GateId>{x});
  EXPECT_FALSE(nl.hasCombinationalCycle());
  nl.check();
}

TEST(Netlist, RebindRejectsNonDff) {
  Netlist nl;
  GateId a = nl.addInput("a");
  GateId n = nl.addGate(GateKind::kNot, {a});
  EXPECT_THROW(nl.rebindDff(n, a), std::logic_error);
}

TEST(Netlist, TopoOrderRespectsDependencies) {
  Netlist nl;
  Builder b(nl);
  GateId a = nl.addInput("a");
  GateId x = b.not_(a);
  GateId y = b.and_(a, x);
  nl.addOutput("o", y);
  auto order = nl.topoOrder();
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[a], pos[x]);
  EXPECT_LT(pos[x], pos[y]);
  EXPECT_EQ(order.size(), nl.size());
}

TEST(Netlist, CombDepthCountsLongestPath) {
  Netlist nl;
  Builder b(nl);
  GateId a = nl.addInput("a");
  GateId g = a;
  for (int i = 0; i < 5; ++i) g = b.not_(g);
  nl.addOutput("o", g);
  EXPECT_EQ(nl.combDepth(), 5u);
}

TEST(Netlist, CountsCensus) {
  Netlist nl;
  Builder b(nl);
  Bus in = b.inputBus("a", 3);
  GateId x = b.andTree(in);
  GateId q = nl.addDff(x);
  nl.addOutput("o", q);
  nl.constant(true);
  auto c = nl.counts();
  EXPECT_EQ(c.inputs, 3u);
  EXPECT_EQ(c.outputs, 1u);
  EXPECT_EQ(c.dffs, 1u);
  EXPECT_EQ(c.combinational, 2u);  // two AND gates in the tree
  EXPECT_EQ(c.constants, 1u);
  EXPECT_EQ(c.total(), nl.size());
}

TEST(Netlist, MergeRenamesPortsAndPreservesLogic) {
  Netlist inner;
  Builder bi(inner);
  GateId a = inner.addInput("a");
  inner.addOutput("o", bi.not_(a));

  Netlist outer;
  GateId offset = outer.merge(inner, "m_");
  EXPECT_EQ(offset, 0u);
  EXPECT_NE(outer.findInput("m_a"), kNoGate);
  EXPECT_NE(outer.findOutput("m_o"), kNoGate);

  GateId off2 = outer.merge(inner, "n_");
  EXPECT_EQ(off2, inner.size());
  outer.check();

  Evaluator ev(outer);
  ev.setInput("m_a", true);
  ev.setInput("n_a", false);
  ev.eval();
  EXPECT_FALSE(ev.output("m_o"));
  EXPECT_TRUE(ev.output("n_o"));
}

TEST(Evaluator, AllGateKindsTruthTables) {
  Netlist nl;
  Builder b(nl);
  GateId a = nl.addInput("a");
  GateId c = nl.addInput("b");
  nl.addOutput("and", b.and_(a, c));
  nl.addOutput("or", b.or_(a, c));
  nl.addOutput("xor", b.xor_(a, c));
  nl.addOutput("nand", b.nand_(a, c));
  nl.addOutput("nor", b.nor_(a, c));
  nl.addOutput("xnor", b.xnor_(a, c));
  nl.addOutput("not", b.not_(a));
  nl.addOutput("buf", b.buf(a));
  nl.addOutput("c0", b.zero());
  nl.addOutput("c1", b.one());
  Evaluator ev(nl);
  for (int av = 0; av < 2; ++av) {
    for (int bv = 0; bv < 2; ++bv) {
      ev.setInput("a", av != 0);
      ev.setInput("b", bv != 0);
      ev.eval();
      EXPECT_EQ(ev.output("and"), (av & bv) != 0);
      EXPECT_EQ(ev.output("or"), (av | bv) != 0);
      EXPECT_EQ(ev.output("xor"), (av ^ bv) != 0);
      EXPECT_EQ(ev.output("nand"), (av & bv) == 0);
      EXPECT_EQ(ev.output("nor"), (av | bv) == 0);
      EXPECT_EQ(ev.output("xnor"), (av ^ bv) == 0);
      EXPECT_EQ(ev.output("not"), av == 0);
      EXPECT_EQ(ev.output("buf"), av != 0);
      EXPECT_FALSE(ev.output("c0"));
      EXPECT_TRUE(ev.output("c1"));
    }
  }
}

TEST(Evaluator, MuxSelectsSecondWhenSelHigh) {
  Netlist nl;
  Builder b(nl);
  GateId sel = nl.addInput("sel");
  GateId a = nl.addInput("a");
  GateId c = nl.addInput("b");
  nl.addOutput("o", b.mux(sel, a, c));
  Evaluator ev(nl);
  ev.setInput("a", true);
  ev.setInput("b", false);
  ev.setInput("sel", false);
  ev.eval();
  EXPECT_TRUE(ev.output("o"));  // sel=0 -> a
  ev.setInput("sel", true);
  ev.eval();
  EXPECT_FALSE(ev.output("o"));  // sel=1 -> b
}

TEST(Evaluator, DffLatchesOnTickOnly) {
  Netlist nl;
  GateId d = nl.addInput("d");
  GateId q = nl.addDff(d);
  nl.addOutput("q", q);
  Evaluator ev(nl);
  ev.setInput("d", true);
  ev.eval();
  EXPECT_FALSE(ev.output("q"));  // not latched yet
  ev.tick();
  ev.eval();
  EXPECT_TRUE(ev.output("q"));
  ev.setInput("d", false);
  ev.eval();
  EXPECT_TRUE(ev.output("q"));  // still the latched 1
  ev.tick();
  ev.eval();
  EXPECT_FALSE(ev.output("q"));
}

TEST(Evaluator, DffInitAndReset) {
  Netlist nl;
  GateId d = nl.addInput("d");
  GateId q = nl.addDff(d, /*init=*/true);
  nl.addOutput("q", q);
  Evaluator ev(nl);
  ev.setInput("d", false);
  ev.eval();
  EXPECT_TRUE(ev.output("q"));
  ev.tick();
  ev.eval();
  EXPECT_FALSE(ev.output("q"));
  ev.reset();
  ev.eval();
  EXPECT_TRUE(ev.output("q"));
}

TEST(Evaluator, StateSaveRestoreRoundTrip) {
  Netlist nl;
  Builder b(nl);
  GateId d = nl.addInput("d");
  Bus q = b.stateBus(4);
  Bus next(4);
  next[0] = b.buf(d);
  for (int i = 1; i < 4; ++i) next[static_cast<size_t>(i)] = q[static_cast<size_t>(i - 1)];
  b.bindState(q, next);
  b.outputBus("q", q);
  Evaluator ev(nl);
  for (bool bit : {true, false, true, true}) {
    ev.setInput("d", bit);
    ev.eval();
    ev.tick();
  }
  ev.eval();
  auto saved = ev.state();
  auto valuesBefore = ev.readBus(findOutputBus(nl, "q", 4));

  // Run further, then restore: outputs must match the snapshot.
  ev.setInput("d", false);
  for (int i = 0; i < 3; ++i) {
    ev.eval();
    ev.tick();
  }
  ev.setState(saved);
  ev.eval();
  EXPECT_EQ(ev.readBus(findOutputBus(nl, "q", 4)), valuesBefore);
}

TEST(Evaluator, BusHelpers) {
  Netlist nl;
  Builder b(nl);
  Bus in = b.inputBus("x", 8);
  b.outputBus("y", in);
  Evaluator ev(nl);
  ev.writeBus(in, 0xA5);
  ev.eval();
  EXPECT_EQ(ev.readBus(findOutputBus(nl, "y", 8)), 0xA5u);
}

TEST(Evaluator, InputVectorSizeMismatchThrows) {
  Netlist nl;
  nl.addInput("a");
  Evaluator ev(nl);
  std::vector<bool> wrong(3, false);
  EXPECT_THROW(ev.setInputs(wrong), std::invalid_argument);
}

TEST(Evaluator, UnknownPortNamesThrow) {
  Netlist nl;
  GateId a = nl.addInput("a");
  nl.addOutput("o", a);
  Evaluator ev(nl);
  EXPECT_THROW(ev.setInput("zz", true), std::out_of_range);
  ev.eval();
  EXPECT_THROW((void)ev.output("zz"), std::out_of_range);
}

TEST(Builder, ReductionTreesMatchSemantics) {
  Netlist nl;
  Builder b(nl);
  Bus in = b.inputBus("x", 7);
  nl.addOutput("and", b.andTree(in));
  nl.addOutput("or", b.orTree(in));
  nl.addOutput("xor", b.xorTree(in));
  Evaluator ev(nl);
  for (std::uint64_t v = 0; v < 128; ++v) {
    ev.writeBus(in, v);
    ev.eval();
    EXPECT_EQ(ev.output("and"), v == 127);
    EXPECT_EQ(ev.output("or"), v != 0);
    EXPECT_EQ(ev.output("xor"), (__builtin_popcountll(v) & 1) != 0);
  }
}

TEST(Builder, TreeDepthIsLogarithmic) {
  Netlist nl;
  Builder b(nl);
  Bus in = b.inputBus("x", 64);
  nl.addOutput("o", b.andTree(in));
  EXPECT_EQ(nl.combDepth(), 6u);  // ceil(log2 64)
}

TEST(Builder, EmptyTreeThrows) {
  Netlist nl;
  Builder b(nl);
  std::vector<GateId> none;
  EXPECT_THROW(b.andTree(none), std::invalid_argument);
}

TEST(Builder, WidthMismatchThrows) {
  Netlist nl;
  Builder b(nl);
  Bus a = b.inputBus("a", 4);
  Bus c = b.inputBus("b", 5);
  EXPECT_THROW(b.xorBus(a, c), std::invalid_argument);
  EXPECT_THROW(b.rippleAdd(a, c), std::invalid_argument);
}

TEST(Builder, FindBusThrowsOnMissingBit) {
  Netlist nl;
  Builder b(nl);
  Bus a = b.inputBus("a", 2);
  b.outputBus("y", a);
  EXPECT_THROW(findInputBus(nl, "a", 3), std::out_of_range);
  EXPECT_NO_THROW(findInputBus(nl, "a", 2));
  EXPECT_THROW(findOutputBus(nl, "zz", 1), std::out_of_range);
}

TEST(Builder, ShiftConstBehaviour) {
  Netlist nl;
  Builder b(nl);
  Bus a = b.inputBus("a", 8);
  b.outputBus("l", b.shiftLeftConst(a, 3));
  b.outputBus("r", b.shiftRightConst(a, 2));
  Evaluator ev(nl);
  ev.writeBus(a, 0b10110101);
  ev.eval();
  EXPECT_EQ(ev.readBus(findOutputBus(nl, "l", 8)), (0b10110101u << 3) & 0xFF);
  EXPECT_EQ(ev.readBus(findOutputBus(nl, "r", 8)), 0b10110101u >> 2);
}

}  // namespace
}  // namespace vfpga
