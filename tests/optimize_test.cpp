// Netlist optimizer: simplification identities, CSE, dead-code removal,
// and — above all — strict functional equivalence on every circuit shape.
#include <gtest/gtest.h>

#include "netlist/builder.hpp"
#include "netlist/evaluator.hpp"
#include "netlist/library/arith.hpp"
#include "netlist/library/coding.hpp"
#include "netlist/library/control.hpp"
#include "netlist/library/datapath.hpp"
#include "netlist/library/dsp.hpp"
#include "netlist/optimize.hpp"
#include "sim/rng.hpp"
#include "workloads/random_netlist.hpp"

namespace vfpga {
namespace {

void expectEquivalent(const Netlist& a, const Netlist& b, std::uint64_t seed,
                      int cycles) {
  ASSERT_EQ(a.inputs().size(), b.inputs().size());
  ASSERT_EQ(a.outputs().size(), b.outputs().size());
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    ASSERT_EQ(a.gate(a.inputs()[i]).name, b.gate(b.inputs()[i]).name);
  }
  for (std::size_t o = 0; o < a.outputs().size(); ++o) {
    ASSERT_EQ(a.gate(a.outputs()[o]).name, b.gate(b.outputs()[o]).name);
  }
  Evaluator ea(a), eb(b);
  Rng rng(seed);
  for (int c = 0; c < cycles; ++c) {
    std::vector<bool> in(a.inputs().size());
    for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.bernoulli(0.5);
    ea.setInputs(in);
    eb.setInputs(in);
    ea.eval();
    eb.eval();
    for (std::size_t o = 0; o < a.outputs().size(); ++o) {
      ASSERT_EQ(eb.value(b.outputs()[o]), ea.value(a.outputs()[o]))
          << "output " << a.gate(a.outputs()[o]).name << " cycle " << c;
    }
    ea.tick();
    eb.tick();
  }
}

TEST(Optimize, FoldsConstantIdentities) {
  Netlist nl;
  Builder b(nl);
  GateId x = nl.addInput("x");
  nl.addOutput("and0", b.and_(x, b.zero()));   // -> 0
  nl.addOutput("and1", b.and_(x, b.one()));    // -> x
  nl.addOutput("or1", b.or_(x, b.one()));      // -> 1
  nl.addOutput("or0", b.or_(x, b.zero()));     // -> x
  nl.addOutput("xorx", b.xor_(x, x));          // -> 0
  nl.addOutput("xnorx", b.xnor_(x, x));        // -> 1
  nl.addOutput("nand0", b.nand_(x, b.zero())); // -> 1
  nl.addOutput("nor1", b.nor_(x, b.one()));    // -> 0
  OptimizeStats stats;
  Netlist opt = optimize(nl, &stats);
  expectEquivalent(nl, opt, 3, 8);
  EXPECT_EQ(opt.counts().combinational, 0u);  // everything folded
  EXPECT_GT(stats.constantsFolded, 0u);
}

TEST(Optimize, MuxSimplifications) {
  Netlist nl;
  Builder b(nl);
  GateId s = nl.addInput("s");
  GateId p = nl.addInput("p");
  GateId q = nl.addInput("q");
  nl.addOutput("sel0", b.mux(b.zero(), p, q));  // -> p
  nl.addOutput("sel1", b.mux(b.one(), p, q));   // -> q
  nl.addOutput("same", b.mux(s, p, p));         // -> p
  Netlist opt = optimize(nl);
  expectEquivalent(nl, opt, 4, 8);
  EXPECT_EQ(opt.counts().combinational, 0u);
}

TEST(Optimize, SweepsBuffersAndDeduplicates) {
  Netlist nl;
  Builder b(nl);
  GateId x = nl.addInput("x");
  GateId y = nl.addInput("y");
  GateId a1 = b.and_(x, y);
  GateId a2 = b.and_(y, x);  // commutative duplicate
  GateId buf = b.buf(a1);
  nl.addOutput("o1", b.xor_(buf, a2));  // xor(a, a) -> 0
  OptimizeStats stats;
  Netlist opt = optimize(nl, &stats);
  expectEquivalent(nl, opt, 5, 8);
  EXPECT_GE(stats.deduplicated + stats.aliased, 2u);
  EXPECT_EQ(opt.counts().combinational, 0u);  // collapses to constant 0
}

TEST(Optimize, RemovesDeadLogicKeepsPorts) {
  Netlist nl;
  Builder b(nl);
  Bus in = b.inputBus("x", 4);
  // A big dead cone: never reaches any output.
  GateId dead = b.andTree(in);
  dead = b.xor_(dead, in[0]);
  (void)dead;
  nl.addOutput("o", in[1]);
  OptimizeStats stats;
  Netlist opt = optimize(nl, &stats);
  EXPECT_GT(stats.deadRemoved, 0u);
  EXPECT_EQ(opt.inputs().size(), 4u);  // unused input ports stay (contract)
  expectEquivalent(nl, opt, 6, 8);
}

TEST(Optimize, PreservesDffInitAndFeedback) {
  Netlist nl;
  Builder b(nl);
  Bus q = b.stateBus(1, /*init=*/1);
  b.bindState(q, std::vector<GateId>{b.not_(q[0])});  // toggle FF
  nl.addOutput("q", q[0]);
  Netlist opt = optimize(nl);
  expectEquivalent(nl, opt, 7, 16);
  ASSERT_EQ(opt.dffs().size(), 1u);
  EXPECT_TRUE(opt.gate(opt.dffs()[0]).dffInit);
}

TEST(Optimize, DropsUnobservableRegisters) {
  Netlist nl;
  Builder b(nl);
  GateId d = nl.addInput("d");
  b.dff(d);  // never read
  nl.addOutput("o", d);
  Netlist opt = optimize(nl);
  EXPECT_EQ(opt.dffs().size(), 0u);
  expectEquivalent(nl, opt, 8, 8);
}

TEST(Optimize, ShrinksGateCountOnRealCircuits) {
  // Ripple adders built with explicit zero carry-in contain foldable
  // gates in the first stage.
  Netlist nl = lib::makeSubtractor(8);
  OptimizeStats stats;
  Netlist opt = optimize(nl, &stats);
  EXPECT_LT(stats.gatesOut, stats.gatesIn);
  expectEquivalent(nl, opt, 9, 64);
}

TEST(Optimize, IdempotentOnSecondPass) {
  Netlist nl = lib::makePriorityEncoder(8);
  OptimizeStats first, second;
  Netlist once = optimize(nl, &first);
  Netlist twice = optimize(once, &second);
  EXPECT_EQ(once.size(), twice.size());
  EXPECT_EQ(second.constantsFolded + second.aliased + second.deduplicated +
                second.deadRemoved,
            0u);
}

TEST(Optimize, EquivalentOnWholeLibrary) {
  std::vector<Netlist> all;
  all.push_back(lib::makeRippleAdder(6));
  all.push_back(lib::makeComparator(6));
  all.push_back(lib::makeArrayMultiplier(4));
  all.push_back(lib::makeMac(3));
  all.push_back(lib::makeSerialCrc(8, 0x07));
  all.push_back(lib::makeParallelCrc(16, 0x1021, 4));
  all.push_back(lib::makeLfsr(8, 0b10111000));
  all.push_back(lib::makeCounter(6));
  all.push_back(lib::makePiController(6, 1, 2));
  all.push_back(lib::makeMisr(8, 0x1D));
  all.push_back(lib::makeBarrelShifter(8));
  all.push_back(lib::makePopcount(8));
  all.push_back(lib::makePriorityEncoder(8));
  all.push_back(lib::makeRunLengthDetector(4, 4));
  all.push_back(lib::makeSortingNetwork4(4));
  all.push_back(lib::makeFirFilter(6, {0, 2}));
  all.push_back(lib::makeMajorityVoter(5));
  all.push_back(lib::makeSaturatingAdder(5));
  all.push_back(lib::makeGrayCounter(5));
  all.push_back(lib::makeDebouncer(3));
  all.push_back(lib::makeSerializer(5));
  std::uint64_t seed = 100;
  for (const Netlist& nl : all) {
    Netlist opt = optimize(nl);
    expectEquivalent(nl, opt, seed++, 48);
  }
}

class OptimizeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptimizeFuzz, EquivalentOnRandomDags) {
  Rng rng(GetParam() * 7919);
  workloads::RandomNetlistParams p;
  p.gates = 30 + rng.below(80);
  p.flops = rng.below(6);
  p.feedbackRegs = rng.below(3);
  p.constFraction = 0.15;  // plenty of folding opportunities
  Netlist nl = workloads::randomNetlist(p, rng);
  OptimizeStats stats;
  Netlist opt = optimize(nl, &stats);
  EXPECT_LE(stats.gatesOut, stats.gatesIn);
  expectEquivalent(nl, opt, GetParam(), 32);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeFuzz,
                         ::testing::Range<std::uint64_t>(1, 31));

}  // namespace
}  // namespace vfpga
