// Design-rule checker: every verifier must (a) stay silent on a genuine
// compiled flow and (b) flag a deliberately seeded defect with the exact
// rule ID the registry documents. Defects are injected into *value-level*
// snapshots (corrupted copies of real compiler output, hand-built strip
// tables / page tables / task control blocks), never by breaking the
// encapsulated managers — the same verifier code backs their
// VFPGA_CHECK_INVARIANTS hooks.
#include <gtest/gtest.h>

#include <algorithm>
#include <string_view>

#include "analysis/diagnostics.hpp"
#include "analysis/flow_lint.hpp"
#include "analysis/kernel_check.hpp"
#include "analysis/netlist_lint.hpp"
#include "core/page_manager.hpp"
#include "core/partition_manager.hpp"
#include "core/strip_allocator.hpp"
#include "fabric/device_family.hpp"
#include "netlist/library/control.hpp"
#include "netlist/optimize.hpp"
#include "workloads/compile_suite.hpp"

namespace vfpga {
namespace {

using analysis::Report;

bool hasRule(const Report& rep, std::string_view id) {
  const auto& ds = rep.diagnostics();
  return std::any_of(ds.begin(), ds.end(),
                     [&](const auto& d) { return d.rule == id; });
}

// ------------------------------------------------------------ rule registry

TEST(Diagnostics, RegistryHasStableRuleIds) {
  const auto rules = analysis::allRules();
  EXPECT_GE(rules.size(), 41u);
  for (const char* id : {"NL001", "MP003", "PL001", "RT002", "BS002", "PT001",
                         "AL001", "PG004", "OV002", "PM001", "TS003", "SG002"}) {
    EXPECT_NE(analysis::findRule(id), nullptr) << id;
  }
  EXPECT_EQ(analysis::findRule("ZZ999"), nullptr);
}

TEST(Diagnostics, UnregisteredRuleIdBecomesError) {
  Report rep;
  rep.add("ZZ999", "mystery");
  EXPECT_EQ(rep.errorCount(), 1u);
  EXPECT_FALSE(rep.ok());
}

TEST(Diagnostics, ThrowIfErrorsRaisesInvariantViolation) {
  Report rep;
  rep.add("AL002", "seeded");
  EXPECT_THROW(analysis::throwIfErrors(rep, "test"),
               analysis::InvariantViolation);
  Report warnOnly;
  warnOnly.add("NL006", "unused input");  // warning severity: must not throw
  EXPECT_NO_THROW(analysis::throwIfErrors(warnOnly, "test"));
}

TEST(Diagnostics, RenderersIncludeRuleAndCounts) {
  Report rep;
  rep.add("NL002", "bad \"arity\"");
  EXPECT_NE(rep.renderText().find("NL002"), std::string::npos);
  const std::string json = rep.renderJson();
  EXPECT_NE(json.find("\"rule\":\"NL002\""), std::string::npos);
  EXPECT_NE(json.find("\\\"arity\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
}

// ------------------------------------------------------------- netlist lint

TEST(NetlistLint, CleanCircuitHasNoDiagnostics) {
  Report rep;
  analysis::lintNetlist(optimize(lib::makeCounter(6)), rep);
  EXPECT_TRUE(rep.clean()) << rep.renderText();
}

TEST(NetlistLint, UnusedInputWarnsNL006) {
  Netlist nl("t");
  nl.addInput("used");
  nl.addInput("unused");
  nl.addOutput("o", nl.addGate(GateKind::kNot, {0}));
  Report rep;
  analysis::lintNetlist(nl, rep);
  EXPECT_TRUE(hasRule(rep, "NL006")) << rep.renderText();
}

TEST(NetlistLint, DeadGateWarnsNL007) {
  Netlist nl("t");
  const GateId a = nl.addInput("a");
  nl.addGate(GateKind::kNot, {a}, "orphan");  // never reaches an output
  nl.addOutput("o", nl.addGate(GateKind::kBuf, {a}));
  Report rep;
  analysis::lintNetlist(nl, rep);
  EXPECT_TRUE(hasRule(rep, "NL007")) << rep.renderText();
}

TEST(NetlistLint, StaticOutputWarnsNL008) {
  Netlist nl("t");
  nl.addInput("a");
  nl.addOutput("o", nl.constant(true));
  Report rep;
  analysis::lintNetlist(nl, rep);
  EXPECT_TRUE(hasRule(rep, "NL008")) << rep.renderText();
}

TEST(NetlistLint, StaticDffConeWarnsNL009) {
  Netlist nl("t");
  nl.addInput("a");
  const GateId d = nl.addDff(nl.constant(false), false, "frozen");
  nl.addOutput("o", d);
  Report rep;
  analysis::lintNetlist(nl, rep);
  EXPECT_TRUE(hasRule(rep, "NL009")) << rep.renderText();
}

// ------------------------------------------------------- mapped-stage lint

TEST(FlowLint, MappedCombCycleFlagsMP003WithPath) {
  MappedNetlist m;
  m.k = 4;
  m.inputs.push_back({"a", 0});
  // Cells 0 and 1 (nets 1 and 2) read each other; neither is registered.
  m.cells.push_back({0x6, {2, 0}, false, false, "u"});
  m.cells.push_back({0x6, {1, 0}, false, false, "v"});
  m.outputs.push_back({"o", m.cellNet(0)});
  Report rep;
  analysis::lintMapped(m, rep);
  ASSERT_TRUE(hasRule(rep, "MP003")) << rep.renderText();
  EXPECT_FALSE(rep.diagnostics()[0].notes.empty());  // cycle path reported
}

TEST(FlowLint, RegisteredCellBreaksTheLoop) {
  MappedNetlist m;
  m.k = 4;
  m.inputs.push_back({"a", 0});
  m.cells.push_back({0x6, {2, 0}, false, false, "u"});
  m.cells.push_back({0x6, {1, 0}, true, false, "v"});  // FF breaks the cycle
  m.outputs.push_back({"o", m.cellNet(0)});
  Report rep;
  analysis::lintMapped(m, rep);
  EXPECT_TRUE(rep.clean()) << rep.renderText();
}

TEST(FlowLint, LutOverCapacityFlagsMP001) {
  MappedNetlist m;
  m.k = 2;
  m.inputs.push_back({"a", 0});
  m.cells.push_back({0xff, {0, 0, 0}, false, false, "fat"});
  m.outputs.push_back({"o", m.cellNet(0)});
  Report rep;
  analysis::lintMapped(m, rep);
  EXPECT_TRUE(hasRule(rep, "MP001")) << rep.renderText();
}

TEST(FlowLint, DanglingNetFlagsMP002AndMP004) {
  MappedNetlist m;
  m.k = 4;
  m.inputs.push_back({"a", 0});
  m.cells.push_back({0x1, {99}, false, false, "bad"});
  m.outputs.push_back({"o", kNoNet});
  Report rep;
  analysis::lintMapped(m, rep);
  EXPECT_TRUE(hasRule(rep, "MP002")) << rep.renderText();
  EXPECT_TRUE(hasRule(rep, "MP004")) << rep.renderText();
}

// -------------------------------------------- compiled-flow seeded defects

/// Compiles one real circuit on the medium partial-reconfiguration device;
/// each test corrupts its own copy.
class CompiledDefects : public ::testing::Test {
 protected:
  CompiledDefects()
      : profile_(mediumPartialProfile()), dev_(profile_.makeDevice()),
        compiler_(dev_) {
    circuit_ = workloads::compileMinimal(compiler_, optimize(lib::makeCounter(6)));
  }

  Report lintIt(const CompiledCircuit& c) const {
    Report rep;
    analysis::lintCompiled(c, dev_.rrg(), dev_.configMap(), rep);
    return rep;
  }

  DeviceProfile profile_;
  Device dev_;
  Compiler compiler_;
  CompiledCircuit circuit_;
};

TEST_F(CompiledDefects, GenuineFlowIsClean) {
  const Report rep = lintIt(circuit_);
  EXPECT_TRUE(rep.clean()) << rep.renderText();
}

TEST_F(CompiledDefects, PlacementOverlapFlagsPL001) {
  CompiledCircuit c = circuit_;
  ASSERT_GE(c.placement.sites.size(), 2u);
  c.placement.sites[1] = c.placement.sites[0];
  EXPECT_TRUE(hasRule(lintIt(c), "PL001"));
}

TEST_F(CompiledDefects, PlacementEscapeFlagsPL002) {
  CompiledCircuit c = circuit_;
  ASSERT_FALSE(c.placement.sites.empty());
  c.placement.sites[0].x =
      static_cast<std::uint16_t>(c.placement.region.x1() + 1);
  EXPECT_TRUE(hasRule(lintIt(c), "PL002"));
}

TEST_F(CompiledDefects, SiteCountMismatchFlagsPL003) {
  CompiledCircuit c = circuit_;
  c.placement.sites.pop_back();
  EXPECT_TRUE(hasRule(lintIt(c), "PL003"));
}

TEST_F(CompiledDefects, SharedRoutingNodeFlagsRT001) {
  CompiledCircuit c = circuit_;
  ASSERT_GE(c.routes.nets.size(), 2u);
  ASSERT_FALSE(c.routes.nets[0].nodes.empty());
  c.routes.nets[1].nodes.push_back(c.routes.nets[0].nodes[0]);
  EXPECT_TRUE(hasRule(lintIt(c), "RT001"));
}

TEST_F(CompiledDefects, RouteOutsideStripFlagsRT002) {
  CompiledCircuit c = circuit_;
  ASSERT_FALSE(c.routes.nets.empty());
  // Find a routing node owned by a column beyond the strip: the violation a
  // partitioned OS must never allow (cross-partition wire use).
  RRNodeId intruder = kNoRRNode;
  const RoutingGraph& rrg = dev_.rrg();
  for (RRNodeId n = 0; n < rrg.nodeCount(); ++n) {
    if (rrg.ownerColumn(n) > c.region.x1()) {
      intruder = n;
      break;
    }
  }
  ASSERT_NE(intruder, kNoRRNode) << "device has no column beyond the strip";
  c.routes.nets[0].nodes.push_back(intruder);
  EXPECT_TRUE(hasRule(lintIt(c), "RT002"));
}

TEST_F(CompiledDefects, PhantomSwitchFlagsRT003) {
  CompiledCircuit c = circuit_;
  ASSERT_FALSE(c.routes.nets.empty());
  c.routes.nets[0].edges.push_back(
      static_cast<RREdgeId>(dev_.rrg().edgeCount()));
  EXPECT_TRUE(hasRule(lintIt(c), "RT003"));
}

TEST_F(CompiledDefects, FrameOutOfDeviceFlagsBS001) {
  CompiledCircuit c = circuit_;
  c.frames.push_back(dev_.configMap().frameCount());
  EXPECT_TRUE(hasRule(lintIt(c), "BS001"));
}

TEST_F(CompiledDefects, BitOutsideRegionFlagsBS002) {
  CompiledCircuit c = circuit_;
  const ConfigMap& cmap = dev_.configMap();
  const auto [first, last] = cmap.framesOfColumns(c.region.x0, c.region.x1());
  // A set bit in a frame the circuit's columns do not own.
  const std::uint32_t foreignFrame = last < cmap.frameCount() ? last : 0;
  ASSERT_TRUE(foreignFrame < first || foreignFrame >= last);
  c.image.set(foreignFrame * cmap.frameBits(), true);
  EXPECT_TRUE(hasRule(lintIt(c), "BS002"));
}

TEST_F(CompiledDefects, TruncatedImageFlagsBS003) {
  CompiledCircuit c = circuit_;
  c.image = ConfigImage(16);
  EXPECT_TRUE(hasRule(lintIt(c), "BS003"));
}

TEST_F(CompiledDefects, PadSlotOutOfRangeFlagsPT001) {
  CompiledCircuit c = circuit_;
  ASSERT_FALSE(c.ports.empty());
  c.ports[0].padSlot =
      static_cast<std::uint32_t>(dev_.geometry().padSlotCount());
  EXPECT_TRUE(hasRule(lintIt(c), "PT001"));
}

// ------------------------------------------------- OS bookkeeping defects

TEST(KernelCheck, StripGapFlagsAL001) {
  const std::vector<Strip> strips{{0, 0, 4, true}, {1, 6, 6, true}};
  Report rep;
  analysis::verifyStrips(strips, 12, false, rep);
  EXPECT_TRUE(hasRule(rep, "AL001")) << rep.renderText();
}

TEST(KernelCheck, StripDefectsFlagAL002ToAL004) {
  // Zero width, duplicate id, and two adjacent idle strips left unmerged.
  const std::vector<Strip> strips{
      {0, 0, 4, false}, {0, 4, 0, false}, {2, 4, 8, false}};
  Report rep;
  analysis::verifyStrips(strips, 12, false, rep);
  EXPECT_TRUE(hasRule(rep, "AL002"));
  EXPECT_TRUE(hasRule(rep, "AL003"));
  EXPECT_TRUE(hasRule(rep, "AL004"));
}

TEST(KernelCheck, FixedModeToleratesAdjacentIdleStrips) {
  const std::vector<Strip> strips{{0, 0, 6, false}, {1, 6, 6, false}};
  Report rep;
  analysis::verifyStrips(strips, 12, true, rep);
  EXPECT_TRUE(rep.clean()) << rep.renderText();
}

TEST(KernelCheck, CorruptedPageTableFlagsPGRules) {
  const std::vector<std::uint32_t> functionPages{3, 2};
  std::vector<analysis::PageTableEntry> entries{
      {0, 0, 5, 9},   // fine
      {0, 0, 5, 9},   // duplicate residency          -> PG004
      {7, 0, 5, 9},   // undeclared function          -> PG002
      {1, 5, 5, 9},   // page out of range            -> PG003
      {1, 0, 9, 5},   // loaded after last use        -> PG005
  };
  Report rep;
  analysis::verifyPageTable(entries, functionPages, 4, 10, rep);
  EXPECT_TRUE(hasRule(rep, "PG001"));  // 5 resident > capacity 4
  EXPECT_TRUE(hasRule(rep, "PG002"));
  EXPECT_TRUE(hasRule(rep, "PG003"));
  EXPECT_TRUE(hasRule(rep, "PG004"));
  EXPECT_TRUE(hasRule(rep, "PG005"));
}

TEST(KernelCheck, OverlayViolationsFlagOVRules) {
  CompiledCircuit resident;
  resident.name = "res";
  resident.region = Region{2, 0, 4, 8};  // must start at column 0 -> OV001
  CompiledCircuit overlay;
  overlay.name = "ovl";
  overlay.region = Region{0, 0, 4, 8};  // inside the resident strip -> OV002
  const std::vector<CompiledCircuit> overlays{overlay};
  Report rep;
  analysis::verifyOverlayLayout(&resident, overlays, 3u, 6, 12, rep);
  EXPECT_TRUE(hasRule(rep, "OV001"));
  EXPECT_TRUE(hasRule(rep, "OV002"));
  EXPECT_TRUE(hasRule(rep, "OV003"));  // active id 3 of 1 overlay
}

TEST(KernelCheck, OccupancyViolationsFlagPMRules) {
  const std::vector<Strip> strips{{0, 0, 6, true}, {1, 6, 6, true}};
  const std::vector<analysis::OccupantInfo> occupants{
      {9, 0, 4, "ghost"},  // unknown partition        -> PM002
      {1, 4, 6, "wide"},   // region escapes its strip -> PM002
  };
  Report rep;
  analysis::verifyOccupancy(strips, occupants, rep);
  EXPECT_TRUE(hasRule(rep, "PM001"));  // busy strip 0 has no occupant
  EXPECT_TRUE(hasRule(rep, "PM002"));
}

TEST(KernelCheck, SegmentResidencyViolationsFlagSGRules) {
  const std::vector<Strip> strips{{0, 0, 6, true}, {1, 6, 6, false}};
  const std::vector<analysis::SegmentResidencyInfo> resident{
      {0, 0}, {1, 0},  // two segments on one strip -> SG002
      {2, 1},          // idle strip                -> SG001
  };
  Report rep;
  analysis::verifySegmentResidency(strips, resident, rep);
  EXPECT_TRUE(hasRule(rep, "SG001"));
  EXPECT_TRUE(hasRule(rep, "SG002"));
}

TEST(KernelCheck, TaskStateViolationsFlagTSRules) {
  TaskSpec spec;
  spec.name = "t";
  spec.ops.push_back(CpuBurst{10});
  std::vector<TaskRuntime> tasks(4);
  for (auto& t : tasks) t.spec = spec;
  tasks[0].opIndex = 2;  // beyond the 1-op program -> TS001
  tasks[1].state = TaskState::kDone;  // done at op 0 -> TS002
  tasks[2].state = TaskState::kReady;
  tasks[2].partition = 1;  // holds a partition while not running -> TS003
  tasks[3].state = TaskState::kDone;
  tasks[3].opIndex = 1;
  tasks[3].cyclesRemaining = 7;  // residual work after completion -> TS004
  Report rep;
  analysis::verifyTasks(tasks, rep);
  EXPECT_TRUE(hasRule(rep, "TS001"));
  EXPECT_TRUE(hasRule(rep, "TS002"));
  EXPECT_TRUE(hasRule(rep, "TS003"));
  EXPECT_TRUE(hasRule(rep, "TS004"));
}

TEST(KernelCheck, QueueStateMismatchFlagsTS005) {
  TaskSpec spec;
  spec.ops.push_back(CpuBurst{10});
  std::vector<TaskRuntime> tasks(1);
  tasks[0].spec = spec;
  tasks[0].state = TaskState::kRunningCpu;
  const std::vector<std::size_t> cpuReady{0, 5};  // wrong state + bad index
  Report rep;
  analysis::verifyTaskQueues(tasks, cpuReady, {}, rep);
  EXPECT_EQ(rep.errorCount(), 2u);
  EXPECT_TRUE(hasRule(rep, "TS005"));
}

// ----------------------------------------------------- live-manager hooks

/// Restores the invariant-check override on scope exit.
struct ChecksGuard {
  ChecksGuard() { analysis::setInvariantChecks(true); }
  ~ChecksGuard() { analysis::setInvariantChecks(false); }
};

TEST(InvariantHooks, AllocatorChurnPassesWithChecksOn) {
  ChecksGuard guard;
  StripAllocator a(16);
  auto p1 = a.allocate(5);
  auto p2 = a.allocate(3);
  ASSERT_TRUE(p1 && p2);
  a.release(*p1);
  a.allocate(2);
  a.release(*p2);
  a.compact();  // every mutation above re-verified AL001-AL004 internally
  EXPECT_NO_THROW(a.checkInvariants());
}

TEST(InvariantHooks, PageManagerAccessPassesWithChecksOn) {
  ChecksGuard guard;
  DeviceProfile profile = mediumPartialProfile();
  PageManagerOptions opt;
  opt.framesPerPage = 4;
  opt.residentCapacity = 2;
  PageManager pm(profile.port, 128, opt);
  const auto f = pm.addFunction(8);  // 2 pages
  const auto g = pm.addFunction(8);  // 2 pages
  pm.access(f);
  pm.access(g);
  pm.access(f);  // evicts under capacity pressure; hooks verify PG001-PG005
  EXPECT_NO_THROW(pm.checkInvariants());
}

}  // namespace
}  // namespace vfpga
