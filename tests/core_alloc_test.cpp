// Device-independent OS bookkeeping: strip allocator (variable and fixed
// partitions, splitting, merging, compaction), page manager, I/O mux.
#include <gtest/gtest.h>

#include "core/io_mux.hpp"
#include "core/page_manager.hpp"
#include "core/strip_allocator.hpp"
#include "sim/rng.hpp"

namespace vfpga {
namespace {

// -------------------------------------------------------- StripAllocator

TEST(StripAllocator, StartsWithOneWholePartition) {
  StripAllocator a(12);
  auto strips = a.strips();
  ASSERT_EQ(strips.size(), 1u);
  EXPECT_EQ(strips[0].x0, 0);
  EXPECT_EQ(strips[0].width, 12);
  EXPECT_FALSE(strips[0].busy);
  EXPECT_EQ(a.totalFree(), 12);
  EXPECT_EQ(a.largestFree(), 12);
}

TEST(StripAllocator, SplitsOnAllocate) {
  StripAllocator a(12);
  auto p = a.allocate(5);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(a.strip(*p).x0, 0);
  EXPECT_EQ(a.strip(*p).width, 5);
  EXPECT_TRUE(a.strip(*p).busy);
  EXPECT_EQ(a.totalFree(), 7);
  EXPECT_EQ(a.strips().size(), 2u);
}

TEST(StripAllocator, ExactFitDoesNotSplit) {
  StripAllocator a(8);
  auto p = a.allocate(8);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(a.strips().size(), 1u);
  EXPECT_EQ(a.totalFree(), 0);
  EXPECT_FALSE(a.allocate(1).has_value());
}

TEST(StripAllocator, ReleaseMergesIdleNeighbours) {
  StripAllocator a(12);
  auto p1 = a.allocate(4);
  auto p2 = a.allocate(4);
  auto p3 = a.allocate(4);
  ASSERT_TRUE(p1 && p2 && p3);
  a.release(*p1);
  a.release(*p3);
  EXPECT_EQ(a.strips().size(), 3u);  // free(4) busy(4) free(4)
  EXPECT_EQ(a.largestFree(), 4);
  a.release(*p2);
  EXPECT_EQ(a.strips().size(), 1u);  // all merged back
  EXPECT_EQ(a.largestFree(), 12);
}

TEST(StripAllocator, DoubleReleaseThrows) {
  StripAllocator a(8);
  auto p = a.allocate(3);
  a.release(*p);
  EXPECT_THROW(a.release(*p), std::logic_error);
}

TEST(StripAllocator, FirstFitVsBestFit) {
  StripAllocator a(16);
  auto p1 = a.allocate(4);   // [0,4)
  auto p2 = a.allocate(6);   // [4,10)
  auto p3 = a.allocate(6);   // [10,16)
  a.release(*p1);            // hole of 4 at the front
  a.release(*p3);            // hole of 6 at the back
  (void)p2;
  // First fit for width 3 takes the front hole.
  auto ff = a.allocate(3, FitPolicy::kFirstFit);
  ASSERT_TRUE(ff);
  EXPECT_EQ(a.strip(*ff).x0, 0);
  a.release(*ff);
  // Best fit for width 3 prefers the *front* hole too (4 < 6); for width 5
  // only the back hole works.
  auto bf = a.allocate(3, FitPolicy::kBestFit);
  ASSERT_TRUE(bf);
  EXPECT_EQ(a.strip(*bf).x0, 0);
  auto bf5 = a.allocate(5, FitPolicy::kBestFit);
  ASSERT_TRUE(bf5);
  EXPECT_EQ(a.strip(*bf5).x0, 10);
}

TEST(StripAllocator, FragmentationMetrics) {
  StripAllocator a(16);
  auto p1 = a.allocate(4);
  auto p2 = a.allocate(4);
  auto p3 = a.allocate(4);
  auto p4 = a.allocate(4);
  a.release(*p1);
  a.release(*p3);
  (void)p2;
  (void)p4;
  // Free: two holes of 4; largest 4, total 8.
  EXPECT_EQ(a.totalFree(), 8);
  EXPECT_EQ(a.largestFree(), 4);
  EXPECT_DOUBLE_EQ(a.externalFragmentation(), 0.5);
  EXPECT_TRUE(a.wouldFitAfterCompaction(6));
  EXPECT_FALSE(a.wouldFitAfterCompaction(4));  // already fits
  EXPECT_FALSE(a.wouldFitAfterCompaction(9));  // never fits
}

TEST(StripAllocator, CompactionPacksBusyLeft) {
  StripAllocator a(16);
  auto p1 = a.allocate(4);  // [0,4)
  auto p2 = a.allocate(4);  // [4,8)
  auto p3 = a.allocate(4);  // [8,12)
  a.release(*p1);
  a.release(*p3);
  (void)p2;
  auto moves = a.compact();
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].id, *p2);
  EXPECT_EQ(moves[0].fromX0, 4);
  EXPECT_EQ(moves[0].toX0, 0);
  EXPECT_EQ(a.largestFree(), 12);
  EXPECT_DOUBLE_EQ(a.externalFragmentation(), 0.0);
  // Ids stay valid after compaction.
  EXPECT_EQ(a.strip(*p2).x0, 0);
  a.release(*p2);
  EXPECT_EQ(a.largestFree(), 16);
}

TEST(StripAllocator, CompactionPreservesOrderOfBusyStrips) {
  StripAllocator a(20);
  std::vector<PartitionId> ids;
  for (int i = 0; i < 5; ++i) ids.push_back(*a.allocate(4));
  a.release(ids[0]);
  a.release(ids[2]);
  auto moves = a.compact();
  EXPECT_EQ(moves.size(), 3u);  // ids 1, 3, 4 move left
  EXPECT_EQ(a.strip(ids[1]).x0, 0);
  EXPECT_EQ(a.strip(ids[3]).x0, 4);
  EXPECT_EQ(a.strip(ids[4]).x0, 8);
}

TEST(StripAllocator, FixedModeNeverSplits) {
  StripAllocator a(12, {4, 4, 4});
  EXPECT_TRUE(a.isFixed());
  auto p = a.allocate(2);  // gets a whole 4-wide partition
  ASSERT_TRUE(p);
  EXPECT_EQ(a.strip(*p).width, 4);
  EXPECT_EQ(a.strips().size(), 3u);
  EXPECT_THROW(a.compact(), std::logic_error);
}

TEST(StripAllocator, FixedModeBestFitPicksSmallestSufficient) {
  StripAllocator a(12, {2, 6, 4});
  auto p = a.allocate(3, FitPolicy::kBestFit);
  ASSERT_TRUE(p);
  EXPECT_EQ(a.strip(*p).width, 4);
}

TEST(StripAllocator, FixedModeRemainderBecomesPartition) {
  StripAllocator a(10, {3, 3});
  EXPECT_EQ(a.strips().size(), 3u);
  EXPECT_EQ(a.strips()[2].width, 4);
}

TEST(StripAllocator, RejectsDegenerateInputs) {
  EXPECT_THROW(StripAllocator(0), std::invalid_argument);
  EXPECT_THROW(StripAllocator(8, {4, 8}), std::invalid_argument);
  EXPECT_THROW(StripAllocator(8, {0}), std::invalid_argument);
  StripAllocator a(8);
  EXPECT_THROW(a.allocate(0), std::invalid_argument);
  EXPECT_THROW(a.strip(999), std::out_of_range);
}

TEST(StripAllocator, FixedModeDoubleReleaseThrows) {
  StripAllocator a(12, {4, 4, 4});
  auto p = a.allocate(4);
  ASSERT_TRUE(p);
  a.release(*p);
  EXPECT_THROW(a.release(*p), std::logic_error);
  // The failed release must not have corrupted the partition table.
  EXPECT_EQ(a.strips().size(), 3u);
  EXPECT_EQ(a.totalFree(), 12);
}

TEST(StripAllocator, FixedModeZeroWidthAllocateThrows) {
  StripAllocator a(12, {4, 4, 4});
  EXPECT_THROW(a.allocate(0), std::invalid_argument);
  EXPECT_THROW(a.allocate(0, FitPolicy::kBestFit), std::invalid_argument);
  EXPECT_EQ(a.totalFree(), 12);  // nothing was handed out
}

TEST(StripAllocator, CompactAfterReleaseMovesOnlyDisplacedStrips) {
  StripAllocator a(16);
  auto p1 = a.allocate(4);  // [0,4)
  auto p2 = a.allocate(4);  // [4,8)
  auto p3 = a.allocate(4);  // [8,12)
  ASSERT_TRUE(p1 && p2 && p3);
  a.release(*p2);  // hole in the middle: busy(4) free(4) busy(4) free(4)
  const auto moves = a.compact();
  // p1 already sits at 0 — only p3 moves, into the hole at column 4.
  ASSERT_EQ(moves.size(), 1u);
  EXPECT_EQ(moves[0].id, *p3);
  EXPECT_EQ(moves[0].toX0, 4);
  EXPECT_EQ(a.strip(*p3).x0, 4);
  EXPECT_EQ(a.largestFree(), 8);  // trailing holes merged into one
  EXPECT_EQ(a.strips().size(), 3u);
}

TEST(StripAllocator, StripsViewIsStableReference) {
  StripAllocator a(8);
  const std::vector<Strip>* first = &a.strips();
  EXPECT_EQ(first, &a.strips());  // accessor returns a view, not a copy
}

TEST(StripAllocator, ChurnNeverLosesColumns) {
  // Property test: after any sequence of allocate/release, busy + free
  // widths cover exactly the device and strips tile [0, columns).
  StripAllocator a(24);
  Rng rng(99);
  std::vector<PartitionId> held;
  for (int step = 0; step < 2000; ++step) {
    if (!held.empty() && rng.bernoulli(0.45)) {
      std::size_t i = rng.below(held.size());
      a.release(held[i]);
      held.erase(held.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      auto p = a.allocate(
          static_cast<std::uint16_t>(1 + rng.below(6)),
          rng.bernoulli(0.5) ? FitPolicy::kFirstFit : FitPolicy::kBestFit);
      if (p) held.push_back(*p);
    }
    if (step % 97 == 0 && !a.isFixed()) a.compact();
    std::uint16_t covered = 0;
    std::uint16_t expectX = 0;
    for (const Strip& s : a.strips()) {
      ASSERT_EQ(s.x0, expectX);
      ASSERT_GT(s.width, 0);
      expectX = static_cast<std::uint16_t>(expectX + s.width);
      covered = static_cast<std::uint16_t>(covered + s.width);
    }
    ASSERT_EQ(covered, 24);
  }
}

// ------------------------------------------------------------ PageManager

ConfigPortSpec pagePortSpec() {
  ConfigPortSpec s;
  s.partialReconfig = true;
  s.bitPeriod = nanos(10);
  s.frameOverhead = nanos(100);
  return s;
}

TEST(PageManager, RequiresPartialPort) {
  ConfigPortSpec serial;
  serial.partialReconfig = false;
  EXPECT_THROW(PageManager(serial, 128), std::invalid_argument);
}

TEST(PageManager, ColdAccessFaultsEveryPage) {
  PageManager pm(pagePortSpec(), 128, PageManagerOptions{4, 16});
  ConfigId f = pm.addFunction(10);  // 10 frames -> 3 pages of 4 frames
  EXPECT_EQ(pm.pagesOf(f), 3u);
  auto r = pm.access(f);
  EXPECT_EQ(r.pageFaults, 3u);
  EXPECT_EQ(r.evictions, 0u);
  EXPECT_GT(r.stall, 0u);
  // Warm access: no faults, no stall.
  auto r2 = pm.access(f);
  EXPECT_EQ(r2.pageFaults, 0u);
  EXPECT_EQ(r2.stall, 0u);
}

TEST(PageManager, StallMatchesPortArithmetic) {
  auto spec = pagePortSpec();
  PageManager pm(spec, 128, PageManagerOptions{2, 8});
  ConfigId f = pm.addFunction(2);  // one page of 2 frames
  auto r = pm.access(f);
  EXPECT_EQ(r.stall, 2 * (spec.frameOverhead + 128 * spec.bitPeriod));
  EXPECT_EQ(pm.bitsMoved(), 2u * 128u);
}

TEST(PageManager, CapacityEvictionLruVsFifo) {
  // Two functions of 2 pages each; capacity 3 pages. Access pattern
  // A A B: with LRU, B evicts A's cold page; A's hot pages survive as far
  // as capacity allows.
  for (auto policy : {ReplacementPolicy::kLru, ReplacementPolicy::kFifo}) {
    PageManager pm(pagePortSpec(), 64, PageManagerOptions{1, 3, policy});
    ConfigId fa = pm.addFunction(2);
    ConfigId fb = pm.addFunction(2);
    pm.access(fa);
    pm.access(fa);
    auto r = pm.access(fb);
    EXPECT_EQ(r.pageFaults, 2u);
    EXPECT_EQ(r.evictions, 1u);  // capacity 3, 2 resident + 2 new
    EXPECT_EQ(pm.residentPages(), 3u);
  }
}

TEST(PageManager, LruBeatsFifoOnLoopWithReuse) {
  // Pattern: a hot page touched between every cold-page touch, with the
  // cold pages cycling under capacity pressure. LRU never evicts the hot
  // page (always most-recently used); FIFO evicts it as the oldest load.
  auto run = [&](ReplacementPolicy policy) {
    PageManager pm(pagePortSpec(), 64, PageManagerOptions{1, 3, policy});
    ConfigId hot = pm.addFunction(1);
    ConfigId cold = pm.addFunction(4);  // 4 pages > capacity
    pm.access(hot);
    std::uint64_t hotFaults = 0;
    for (int i = 0; i < 12; ++i) {
      pm.accessPage(cold, static_cast<std::uint32_t>(i % 4));
      auto r = pm.accessPage(hot, 0);
      hotFaults += r.pageFaults;
    }
    return hotFaults;
  };
  EXPECT_EQ(run(ReplacementPolicy::kLru), 0u);
  EXPECT_GT(run(ReplacementPolicy::kFifo), 0u);
}

TEST(PageManager, OversizedWorkingSetRejected) {
  PageManager pm(pagePortSpec(), 64, PageManagerOptions{1, 4});
  ConfigId f = pm.addFunction(5);
  EXPECT_THROW(pm.access(f), std::logic_error);
  // Single-page access of an oversized function is still fine.
  EXPECT_NO_THROW(pm.accessPage(f, 0));
  EXPECT_THROW(pm.accessPage(f, 7), std::out_of_range);
}

// ------------------------------------------------------------------ IoMux

TEST(IoMux, FramesAndTransferTime) {
  IoMuxSpec spec;
  spec.physicalPins = 8;
  spec.frameTime = nanos(100);
  spec.muxLatency = nanos(30);
  IoMux mux(spec);
  EXPECT_EQ(mux.framesFor(8), 1u);   // fits the package
  EXPECT_EQ(mux.framesFor(9), 2u);
  EXPECT_EQ(mux.framesFor(64), 8u);
  EXPECT_EQ(mux.transferTime(8), nanos(130));
  EXPECT_EQ(mux.transferTime(24), nanos(330));
}

TEST(IoMux, BandwidthDegradesWithVirtualization) {
  IoMuxSpec spec;
  spec.physicalPins = 16;
  IoMux mux(spec);
  const double native = mux.effectivePinBandwidth(16);
  const double doubled = mux.effectivePinBandwidth(32);
  const double x4 = mux.effectivePinBandwidth(64);
  EXPECT_GT(native, doubled);
  EXPECT_GT(doubled, x4);
  // Aggregate bandwidth saturates rather than growing linearly.
  EXPECT_LT(mux.aggregateBandwidth(64), 4.0 * mux.aggregateBandwidth(16));
}

TEST(IoMux, StatsAccumulate) {
  IoMux mux(IoMuxSpec{8, nanos(100), nanos(0), nanos(5)});
  mux.transfer(20);
  mux.transfer(4);
  mux.rebind(20);
  EXPECT_EQ(mux.transfers(), 2u);
  EXPECT_EQ(mux.framesMoved(), 4u);  // 3 + 1
  EXPECT_EQ(mux.signalsMoved(), 24u);
  EXPECT_EQ(mux.busyTime(), 4u * nanos(100) + 20u * nanos(5));
}

TEST(IoMux, RejectsZeroPins) {
  EXPECT_THROW(IoMux(IoMuxSpec{0}), std::invalid_argument);
}

}  // namespace
}  // namespace vfpga
