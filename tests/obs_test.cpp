// Observability substrate: span tracer, metrics registry, exporters
// (Chrome trace_event, Prometheus text exposition, CSV) and the flight
// recorder, including the analysis-hook glue in core/obs_bridge.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "analysis/diagnostics.hpp"
#include "core/obs_bridge.hpp"
#include "fabric/device_family.hpp"
#include "netlist/library/control.hpp"
#include "obs/exporters.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/heatmap.hpp"
#include "obs/json.hpp"
#include "obs/metrics_registry.hpp"
#include "obs/output_dir.hpp"
#include "obs/span_tracer.hpp"
#include "obs/stream.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"

namespace vfpga {
namespace {

/// Deterministic tracer clock: advances by a fixed step per read.
obs::SpanTracer steppedTracer(std::uint64_t step) {
  auto t = std::make_shared<std::uint64_t>(0);
  return obs::SpanTracer(
      obs::SpanTracer::Clock([t, step] { return *t += step; }));
}

TEST(SpanTracer, ScopedSpansNestAndClose) {
  obs::SpanTracer tracer = steppedTracer(10);
  {
    auto outer = tracer.scoped("outer", "test");
    EXPECT_EQ(tracer.openSpans(), 1u);
    {
      auto inner = tracer.scoped("inner", "test");
      inner.note("k", "v");
      EXPECT_EQ(tracer.openSpans(), 2u);
    }
    EXPECT_EQ(tracer.openSpans(), 1u);
  }
  ASSERT_EQ(tracer.spans().size(), 2u);
  // Spans record in completion order: inner closes first.
  const obs::SpanRecord& inner = tracer.spans()[0];
  const obs::SpanRecord& outer = tracer.spans()[1];
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.depth, 1u);
  ASSERT_EQ(inner.attributes.size(), 1u);
  EXPECT_EQ(inner.attributes[0].first, "k");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.depth, 0u);
  // The outer interval contains the inner one.
  EXPECT_LE(outer.startNs, inner.startNs);
  EXPECT_GE(outer.startNs + outer.durationNs,
            inner.startNs + inner.durationNs);
}

TEST(SpanTracer, CompleteAndInstantCarryExplicitTiming) {
  obs::SpanTracer tracer = steppedTracer(1);
  tracer.complete("exec", "os.fpga_exec", 100, 50, {{"config", "c"}}, 3);
  tracer.instantAt(120, "marker", "os.trace", {}, 3);
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].startNs, 100u);
  EXPECT_EQ(tracer.spans()[0].durationNs, 50u);
  EXPECT_EQ(tracer.spans()[0].track, 3u);
  ASSERT_EQ(tracer.instants().size(), 1u);
  EXPECT_EQ(tracer.instants()[0].atNs, 120u);
}

TEST(SpanTracer, DisabledTracerRecordsNothing) {
  obs::SpanTracer tracer = steppedTracer(1);
  tracer.setEnabled(false);
  {
    auto s = tracer.scoped("quiet", "test");
  }
  tracer.complete("quiet2", "test", 0, 1);
  tracer.instant("quiet3", "test");
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_TRUE(tracer.instants().empty());
}

TEST(MetricsRegistry, HandlesAreStableAndKeyedByLabels) {
  obs::MetricsRegistry reg;
  obs::Counter& a = reg.counter("vfpga_test_total", {{"k", "a"}});
  obs::Counter& b = reg.counter("vfpga_test_total", {{"k", "b"}});
  a.inc(2);
  b.inc(5);
  EXPECT_NE(&a, &b);
  // Re-lookup returns the same instance.
  EXPECT_EQ(&reg.counter("vfpga_test_total", {{"k", "a"}}), &a);
  EXPECT_EQ(reg.size(), 2u);
  EXPECT_EQ(reg.familyCount(), 1u);
  EXPECT_EQ(reg.counter("vfpga_test_total", {{"k", "a"}}).value(), 2u);
}

TEST(MetricsRegistry, KindConflictAndBadNameThrow) {
  obs::MetricsRegistry reg;
  reg.counter("vfpga_conflict");
  EXPECT_THROW(reg.gauge("vfpga_conflict"), std::logic_error);
  EXPECT_THROW(reg.counter("not a metric name!"), std::logic_error);
  EXPECT_THROW(reg.counter(""), std::logic_error);
}

TEST(MetricsRegistry, MergeAddsCountersAndFoldsStats) {
  obs::MetricsRegistry a;
  obs::MetricsRegistry b;
  a.counter("vfpga_m_total").inc(3);
  b.counter("vfpga_m_total").inc(4);
  a.stats("vfpga_m_ns").observe(10.0);
  b.stats("vfpga_m_ns").observe(30.0);
  a.merge(b);
  EXPECT_EQ(a.counter("vfpga_m_total").value(), 7u);
  const OnlineStats& s = a.stats("vfpga_m_ns").stats();
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.min(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 30.0);
}

TEST(ChromeTrace, GoldenEnvelopeAndNestedSpansValidate) {
  obs::SpanTracer wall = steppedTracer(100);
  {
    auto compile = wall.scoped("compile", "flow");
    {
      auto place = wall.scoped("place", "flow", {{"attempt", "1"}});
    }
  }
  Trace ring;
  ring.record(500, TraceKind::kConfigDownload, "cfg0");
  obs::SpanTracer sim(obs::SpanTracer::Clock([] { return std::uint64_t{0}; }));
  sim.complete("exec", "os.fpga_exec", 1000, 2000, {}, 1);
  sim.complete("download", "os.config", 1200, 300, {}, 1);  // nested

  obs::ChromeTraceInput input;
  input.wall = &wall;
  input.sim.push_back({"kernel", &sim, &ring});
  const std::string json = obs::renderChromeTrace(input);

  // Structural self-validation finds nothing wrong.
  EXPECT_TRUE(obs::validateChromeTrace(json).empty());

  // Golden-schema spot checks through the strict JSON parser.
  const obs::JsonValue doc = obs::JsonValue::parse(json);
  ASSERT_TRUE(doc.isObject());
  const obs::JsonValue& events = doc.at("traceEvents");
  ASSERT_TRUE(events.isArray());
  bool sawWallMeta = false, sawKernelMeta = false, sawExec = false,
       sawInstant = false;
  for (const obs::JsonValue& e : events.asArray()) {
    const std::string ph = e.at("ph").asString();
    if (ph == "M" && e.at("pid").asNumber() == 1) sawWallMeta = true;
    if (ph == "M" && e.at("pid").asNumber() == 2) sawKernelMeta = true;
    if (ph == "X" && e.at("name").asString() == "exec") {
      sawExec = true;
      EXPECT_DOUBLE_EQ(e.at("ts").asNumber(), 1.0);   // 1000 ns -> 1 us
      EXPECT_DOUBLE_EQ(e.at("dur").asNumber(), 2.0);  // 2000 ns -> 2 us
      EXPECT_EQ(e.at("pid").asNumber(), 2.0);
    }
    if (ph == "i") sawInstant = true;
  }
  EXPECT_TRUE(sawWallMeta);
  EXPECT_TRUE(sawKernelMeta);
  EXPECT_TRUE(sawExec);
  EXPECT_TRUE(sawInstant);
}

TEST(ChromeTrace, ValidatorRejectsPartialOverlap) {
  obs::SpanTracer sim(obs::SpanTracer::Clock([] { return std::uint64_t{0}; }));
  // [0,100) and [50,150) on one track: partial overlap cannot nest.
  sim.complete("a", "t", 0, 100, {}, 1);
  sim.complete("b", "t", 50, 100, {}, 1);
  obs::ChromeTraceInput input;
  input.sim.push_back({"p", &sim, nullptr});
  const auto problems = obs::validateChromeTrace(obs::renderChromeTrace(input));
  EXPECT_FALSE(problems.empty());
}

TEST(Prometheus, RoundTripPreservesEveryScalar) {
  obs::MetricsRegistry reg;
  reg.counter("vfpga_rt_total", {{"policy", "x"}}, "a counter").inc(42);
  reg.gauge("vfpga_rt_gauge", {}, "a gauge").set(2.5);
  obs::StatsMetric& st = reg.stats("vfpga_rt_ns", {}, "a summary");
  st.observe(1.0);
  st.observe(3.0);
  obs::HistogramMetric& h =
      reg.histogram("vfpga_rt_hist", 0.0, 10.0, 5, {}, "a histogram");
  h.observe(1.0);
  h.observe(9.0);

  const std::string text = obs::renderPrometheus(reg);
  const std::vector<obs::PromSample> samples = obs::parsePrometheus(text);

  auto find = [&](const std::string& name,
                  const obs::Labels& labels) -> const obs::PromSample* {
    for (const obs::PromSample& s : samples) {
      if (s.name == name && s.labels == labels) return &s;
    }
    return nullptr;
  };
  const obs::PromSample* c = find("vfpga_rt_total", {{"policy", "x"}});
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 42.0);
  const obs::PromSample* g = find("vfpga_rt_gauge", {});
  ASSERT_NE(g, nullptr);
  EXPECT_DOUBLE_EQ(g->value, 2.5);
  const obs::PromSample* cnt = find("vfpga_rt_ns_count", {});
  ASSERT_NE(cnt, nullptr);
  EXPECT_DOUBLE_EQ(cnt->value, 2.0);
  const obs::PromSample* mn = find("vfpga_rt_ns", {{"quantile", "0"}});
  ASSERT_NE(mn, nullptr);
  EXPECT_DOUBLE_EQ(mn->value, 1.0);
  const obs::PromSample* inf = find("vfpga_rt_hist_bucket", {{"le", "+Inf"}});
  ASSERT_NE(inf, nullptr);
  EXPECT_DOUBLE_EQ(inf->value, 2.0);
  const obs::PromSample* hsum = find("vfpga_rt_hist_sum", {});
  ASSERT_NE(hsum, nullptr);
  EXPECT_DOUBLE_EQ(hsum->value, 10.0);
}

// Pinned golden exposition: cumulative `le` buckets, `+Inf` == `_count`,
// `_sum`, and the derived percentile gauges as their own trailing families
// (exposition format requires every sample of a family to sit contiguously
// under a single TYPE header).
TEST(Prometheus, GoldenHistogramExposition) {
  obs::MetricsRegistry reg;
  reg.counter("vfpga_gold_total", {{"dev", "0"}}, "jobs").inc(3);
  obs::HistogramMetric& h =
      reg.histogram("vfpga_gold_wait_ns", 0.0, 10.0, 5, {}, "wait");
  h.observe(1.0);
  h.observe(3.0);
  h.observe(25.0);  // clamps into the last bucket

  const std::string expected =
      "# HELP vfpga_gold_total jobs\n"
      "# TYPE vfpga_gold_total counter\n"
      "vfpga_gold_total{dev=\"0\"} 3\n"
      "# HELP vfpga_gold_wait_ns wait\n"
      "# TYPE vfpga_gold_wait_ns histogram\n"
      "vfpga_gold_wait_ns_bucket{le=\"2\"} 1\n"
      "vfpga_gold_wait_ns_bucket{le=\"4\"} 2\n"
      "vfpga_gold_wait_ns_bucket{le=\"6\"} 2\n"
      "vfpga_gold_wait_ns_bucket{le=\"8\"} 2\n"
      "vfpga_gold_wait_ns_bucket{le=\"10\"} 3\n"
      "vfpga_gold_wait_ns_bucket{le=\"+Inf\"} 3\n"
      "vfpga_gold_wait_ns_sum 29\n"
      "vfpga_gold_wait_ns_count 3\n"
      "# TYPE vfpga_gold_wait_ns_p50 gauge\n"
      "vfpga_gold_wait_ns_p50 3\n"
      "# TYPE vfpga_gold_wait_ns_p90 gauge\n"
      "vfpga_gold_wait_ns_p90 9\n"
      "# TYPE vfpga_gold_wait_ns_p99 gauge\n"
      "vfpga_gold_wait_ns_p99 9\n";
  EXPECT_EQ(obs::renderPrometheus(reg), expected);
}

// Conformance invariants every exposition must keep, checked through the
// strict parser: bucket counts are cumulative (monotonically non-decreasing
// in `le` order) and the `+Inf` bucket equals `_count` exactly.
TEST(Prometheus, HistogramBucketsAreCumulativeAndInfMatchesCount) {
  obs::MetricsRegistry reg;
  obs::HistogramMetric& h =
      reg.histogram("vfpga_conf_ns", 0.0, 100.0, 8, {{"dev", "1"}}, "lat");
  for (double v : {5.0, 5.0, 37.0, 61.0, 61.0, 61.0, 99.0, 250.0}) {
    h.observe(v);
  }
  const std::vector<obs::PromSample> samples =
      obs::parsePrometheus(obs::renderPrometheus(reg));
  auto label = [](const obs::PromSample& s, const std::string& key) {
    for (const auto& [k, v] : s.labels) {
      if (k == key) return v;
    }
    return std::string();
  };
  double prev = 0.0;
  double infValue = -1.0;
  double countValue = -2.0;
  std::size_t buckets = 0;
  for (const obs::PromSample& s : samples) {
    if (s.name == "vfpga_conf_ns_bucket") {
      ++buckets;
      EXPECT_GE(s.value, prev) << "non-cumulative at le=" << label(s, "le");
      prev = s.value;
      if (label(s, "le") == "+Inf") infValue = s.value;
    } else if (s.name == "vfpga_conf_ns_count") {
      countValue = s.value;
    }
  }
  EXPECT_EQ(buckets, 9u);  // 8 finite bounds + +Inf
  EXPECT_DOUBLE_EQ(infValue, 8.0);
  EXPECT_DOUBLE_EQ(infValue, countValue);
}

TEST(Exporters, CsvAndJsonSnapshots) {
  obs::MetricsRegistry reg;
  reg.counter("vfpga_csv_total", {{"k", "v"}}).inc(7);
  reg.gauge("vfpga_csv_gauge").set(1.25);
  const std::string csv = obs::renderCsv(reg);
  EXPECT_NE(csv.find("vfpga_csv_total,\"k=v\",counter,value,7"),
            std::string::npos);
  EXPECT_NE(csv.find("vfpga_csv_gauge"), std::string::npos);

  const obs::JsonValue arr = obs::JsonValue::parse(obs::renderMetricsJson(reg));
  ASSERT_TRUE(arr.isArray());
  ASSERT_EQ(arr.asArray().size(), 2u);
}

TEST(FlightRecorder, BundleCarriesRuleTraceTailAndMetrics) {
  Trace ring;
  for (int i = 0; i < 10; ++i) {
    ring.record(static_cast<SimTime>(i), TraceKind::kInfo,
                "r" + std::to_string(i));
  }
  obs::MetricsRegistry reg;
  reg.counter("vfpga_fr_total").inc(9);

  obs::FlightRecorder::Options opt;
  opt.traceTail = 4;
  obs::FlightRecorder fr(opt);
  fr.attachTrace(&ring);
  fr.attachRegistry(&reg);

  const std::string bundle = fr.renderBundle("AL002", "unit test", "{}");
  const obs::JsonValue doc = obs::JsonValue::parse(bundle);
  EXPECT_EQ(doc.at("rule_id").asString(), "AL002");
  EXPECT_EQ(doc.at("context").asString(), "unit test");
  ASSERT_TRUE(doc.at("trace_tail").isArray());
  // Only the newest traceTail records survive.
  EXPECT_EQ(doc.at("trace_tail").asArray().size(), 4u);
  EXPECT_EQ(doc.at("trace_tail").asArray().back().at("detail").asString(),
            "r9");
  ASSERT_TRUE(doc.at("metrics").isArray());
  EXPECT_EQ(doc.at("metrics").asArray().size(), 1u);
}

TEST(FlightRecorder, SeededInvariantFailureDumpsThroughTheHook) {
  const std::string dir = ::testing::TempDir();
  obs::FlightRecorder::Options opt;
  opt.directory = dir;
  opt.prefix = "obs_test_flight";
  obs::FlightRecorder fr(opt);
  Trace ring;
  ring.record(1, TraceKind::kGarbageCollect, "before failure");
  fr.attachTrace(&ring);

  installFlightRecorderHook();
  obs::FlightRecorder* prev = obs::FlightRecorder::installGlobal(&fr);

  // Seed a defect the way a manager's verifier would report it.
  analysis::Report rep;
  rep.add("AL002", "seeded zero-width strip");
  EXPECT_THROW(analysis::throwIfErrors(rep, "obs_test"),
               analysis::InvariantViolation);

  obs::FlightRecorder::installGlobal(prev);
  ASSERT_EQ(fr.dumpCount(), 1u);

  // The bundle landed in `dir` and names the firing rule.
  const std::string path = dir + "/obs_test_flight_AL002_0.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "expected bundle at " << path;
  std::stringstream buf;
  buf << in.rdbuf();
  const obs::JsonValue doc = obs::JsonValue::parse(buf.str());
  EXPECT_EQ(doc.at("rule_id").asString(), "AL002");
  EXPECT_EQ(doc.at("context").asString(), "obs_test");
  ASSERT_TRUE(doc.at("diagnostics").isObject());
  EXPECT_NE(buf.str().find("seeded zero-width strip"), std::string::npos);
}

TEST(Histogram, PercentileEmptySingleAndDuplicateHeavy) {
  // Empty: every percentile collapses to the low edge.
  Histogram empty(0.0, 10.0, 10);
  EXPECT_EQ(empty.percentile(50), 0.0);
  EXPECT_EQ(empty.percentile(99), 0.0);

  // One sample: every percentile is that sample's bucket midpoint, and
  // out-of-range p clamps instead of misbehaving.
  Histogram one(0.0, 10.0, 10);
  one.add(5.0);
  EXPECT_DOUBLE_EQ(one.percentile(50), 5.5);
  EXPECT_DOUBLE_EQ(one.percentile(100), 5.5);
  EXPECT_DOUBLE_EQ(one.percentile(150), 5.5);  // clamps to p100
  // Clamps to p0, which is the sample's own bucket (the first *non-empty*
  // one), not bucket 0.
  EXPECT_DOUBLE_EQ(one.percentile(-5), 5.5);

  // All samples clamped into the overflow bucket: every percentile —
  // including p0 — reports the overflow bucket's midpoint.
  Histogram overflow(0.0, 10.0, 10);
  overflow.add(50.0);
  overflow.add(99.0);
  EXPECT_DOUBLE_EQ(overflow.percentile(0), 9.5);
  EXPECT_DOUBLE_EQ(overflow.percentile(50), 9.5);
  EXPECT_DOUBLE_EQ(overflow.percentile(100), 9.5);

  // Duplicate-heavy: the mode dominates up through p99; only p100 reaches
  // the lone outlier.
  Histogram heavy(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) heavy.add(5.0);
  heavy.add(9.0);
  EXPECT_DOUBLE_EQ(heavy.percentile(50), 5.5);
  EXPECT_DOUBLE_EQ(heavy.percentile(99), 5.5);
  EXPECT_DOUBLE_EQ(heavy.percentile(100), 9.5);
}

TEST(MetricsRegistry, CardinalityGuardCollapsesOverflowSeries) {
  obs::MetricsRegistry reg;
  reg.setMaxSeriesPerFamily(2);
  reg.counter("vfpga_guarded_total", {{"k", "a"}}).inc();
  reg.counter("vfpga_guarded_total", {{"k", "b"}}).inc();
  // Over the cap: both land in the {overflow="true"} collapse series.
  reg.counter("vfpga_guarded_total", {{"k", "c"}}).inc();
  reg.counter("vfpga_guarded_total", {{"k", "d"}}).inc();
  EXPECT_EQ(reg.droppedSeries(), 2u);
  EXPECT_EQ(reg.counter("vfpga_obs_dropped_series").value(), 2u);
  EXPECT_EQ(reg.counter("vfpga_guarded_total", {{"overflow", "true"}}).value(),
            2u);
  // Series that existed before the cap tripped still resolve normally.
  EXPECT_EQ(reg.counter("vfpga_guarded_total", {{"k", "a"}}).value(), 1u);
}

TEST(StreamExporter, TinyRingDropsAreCountedAndEveryLineParses) {
  const std::string path = ::testing::TempDir() + "/stream_tiny.ndjson";
  obs::StreamOptions opt;
  opt.path = path;
  opt.ringCapacity = 2;
  opt.flushEveryRecords = 0;  // only finish() flushes, so the ring overflows
  obs::StreamExporter stream(opt);
  ASSERT_TRUE(stream.ok());
  obs::SpanTracer tracer = steppedTracer(10);
  stream.attach(tracer, "unit");
  for (int i = 0; i < 20; ++i) {
    tracer.complete("s" + std::to_string(i), "os.test",
                    static_cast<std::uint64_t>(i) * 10, 5);
  }
  stream.finish();
  EXPECT_EQ(stream.emitted(), 20u);
  EXPECT_EQ(stream.dropped(), 18u);
  EXPECT_EQ(stream.written(), 3u);  // two buffered spans + stream_summary
  EXPECT_EQ(stream.droppedByKey().at("os.test"), 18u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  obs::JsonValue last;
  while (std::getline(in, line)) {
    last = obs::JsonValue::parse(line);  // throws on any malformed line
    ++lines;
  }
  EXPECT_EQ(lines, 3u);
  EXPECT_EQ(last.at("kind").asString(), "stream_summary");
  EXPECT_EQ(last.at("dropped").asNumber(), 18.0);
  EXPECT_EQ(last.at("dropped_by_kind").at("os.test").asNumber(), 18.0);
}

TEST(StreamExporter, SamplingKeepsOneOfNPerKey) {
  const std::string path = ::testing::TempDir() + "/stream_sampled.ndjson";
  obs::StreamOptions opt;
  opt.path = path;
  opt.sampleEvery["os.test"] = 5;
  obs::StreamExporter stream(opt);
  ASSERT_TRUE(stream.ok());
  obs::SpanTracer tracer = steppedTracer(10);
  stream.attach(tracer, "unit");
  for (int i = 0; i < 10; ++i) {
    tracer.complete("s", "os.test", static_cast<std::uint64_t>(i) * 10, 1);
  }
  stream.finish();
  EXPECT_EQ(stream.emitted(), 10u);
  EXPECT_EQ(stream.sampledOut(), 8u);
  EXPECT_EQ(stream.written(), 3u);  // records 1 and 6, plus the summary
}

TEST(Heatmap, MatrixGoldenOnScriptedSequence) {
  using CS = obs::CellState;
  obs::HeatmapCollector hm(4);
  hm.sample(0, "start", {CS::kIdle, CS::kIdle, CS::kIdle, CS::kIdle});
  hm.sample(10, "allocate", {CS::kBusy, CS::kBusy, CS::kIdle, CS::kIdle});
  hm.sample(20, "relocate", {CS::kIdle, CS::kIdle, CS::kBusy, CS::kBusy});
  hm.sample(30, "quarantine", {CS::kFaulty, CS::kIdle, CS::kBusy, CS::kBusy});
  // A ragged snapshot pads with idle instead of skewing the matrix.
  hm.sample(40, "release", {CS::kFaulty, CS::kIdle});

  EXPECT_EQ(hm.renderCsv(),
            "time_ns,event,c0,c1,c2,c3\n"
            "0,start,0,0,0,0\n"
            "10,allocate,1,1,0,0\n"
            "20,relocate,0,0,1,1\n"
            "30,quarantine,2,0,1,1\n"
            "40,release,2,0,0,0\n");

  const obs::JsonValue doc = obs::JsonValue::parse(hm.renderJson());
  EXPECT_EQ(doc.at("columns").asNumber(), 4.0);
  ASSERT_EQ(doc.at("samples").asArray().size(), 5u);
  const obs::JsonValue& quarantineRow = doc.at("samples").asArray()[3];
  EXPECT_EQ(quarantineRow.at("event").asString(), "quarantine");
  EXPECT_EQ(quarantineRow.at("t_ns").asNumber(), 30.0);
  EXPECT_EQ(quarantineRow.at("cells").asArray()[0].asNumber(), 2.0);

  const std::string html = hm.renderHtml("unit");
  EXPECT_NE(html.find("<html"), std::string::npos);
  EXPECT_NE(html.find("quarantine"), std::string::npos);
}

TEST(Heatmap, PartitionManagerObserverSnapshotsAllocatorState) {
  DeviceProfile p = profileByName("medium_partial");
  Device dev = p.makeDevice();
  ConfigPort port(dev, p.port);
  Compiler compiler(dev);
  ConfigRegistry cfgs;
  PartitionManager pm(dev, port, cfgs, compiler, {});
  obs::HeatmapCollector hm(static_cast<std::uint16_t>(dev.geometry().cols));
  std::uint64_t tick = 0;
  pm.setOccupancyObserver([&](const char* event) {
    hm.sample(tick++, event, occupancyCells(pm.allocator()));
  });

  Netlist nl = lib::makeCounter(6);
  nl.setName("count");
  const ConfigId id =
      cfgs.add(compiler.compile(nl, Region::columns(dev.geometry(), 0, 4)));
  const auto loaded = pm.load(id);
  ASSERT_TRUE(loaded.has_value());
  const auto q = pm.quarantine(11);  // idle column: fenced immediately
  EXPECT_TRUE(q.quarantined);
  pm.unload(loaded->partition);

  ASSERT_EQ(hm.samples().size(), 3u);
  EXPECT_EQ(hm.samples()[0].event, "allocate");
  EXPECT_EQ(hm.samples()[1].event, "quarantine");
  EXPECT_EQ(hm.samples()[2].event, "release");
  EXPECT_EQ(hm.samples()[0].cells[0], obs::CellState::kBusy);
  EXPECT_EQ(hm.samples()[1].cells[11], obs::CellState::kFaulty);
  EXPECT_EQ(hm.samples()[2].cells[0], obs::CellState::kIdle);
}

TEST(Prometheus, LabelValuesEscapeBackslashQuoteAndNewline) {
  obs::MetricsRegistry reg;
  // One value per escape case the exposition format defines, plus one
  // mixing all three.
  reg.counter("vfpga_esc_total", {{"p", "a\\b"}}).inc(1);
  reg.counter("vfpga_esc_total", {{"p", "a\"b"}}).inc(2);
  reg.counter("vfpga_esc_total", {{"p", "a\nb"}}).inc(3);
  reg.counter("vfpga_esc_total", {{"p", "\\\"\n"}}).inc(4);

  const std::string text = obs::renderPrometheus(reg);
  // Golden escapes: every label value stays on one physical line with the
  // two-character sequences the format requires.
  EXPECT_NE(text.find("p=\"a\\\\b\""), std::string::npos);
  EXPECT_NE(text.find("p=\"a\\\"b\""), std::string::npos);
  EXPECT_NE(text.find("p=\"a\\nb\""), std::string::npos);
  EXPECT_EQ(text.find('\n', text.find("a\\nb")),
            text.find("} 3", text.find("a\\nb")) + 3);

  // And the parser decodes them back to the original bytes.
  const std::vector<obs::PromSample> samples = obs::parsePrometheus(text);
  auto value = [&](const std::string& labelValue) -> double {
    for (const obs::PromSample& s : samples) {
      if (s.name == "vfpga_esc_total" && !s.labels.empty() &&
          s.labels[0].second == labelValue) {
        return s.value;
      }
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(value("a\\b"), 1.0);
  EXPECT_DOUBLE_EQ(value("a\"b"), 2.0);
  EXPECT_DOUBLE_EQ(value("a\nb"), 3.0);
  EXPECT_DOUBLE_EQ(value("\\\"\n"), 4.0);
}

TEST(StreamExporter, FlushDurationsFeedTheSelfHistogram) {
  const std::string path = ::testing::TempDir() + "/stream_self.ndjson";
  obs::StreamOptions opt;
  opt.path = path;
  opt.flushEveryRecords = 0;  // exactly one flush: the one finish() runs
  obs::StreamExporter stream(opt);
  ASSERT_TRUE(stream.ok());
  obs::SpanTracer tracer = steppedTracer(10);
  stream.attach(tracer, "unit");
  tracer.complete("s", "os.test", 0, 5);
  stream.finish();

  ASSERT_EQ(stream.flushDurationsNs().size(), 1u);

  obs::MetricsRegistry reg;
  stream.publishSelfMetrics(reg);
  const std::vector<obs::PromSample> samples =
      obs::parsePrometheus(obs::renderPrometheus(reg));
  double count = -1.0;
  for (const obs::PromSample& s : samples) {
    if (s.name == "vfpga_obs_flush_ns_count") count = s.value;
  }
  EXPECT_DOUBLE_EQ(count, 1.0);
}

TEST(OutputDir, CreatesNestedPathsAndFollowsMidProcessOverride) {
  const char* saved = std::getenv("VFPGA_OBS_DIR");
  const std::string savedValue = saved ? saved : "";

  // Nested, not-yet-existing path: created on demand.
  const std::string nested = ::testing::TempDir() + "/vfpga_od/a/b/c";
  ASSERT_EQ(setenv("VFPGA_OBS_DIR", nested.c_str(), 1), 0);
  EXPECT_EQ(obs::outputDir(), nested);
  EXPECT_TRUE(std::filesystem::is_directory(nested));

  // Trailing slash is preserved verbatim and still usable as a prefix.
  const std::string slashed = ::testing::TempDir() + "/vfpga_od/slash/";
  ASSERT_EQ(setenv("VFPGA_OBS_DIR", slashed.c_str(), 1), 0);
  EXPECT_EQ(obs::outputDir(), slashed);
  EXPECT_TRUE(std::filesystem::is_directory(slashed));
  {
    std::ofstream probe(obs::outputDir() + "probe.txt");
    EXPECT_TRUE(probe.good());
  }

  // The env var is read on every call, so a mid-process override moves
  // subsequent outputs without any re-initialization.
  const std::string second = ::testing::TempDir() + "/vfpga_od/second";
  ASSERT_EQ(setenv("VFPGA_OBS_DIR", second.c_str(), 1), 0);
  EXPECT_EQ(obs::outputDir(), second);

  if (saved) {
    setenv("VFPGA_OBS_DIR", savedValue.c_str(), 1);
  } else {
    unsetenv("VFPGA_OBS_DIR");
  }
}

}  // namespace
}  // namespace vfpga
